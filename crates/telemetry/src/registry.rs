//! The interning hub that owns all live metrics.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use crate::snapshot::StageSnapshot;
use crate::{Counter, Gauge, Histogram, QueryLedger, Span, TelemetrySnapshot};

/// The shared metric registry.
///
/// Cheaply cloneable (all clones observe the same metrics); name
/// lookups intern on first use and return shared handles, so hot paths
/// pay the map lookup once and work on bare atomics afterwards.
/// [`Registry::snapshot`] freezes everything into a
/// [`TelemetrySnapshot`].
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    stages: Mutex<BTreeMap<String, StageAccum>>,
    toplists: Mutex<BTreeMap<String, Vec<(String, u64)>>>,
    ledger: Mutex<Option<QueryLedger>>,
}

#[derive(Clone, Debug, Default)]
struct StageAccum {
    total: Duration,
    count: u64,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, created at zero on first
    /// use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.counters.read().get(name) {
            return c.clone();
        }
        self.inner.counters.write().entry(name.to_owned()).or_default().clone()
    }

    /// The gauge registered under `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.gauges.read().get(name) {
            return g.clone();
        }
        self.inner.gauges.write().entry(name.to_owned()).or_default().clone()
    }

    /// The histogram registered under `name`, created with
    /// millisecond-latency buckets on first use.
    pub fn histogram_latency_ms(&self, name: &str) -> Histogram {
        self.histogram_or(name, Histogram::latency_ms)
    }

    /// The histogram registered under `name`, created with byte-size
    /// buckets on first use.
    pub fn histogram_bytes(&self, name: &str) -> Histogram {
        self.histogram_or(name, Histogram::bytes)
    }

    /// The histogram registered under `name`, created with the given
    /// bounds on first use (an existing histogram keeps its original
    /// buckets).
    pub fn histogram_with_bounds(&self, name: &str, bounds: Vec<f64>) -> Histogram {
        self.histogram_or(name, || Histogram::with_bounds(bounds))
    }

    fn histogram_or(&self, name: &str, make: impl FnOnce() -> Histogram) -> Histogram {
        if let Some(h) = self.inner.histograms.read().get(name) {
            return h.clone();
        }
        self.inner.histograms.write().entry(name.to_owned()).or_insert_with(make).clone()
    }

    /// Starts a timer that accumulates into stage `name` when finished
    /// or dropped.
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.clone(), name)
    }

    /// Folds an externally measured duration into stage `name`.
    pub fn record_stage(&self, name: &str, elapsed: Duration) {
        let mut stages = self.inner.stages.lock();
        let accum = stages.entry(name.to_owned()).or_default();
        accum.total += elapsed;
        accum.count += 1;
    }

    /// Replaces the top-N list published under `name` (e.g. busiest
    /// destinations). Entries are `(label, count)`, busiest first.
    pub fn set_toplist(&self, name: &str, entries: Vec<(String, u64)>) {
        self.inner.toplists.lock().insert(name.to_owned(), entries);
    }

    /// Publishes the campaign's query ledger (overwrites any previous
    /// one).
    pub fn set_ledger(&self, ledger: QueryLedger) {
        *self.inner.ledger.lock() = Some(ledger);
    }

    /// Freezes every metric into an owned, serializable snapshot.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .inner
                .counters
                .read()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .read()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .read()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
            stages: self
                .inner
                .stages
                .lock()
                .iter()
                .map(|(name, s)| {
                    (
                        name.clone(),
                        StageSnapshot { total_secs: s.total.as_secs_f64(), count: s.count },
                    )
                })
                .collect(),
            toplists: self.inner.toplists.lock().clone(),
            ledger: self.inner.ledger.lock().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_interned() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);

        let h1 = r.histogram_latency_ms("h");
        let h2 = r.histogram_latency_ms("h");
        h1.record(1.0);
        h2.record(2.0);
        assert_eq!(r.snapshot().histograms["h"].count, 2);
    }

    #[test]
    fn clones_share_the_same_metrics() {
        let r = Registry::new();
        let view = r.clone();
        r.counter("shared").add(3);
        view.gauge("depth").set(-2);
        let snap = view.snapshot();
        assert_eq!(snap.counters["shared"], 3);
        assert_eq!(snap.gauges["depth"], -2);
    }

    #[test]
    fn snapshot_collects_everything() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(7);
        r.histogram_bytes("bytes").record(100.0);
        r.record_stage("round1", Duration::from_millis(5));
        r.set_toplist("busiest", vec![("10.0.0.1".into(), 9)]);
        r.set_ledger(QueryLedger { total: 1, ..Default::default() });

        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 1);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["bytes"].count, 1);
        assert_eq!(snap.stages["round1"].count, 1);
        assert_eq!(snap.toplists["busiest"][0].1, 9);
        assert_eq!(snap.ledger.as_ref().unwrap().total, 1);
    }

    #[test]
    fn registry_is_thread_safe() {
        let r = Registry::new();
        std::thread::scope(|s| {
            for worker in 0..4 {
                let r = r.clone();
                s.spawn(move || {
                    let c = r.counter("net.queries");
                    let h = r.histogram_latency_ms("net.rtt_ms");
                    for i in 0..500 {
                        c.inc();
                        h.record(f64::from(worker * 500 + i));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters["net.queries"], 2000);
        assert_eq!(snap.histograms["net.rtt_ms"].count, 2000);
    }
}
