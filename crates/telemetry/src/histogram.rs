//! Fixed-bucket distributions with percentile queries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A lock-free histogram over a fixed set of bucket upper bounds.
///
/// Values land in the first bucket whose bound is `>= value`; anything
/// beyond the last bound lands in an implicit overflow bucket. Exact
/// sum, min, and max are tracked alongside the buckets, so percentile
/// estimates are clamped to the observed range. Clones share state.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Ascending upper bounds; `buckets` has one extra overflow slot.
    bounds: Vec<f64>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// `f64` bit patterns, accumulated / compared via CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Default bounds for latencies in milliseconds (0.5 ms – ~8 s).
const LATENCY_MS_BOUNDS: [f64; 15] = [
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0,
];

/// Default bounds for message sizes in bytes (16 B – 8 KiB).
const BYTES_BOUNDS: [f64; 10] =
    [16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0, 8192.0];

impl Histogram {
    /// A histogram with the default millisecond-latency buckets.
    pub fn latency_ms() -> Self {
        Histogram::with_bounds(LATENCY_MS_BOUNDS.to_vec())
    }

    /// A histogram with the default byte-size buckets.
    pub fn bytes() -> Self {
        Histogram::with_bounds(BYTES_BOUNDS.to_vec())
    }

    /// A histogram over custom ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(Inner {
                bounds,
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: f64) {
        let inner = &*self.inner;
        let idx = inner.bounds.iter().position(|&b| value <= b).unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let add = |bits: &AtomicU64, f: &dyn Fn(f64) -> f64| {
            let mut cur = bits.load(Ordering::Relaxed);
            loop {
                let next = f(f64::from_bits(cur)).to_bits();
                match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        };
        add(&inner.sum_bits, &|s| s + value);
        add(&inner.min_bits, &|m| m.min(value));
        add(&inner.max_bits, &|m| m.max(value));
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            buckets: inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count,
            sum: f64::from_bits(inner.sum_bits.load(Ordering::Relaxed)),
            min: if count == 0 {
                0.0
            } else {
                f64::from_bits(inner.min_bits.load(Ordering::Relaxed))
            },
            max: if count == 0 {
                0.0
            } else {
                f64::from_bits(inner.max_bits.load(Ordering::Relaxed))
            },
        }
    }
}

/// A frozen [`Histogram`]: bucket counts plus exact sum/min/max.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated value at quantile `p` in `[0, 1]`: the upper bound of
    /// the first bucket whose cumulative count reaches `p · count`,
    /// clamped to the observed `[min, max]` range. Returns 0 when
    /// empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                let upper = self.bounds.get(i).copied().unwrap_or(self.max);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The median (p50).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// The 90th percentile.
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ (merging histograms of
    /// different shapes is a bug, not a degradation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        assert_eq!(self.bounds, other.bounds, "cannot merge histograms with different buckets");
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_buckets() {
        let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 1.0, 5.0, 50.0, 500.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 500.0);
        assert!((s.sum - 556.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_track_the_distribution() {
        let h = Histogram::latency_ms();
        // 100 observations spread 1..=100 ms.
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 of 1..=100 lands in the (32, 64] bucket.
        assert_eq!(s.p50(), 64.0);
        assert_eq!(s.p90(), 128.0_f64.min(s.max));
        assert!(s.p99() <= s.max);
        assert!(s.percentile(0.0) >= s.min);
        assert!((s.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let s = Histogram::bytes().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn merge_is_bucket_wise() {
        let a = Histogram::with_bounds(vec![10.0, 100.0]);
        let b = Histogram::with_bounds(vec![10.0, 100.0]);
        a.record(5.0);
        b.record(50.0);
        b.record(500.0);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count, 3);
        assert_eq!(sa.buckets, vec![1, 1, 1]);
        assert_eq!(sa.min, 5.0);
        assert_eq!(sa.max, 500.0);
    }

    #[test]
    #[should_panic(expected = "different buckets")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::with_bounds(vec![1.0]).snapshot();
        let b = Histogram::with_bounds(vec![2.0]);
        a.count = 1;
        b.record(1.0);
        a.merge(&b.snapshot());
    }
}
