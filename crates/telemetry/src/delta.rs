//! Cross-run snapshot deltas: what changed between two frozen
//! [`TelemetrySnapshot`]s.
//!
//! The delta is *selective by design*: counters, gauges, histogram
//! observation counts, and ledger totals compare meaningfully across
//! runs, but stage spans measure real wall-clock time — which never
//! reproduces — so they are excluded. A missing entry on either side
//! compares as zero, so adding an instrument between code versions
//! shows up as a delta rather than being silently skipped.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::snapshot::TelemetrySnapshot;

/// One changed scalar: name, run-A value, run-B value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalarDelta<T> {
    /// Instrument name.
    pub name: String,
    /// Run A's value (0 when absent).
    pub a: T,
    /// Run B's value (0 when absent).
    pub b: T,
}

/// Everything that differs between two telemetry snapshots, name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryDelta {
    /// Counters with different totals.
    pub counters: Vec<ScalarDelta<u64>>,
    /// Gauges with different final levels.
    pub gauges: Vec<ScalarDelta<i64>>,
    /// Histograms with different observation counts (the count is the
    /// only field that compares exactly across runs).
    pub histogram_counts: Vec<ScalarDelta<u64>>,
    /// Ledger query totals, when both runs published one and the
    /// totals differ.
    pub ledger_total: Option<(u64, u64)>,
}

impl TelemetryDelta {
    /// Whether the two snapshots agreed on everything compared.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histogram_counts.is_empty()
            && self.ledger_total.is_none()
    }

    /// Number of differing entries.
    pub fn len(&self) -> usize {
        self.counters.len()
            + self.gauges.len()
            + self.histogram_counts.len()
            + usize::from(self.ledger_total.is_some())
    }

    /// A deterministic text rendering, one line per changed entry.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if self.is_empty() {
            out.push_str("telemetry: no differences\n");
            return out;
        }
        let signed = |a: i128, b: i128| -> String {
            let d = b - a;
            if d >= 0 {
                format!("+{d}")
            } else {
                format!("{d}")
            }
        };
        for c in &self.counters {
            let _ = writeln!(
                out,
                "counter   {:<40} {} -> {} ({})",
                c.name,
                c.a,
                c.b,
                signed(c.a as i128, c.b as i128)
            );
        }
        for g in &self.gauges {
            let _ = writeln!(
                out,
                "gauge     {:<40} {} -> {} ({})",
                g.name,
                g.a,
                g.b,
                signed(i128::from(g.a), i128::from(g.b))
            );
        }
        for h in &self.histogram_counts {
            let _ = writeln!(
                out,
                "histogram {:<40} {} -> {} observations ({})",
                h.name,
                h.a,
                h.b,
                signed(h.a as i128, h.b as i128)
            );
        }
        if let Some((a, b)) = self.ledger_total {
            let _ = writeln!(
                out,
                "ledger    {:<40} {} -> {} ({})",
                "total queries admitted",
                a,
                b,
                signed(a as i128, b as i128)
            );
        }
        out
    }
}

impl TelemetrySnapshot {
    /// Compares `self` (run A) against `other` (run B) and returns
    /// every counter, gauge, histogram count, and ledger total that
    /// differs. Stage spans are excluded: wall-clock never reproduces.
    pub fn delta(&self, other: &TelemetrySnapshot) -> TelemetryDelta {
        let mut delta = TelemetryDelta::default();
        let names: BTreeSet<&String> = self.counters.keys().chain(other.counters.keys()).collect();
        for name in names {
            let a = self.counters.get(name).copied().unwrap_or(0);
            let b = other.counters.get(name).copied().unwrap_or(0);
            if a != b {
                delta.counters.push(ScalarDelta { name: name.clone(), a, b });
            }
        }
        let names: BTreeSet<&String> = self.gauges.keys().chain(other.gauges.keys()).collect();
        for name in names {
            let a = self.gauges.get(name).copied().unwrap_or(0);
            let b = other.gauges.get(name).copied().unwrap_or(0);
            if a != b {
                delta.gauges.push(ScalarDelta { name: name.clone(), a, b });
            }
        }
        let names: BTreeSet<&String> =
            self.histograms.keys().chain(other.histograms.keys()).collect();
        for name in names {
            let a = self.histograms.get(name).map_or(0, |h| h.count);
            let b = other.histograms.get(name).map_or(0, |h| h.count);
            if a != b {
                delta.histogram_counts.push(ScalarDelta { name: name.clone(), a, b });
            }
        }
        if let (Some(a), Some(b)) = (&self.ledger, &other.ledger) {
            if a.total != b.total {
                delta.ledger_total = Some((a.total, b.total));
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_snapshots_delta_empty() {
        let mut a = TelemetrySnapshot::default();
        a.counters.insert("net.queries".into(), 10);
        a.gauges.insert("runner.workers".into(), 4);
        let d = a.delta(&a.clone());
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert!(d.render_text().contains("no differences"));
    }

    #[test]
    fn missing_entries_compare_as_zero() {
        let mut a = TelemetrySnapshot::default();
        a.counters.insert("net.queries".into(), 10);
        let mut b = TelemetrySnapshot::default();
        b.counters.insert("fault.losses".into(), 3);
        let d = a.delta(&b);
        assert_eq!(d.counters.len(), 2);
        assert_eq!(d.counters[0].name, "fault.losses");
        assert_eq!((d.counters[0].a, d.counters[0].b), (0, 3));
        assert_eq!((d.counters[1].a, d.counters[1].b), (10, 0));
        let text = d.render_text();
        assert!(text.contains("net.queries"), "{text}");
        assert!(text.contains("(-10)"), "{text}");
        assert!(text.contains("(+3)"), "{text}");
    }

    #[test]
    fn stage_spans_are_excluded() {
        let mut a = TelemetrySnapshot::default();
        a.stages.insert("round1".into(), crate::StageSnapshot { total_secs: 1.0, count: 1 });
        let b = TelemetrySnapshot::default();
        assert!(a.delta(&b).is_empty(), "wall-clock stages must not diff");
    }
}
