//! # govdns-telemetry
//!
//! The observability substrate for the measurement pipeline.
//!
//! The paper's §III-D ethics section rests on *accounting*: the claim
//! that the campaign's query load is bounded per server and per round
//! must be measurable, not asserted. This crate provides the
//! primitives every stage of the pipeline reports into:
//!
//! * [`Counter`] / [`Gauge`] — lock-free, cheaply cloneable handles
//!   over shared atomics, safe to bump from worker threads;
//! * [`Histogram`] — fixed-bucket distributions (latency in
//!   milliseconds, sizes in bytes) answering p50/p90/p99 queries;
//! * [`Span`] — a scope timer that folds wall-clock durations into
//!   named pipeline stages (seed → discovery → round-1 → round-2);
//! * [`QueryLedger`] — the per-round and per-destination accounting
//!   that backs the report's ethics section;
//! * [`Registry`] — the interning hub that owns all of the above and
//!   freezes them into a [`TelemetrySnapshot`] with text, JSON, and
//!   CSV rendering.
//!
//! Handles are deliberately decoupled from the registry: a hot loop
//! interns its counter once and then increments a bare atomic, so
//! instrumentation stays cheap enough for per-query paths (measured in
//! `crates/bench/benches/telemetry.rs`).
//!
//! ```
//! use govdns_telemetry::Registry;
//!
//! let registry = Registry::new();
//! let queries = registry.counter("net.queries");
//! let rtt = registry.histogram_latency_ms("net.rtt_ms");
//! for i in 0..100 {
//!     queries.inc();
//!     rtt.record(f64::from(i));
//! }
//! let span = registry.span("round1");
//! span.finish();
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["net.queries"], 100);
//! assert!(snapshot.histograms["net.rtt_ms"].percentile(0.50) >= 32.0);
//! assert!(snapshot.stages.contains_key("round1"));
//! ```

#![warn(missing_docs)]

mod delta;
mod histogram;
mod metrics;
mod registry;
mod snapshot;
mod span;

pub use delta::{ScalarDelta, TelemetryDelta};
pub use histogram::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{QueryLedger, StageSnapshot, TelemetrySnapshot};
pub use span::{ProgressEvent, Span};
