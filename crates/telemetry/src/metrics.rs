//! Lock-free scalar metrics: [`Counter`] and [`Gauge`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
///
/// Clones share the same underlying atomic, so a hot loop interns its
/// counter once ([`crate::Registry::counter`]) and increments a bare
/// `AtomicU64` thereafter — no lock, no lookup.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed level (queue depth, live workers, …).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Shifts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn gauge_set_and_shift() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        assert_eq!(g.clone().get(), 7);
    }
}
