//! Stage timing ([`Span`]) and live progress reporting
//! ([`ProgressEvent`]).

use std::time::{Duration, Instant};

use crate::Registry;

/// A scope timer for a named pipeline stage.
///
/// Obtained from [`Registry::span`]; the elapsed wall-clock time is
/// folded into the stage's total either explicitly via
/// [`Span::finish`] or implicitly on drop. Repeated spans under the
/// same name accumulate (total duration + invocation count), so
/// per-domain probe spans aggregate instead of exploding the snapshot.
#[derive(Debug)]
pub struct Span {
    registry: Registry,
    name: String,
    started: Instant,
    recorded: bool,
}

impl Span {
    pub(crate) fn new(registry: Registry, name: impl Into<String>) -> Self {
        Span { registry, name: name.into(), started: Instant::now(), recorded: false }
    }

    /// Stage name this span accumulates under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Time elapsed since the span started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Stops the timer, records the duration, and returns it.
    pub fn finish(mut self) -> Duration {
        let elapsed = self.started.elapsed();
        self.registry.record_stage(&self.name, elapsed);
        self.recorded = true;
        elapsed
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.registry.record_stage(&self.name, self.started.elapsed());
        }
    }
}

/// A live progress notification, emitted by the campaign runner every
/// N probed domains (and once at the end of each round).
#[derive(Clone, Debug, PartialEq)]
pub struct ProgressEvent {
    /// Pipeline stage the event belongs to (e.g. `"round1"`).
    pub stage: String,
    /// Work items completed so far within the stage.
    pub done: usize,
    /// Total work items in the stage.
    pub total: usize,
    /// Queries issued campaign-wide at the time of the event.
    pub queries_issued: u64,
}

impl ProgressEvent {
    /// Completion ratio in `[0, 1]` (1 when `total` is zero).
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.done as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_finish_and_on_drop() {
        let registry = Registry::new();
        let explicit = registry.span("stage.a");
        std::thread::sleep(Duration::from_millis(2));
        let elapsed = explicit.finish();
        assert!(elapsed >= Duration::from_millis(2));

        {
            let _implicit = registry.span("stage.a");
        }

        let snap = registry.snapshot();
        let stage = &snap.stages["stage.a"];
        assert_eq!(stage.count, 2);
        assert!(stage.total_secs >= 0.002);
    }

    #[test]
    fn progress_fraction() {
        let e = ProgressEvent { stage: "round1".into(), done: 25, total: 100, queries_issued: 40 };
        assert!((e.fraction() - 0.25).abs() < 1e-12);
        let done = ProgressEvent { stage: "seed".into(), done: 0, total: 0, queries_issued: 0 };
        assert_eq!(done.fraction(), 1.0);
    }
}
