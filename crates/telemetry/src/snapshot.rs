//! Frozen telemetry: [`TelemetrySnapshot`], [`StageSnapshot`], and the
//! §III-D [`QueryLedger`], with text / JSON / CSV rendering.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::HistogramSnapshot;

/// A frozen pipeline stage: accumulated wall-clock time and how many
/// spans contributed to it.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Total wall-clock seconds across all spans of this stage.
    pub total_secs: f64,
    /// Number of spans recorded under this stage.
    pub count: u64,
}

impl StageSnapshot {
    /// Mean seconds per span, or 0 when empty.
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_secs / self.count as f64
        }
    }
}

/// The campaign's query-load accounting, backing the report's §III-D
/// ethics section.
///
/// Every query the rate limiter admits is booked here: split by
/// measurement round, and summarized per destination so the "bounded
/// load per server" claim is checkable after the fact.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryLedger {
    /// Total queries admitted by the rate limiter.
    pub total: u64,
    /// Queries per measurement round (`round1`, `round2`, `soa`,
    /// `side`).
    pub per_round: BTreeMap<String, u64>,
    /// The campaign-wide pacing limit (queries per second).
    pub max_qps: u32,
    /// Configured per-destination query budget (0 = uncapped).
    pub destination_cap: u64,
    /// Distinct destination addresses contacted (among queries the
    /// limiter attributed to a destination; side lookups a resolver
    /// performs on the limiter's behalf are booked without one).
    pub distinct_destinations: u64,
    /// Queries received by the single busiest attributed destination.
    /// The network's own per-destination accounting (the "busiest
    /// destinations" top list) is the ground-truth hot-spot view.
    pub busiest_destination_queries: u64,
    /// Destinations whose accounted load reached the cap.
    pub destinations_at_cap: u64,
}

impl QueryLedger {
    /// Whether the busiest destination stayed within the configured
    /// cap (vacuously true when uncapped).
    pub fn within_cap(&self) -> bool {
        self.destination_cap == 0 || self.busiest_destination_queries <= self.destination_cap
    }

    /// Folds another ledger into this one (totals and per-round counts
    /// sum; limits keep the stricter reading: max of both).
    pub fn merge(&mut self, other: &QueryLedger) {
        self.total += other.total;
        for (round, n) in &other.per_round {
            *self.per_round.entry(round.clone()).or_insert(0) += n;
        }
        self.max_qps = self.max_qps.max(other.max_qps);
        self.destination_cap = self.destination_cap.max(other.destination_cap);
        self.distinct_destinations = self.distinct_destinations.max(other.distinct_destinations);
        self.busiest_destination_queries =
            self.busiest_destination_queries.max(other.busiest_destination_queries);
        self.destinations_at_cap = self.destinations_at_cap.max(other.destinations_at_cap);
    }
}

/// Everything the [`crate::Registry`] knew at snapshot time, as owned
/// data: safe to store in datasets, serialize, merge, and render.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Stage timings by name.
    pub stages: BTreeMap<String, StageSnapshot>,
    /// Published top-N lists by name (`(label, count)`, busiest
    /// first).
    pub toplists: BTreeMap<String, Vec<(String, u64)>>,
    /// The campaign query ledger, if one was published.
    pub ledger: Option<QueryLedger>,
}

impl TelemetrySnapshot {
    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_total(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(name, _)| name.starts_with(prefix)).map(|(_, v)| v).sum()
    }

    /// Folds another snapshot into this one: counters, gauges, stages,
    /// and ledgers sum; histograms merge bucket-wise; toplists combine
    /// by label and re-rank.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(h);
        }
        for (name, s) in &other.stages {
            let mine = self.stages.entry(name.clone()).or_default();
            mine.total_secs += s.total_secs;
            mine.count += s.count;
        }
        for (name, entries) in &other.toplists {
            let mine = self.toplists.entry(name.clone()).or_default();
            let mut by_label: BTreeMap<String, u64> = mine.drain(..).collect();
            for (label, n) in entries {
                *by_label.entry(label.clone()).or_insert(0) += n;
            }
            let mut combined: Vec<(String, u64)> = by_label.into_iter().collect();
            combined.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            *mine = combined;
        }
        match (&mut self.ledger, &other.ledger) {
            (Some(mine), Some(theirs)) => mine.merge(theirs),
            (slot @ None, Some(theirs)) => *slot = Some(theirs.clone()),
            _ => {}
        }
    }

    /// Renders the snapshot as an indented, human-readable block.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if !self.stages.is_empty() {
            out.push_str("stages (wall clock):\n");
            for (name, s) in &self.stages {
                let _ = writeln!(
                    out,
                    "  {name:<28} {:>10.3} s  ({} span{})",
                    s.total_secs,
                    s.count,
                    if s.count == 1 { "" } else { "s" },
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<28} {v:>10}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<28} {v:>10}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "histograms:                         count       mean        p50        p90        p99        max\n",
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<28} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max,
                );
            }
        }
        for (name, entries) in &self.toplists {
            let _ = writeln!(out, "top {name}:");
            for (rank, (label, n)) in entries.iter().enumerate() {
                let _ = writeln!(out, "  #{:<3} {label:<24} {n:>10}", rank + 1);
            }
        }
        if let Some(ledger) = &self.ledger {
            out.push_str("query ledger (ethics accounting, cf. paper §III-D):\n");
            let _ = writeln!(out, "  total queries admitted       {:>10}", ledger.total);
            for (round, n) in &ledger.per_round {
                let _ = writeln!(out, "    {round:<26} {n:>10}");
            }
            let _ = writeln!(out, "  pacing limit                 {:>10} qps", ledger.max_qps);
            let cap = if ledger.destination_cap == 0 {
                "uncapped".to_owned()
            } else {
                ledger.destination_cap.to_string()
            };
            let _ = writeln!(out, "  per-destination cap          {cap:>10}");
            let _ = writeln!(
                out,
                "  distinct destinations        {:>10}",
                ledger.distinct_destinations
            );
            let _ = writeln!(
                out,
                "  busiest destination load     {:>10}  ({})",
                ledger.busiest_destination_queries,
                if ledger.within_cap() { "within cap" } else { "CAP EXCEEDED" },
            );
            let _ =
                writeln!(out, "  destinations at cap          {:>10}", ledger.destinations_at_cap);
        }
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format:
    /// counters and gauges as `govdns_<name>` samples (dots become
    /// underscores), histograms as `_count`/`_sum` plus `quantile`
    /// labels, stage timings as labeled seconds totals, toplists and
    /// the ledger as labeled gauges. Deterministic: everything iterates
    /// in `BTreeMap` order.
    pub fn render_prometheus(&self) -> String {
        fn metric(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 7);
            out.push_str("govdns_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        fn label(value: &str) -> String {
            value.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = metric(name);
            let _ = writeln!(out, "# TYPE {m} counter\n{m} {v}");
        }
        for (name, v) in &self.gauges {
            let m = metric(name);
            let _ = writeln!(out, "# TYPE {m} gauge\n{m} {v}");
        }
        for (name, h) in &self.histograms {
            let m = metric(name);
            let _ = writeln!(out, "# TYPE {m} summary");
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{m}_sum {}\n{m}_count {}", h.sum, h.count);
        }
        if !self.stages.is_empty() {
            out.push_str("# TYPE govdns_stage_seconds_total counter\n");
            for (name, s) in &self.stages {
                let _ = writeln!(
                    out,
                    "govdns_stage_seconds_total{{stage=\"{}\"}} {}",
                    label(name),
                    s.total_secs
                );
            }
            out.push_str("# TYPE govdns_stage_spans_total counter\n");
            for (name, s) in &self.stages {
                let _ = writeln!(
                    out,
                    "govdns_stage_spans_total{{stage=\"{}\"}} {}",
                    label(name),
                    s.count
                );
            }
        }
        if !self.toplists.is_empty() {
            out.push_str("# TYPE govdns_toplist gauge\n");
            for (name, entries) in &self.toplists {
                for (rank, (entry_label, n)) in entries.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "govdns_toplist{{list=\"{}\",rank=\"{}\",label=\"{}\"}} {n}",
                        label(name),
                        rank + 1,
                        label(entry_label),
                    );
                }
            }
        }
        if let Some(ledger) = &self.ledger {
            let _ = writeln!(
                out,
                "# TYPE govdns_ledger_queries_total counter\ngovdns_ledger_queries_total {}",
                ledger.total
            );
            out.push_str("# TYPE govdns_ledger_round_queries_total counter\n");
            for (round, n) in &ledger.per_round {
                let _ = writeln!(
                    out,
                    "govdns_ledger_round_queries_total{{round=\"{}\"}} {n}",
                    label(round)
                );
            }
            for (name, v) in [
                ("govdns_ledger_max_qps", u64::from(ledger.max_qps)),
                ("govdns_ledger_destination_cap", ledger.destination_cap),
                ("govdns_ledger_distinct_destinations", ledger.distinct_destinations),
                ("govdns_ledger_busiest_destination_queries", ledger.busiest_destination_queries),
                ("govdns_ledger_destinations_at_cap", ledger.destinations_at_cap),
            ] {
                let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
            }
        }
        out
    }

    /// Serializes the snapshot as a JSON object (hand-rolled: the
    /// vendored `serde` is derive-only).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        push_map(&mut out, "counters", &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push(',');
        push_map(&mut out, "gauges", &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push(',');
        push_map(&mut out, "histograms", &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.p50()),
                json_f64(h.p90()),
                json_f64(h.p99()),
            );
            for (i, (bound, n)) in h.bounds.iter().zip(&h.buckets).enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{n}]", json_f64(*bound));
            }
            if let Some(overflow) = h.buckets.last() {
                if h.buckets.len() > h.bounds.len() {
                    if !h.bounds.is_empty() {
                        out.push(',');
                    }
                    let _ = write!(out, "[null,{overflow}]");
                }
            }
            out.push_str("]}");
        });
        out.push(',');
        push_map(&mut out, "stages", &self.stages, |out, s| {
            let _ =
                write!(out, "{{\"total_secs\":{},\"count\":{}}}", json_f64(s.total_secs), s.count);
        });
        out.push(',');
        push_map(&mut out, "toplists", &self.toplists, |out, entries| {
            out.push('[');
            for (i, (label, n)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{n}]", json_string(label));
            }
            out.push(']');
        });
        out.push_str(",\"ledger\":");
        match &self.ledger {
            None => out.push_str("null"),
            Some(ledger) => {
                let _ = write!(
                    out,
                    "{{\"total\":{},\"max_qps\":{},\"destination_cap\":{},\
                     \"distinct_destinations\":{},\"busiest_destination_queries\":{},\
                     \"destinations_at_cap\":{},\"per_round\":",
                    ledger.total,
                    ledger.max_qps,
                    ledger.destination_cap,
                    ledger.distinct_destinations,
                    ledger.busiest_destination_queries,
                    ledger.destinations_at_cap,
                );
                push_map(&mut out, "", &ledger.per_round, |out, v| {
                    let _ = write!(out, "{v}");
                });
                out.push('}');
            }
        }
        out.push('}');
        out
    }

    /// CSV of counters and gauges: `kind,name,value`.
    pub fn scalars_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},{v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},{v}");
        }
        out
    }

    /// CSV of stage timings: `stage,total_secs,spans,mean_secs`.
    pub fn stages_csv(&self) -> String {
        let mut out = String::from("stage,total_secs,spans,mean_secs\n");
        for (name, s) in &self.stages {
            let _ = writeln!(out, "{name},{:.6},{},{:.6}", s.total_secs, s.count, s.mean_secs());
        }
        out
    }

    /// CSV of histogram summaries:
    /// `histogram,count,mean,p50,p90,p99,min,max`.
    pub fn histograms_csv(&self) -> String {
        let mut out = String::from("histogram,count,mean,p50,p90,p99,min,max\n");
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{name},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3}",
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.min,
                h.max,
            );
        }
        out
    }

    /// CSV of every published toplist: `list,rank,label,count`.
    pub fn toplists_csv(&self) -> String {
        let mut out = String::from("list,rank,label,count\n");
        for (name, entries) in &self.toplists {
            for (rank, (label, n)) in entries.iter().enumerate() {
                let _ = writeln!(out, "{name},{},{label},{n}", rank + 1);
            }
        }
        out
    }

    /// CSV of the query ledger as `field,value` rows (per-round counts
    /// become `round:<name>` fields). Empty string when no ledger was
    /// published.
    pub fn ledger_csv(&self) -> String {
        let Some(ledger) = &self.ledger else {
            return String::new();
        };
        let mut out = String::from("field,value\n");
        let _ = writeln!(out, "total,{}", ledger.total);
        for (round, n) in &ledger.per_round {
            let _ = writeln!(out, "round:{round},{n}");
        }
        let _ = writeln!(out, "max_qps,{}", ledger.max_qps);
        let _ = writeln!(out, "destination_cap,{}", ledger.destination_cap);
        let _ = writeln!(out, "distinct_destinations,{}", ledger.distinct_destinations);
        let _ = writeln!(out, "busiest_destination_queries,{}", ledger.busiest_destination_queries);
        let _ = writeln!(out, "destinations_at_cap,{}", ledger.destinations_at_cap);
        let _ = writeln!(out, "within_cap,{}", ledger.within_cap());
        out
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_map<V>(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    if !key.is_empty() {
        let _ = write!(out, "{}:", json_string(key));
    }
    out.push('{');
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:", json_string(name));
        render(out, v);
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> TelemetrySnapshot {
        let r = Registry::new();
        r.counter("probe.class.authoritative").add(5);
        r.counter("probe.class.timeout").add(2);
        r.gauge("runner.workers").set(4);
        let h = r.histogram_latency_ms("net.rtt_ms");
        for i in 1..=10 {
            h.record(f64::from(i) * 10.0);
        }
        r.record_stage("round1", std::time::Duration::from_millis(12));
        r.set_toplist("busiest destinations", vec![("10.0.0.1".into(), 7), ("10.0.0.2".into(), 3)]);
        r.set_ledger(QueryLedger {
            total: 7,
            per_round: [("round1".to_owned(), 7)].into_iter().collect(),
            max_qps: 200,
            destination_cap: 100,
            distinct_destinations: 2,
            busiest_destination_queries: 7,
            destinations_at_cap: 0,
        });
        r.snapshot()
    }

    #[test]
    fn render_text_mentions_every_section() {
        let text = sample().render_text();
        for needle in [
            "stages (wall clock)",
            "counters:",
            "gauges:",
            "histograms:",
            "top busiest destinations:",
            "query ledger",
            "probe.class.authoritative",
            "within cap",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn json_is_structurally_sound() {
        let json = sample().to_json();
        // Hand-rolled writer: check balance and a few spot values.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"probe.class.authoritative\":5"));
        assert!(json.contains("\"total\":7"));
        assert!(json.contains("\"round1\""));
        assert!(!json.contains("\"ledger\":null"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn csv_helpers_have_headers_and_rows() {
        let snap = sample();
        assert!(snap.scalars_csv().starts_with("kind,name,value\n"));
        assert!(snap.scalars_csv().contains("counter,probe.class.timeout,2"));
        assert!(snap.scalars_csv().contains("gauge,runner.workers,4"));
        assert!(snap.stages_csv().lines().count() == 2);
        assert!(snap.histograms_csv().contains("net.rtt_ms,10,"));
        assert!(snap.toplists_csv().contains("busiest destinations,1,10.0.0.1,7"));
        assert!(snap.ledger_csv().contains("round:round1,7"));
        assert!(snap.ledger_csv().contains("within_cap,true"));
        assert!(TelemetrySnapshot::default().ledger_csv().is_empty());
    }

    #[test]
    fn merge_sums_and_reranks() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counters["probe.class.authoritative"], 10);
        assert_eq!(a.histograms["net.rtt_ms"].count, 20);
        assert_eq!(a.stages["round1"].count, 2);
        assert_eq!(a.toplists["busiest destinations"][0], ("10.0.0.1".to_owned(), 14));
        assert_eq!(a.ledger.as_ref().unwrap().total, 14);
        assert_eq!(a.ledger.as_ref().unwrap().per_round["round1"], 14);
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let text = sample().render_prometheus();
        for needle in [
            "# TYPE govdns_probe_class_authoritative counter",
            "govdns_probe_class_authoritative 5",
            "# TYPE govdns_runner_workers gauge",
            "govdns_runner_workers 4",
            "govdns_net_rtt_ms{quantile=\"0.5\"}",
            "govdns_net_rtt_ms_count 10",
            "govdns_stage_seconds_total{stage=\"round1\"}",
            "govdns_toplist{list=\"busiest destinations\",rank=\"1\",label=\"10.0.0.1\"} 7",
            "govdns_ledger_queries_total 7",
            "govdns_ledger_round_queries_total{round=\"round1\"} 7",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Sample lines never carry a dot in the metric name.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split(['{', ' ']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized metric name in {line:?}");
        }
    }

    #[test]
    fn counter_total_sums_by_prefix() {
        let snap = sample();
        assert_eq!(snap.counter_total("probe.class."), 7);
        assert_eq!(snap.counter_total("nope"), 0);
    }
}
