//! Property tests for the telemetry primitives: percentile estimates
//! must be monotone in the quantile, and snapshot merging must behave
//! like the sum it claims to be.

use govdns_telemetry::{Histogram, Registry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn percentiles_are_monotone(
        values in prop::collection::vec(0u32..20_000, 1..200),
        a in 0u32..101,
        b in 0u32..101,
    ) {
        let h = Histogram::latency_ms();
        for &v in &values {
            h.record(f64::from(v));
        }
        let s = h.snapshot();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let plo = s.percentile(f64::from(lo) / 100.0);
        let phi = s.percentile(f64::from(hi) / 100.0);
        prop_assert!(plo <= phi, "p{} = {} > p{} = {}", lo, plo, hi, phi);
        prop_assert!(s.min <= plo, "p{} = {} below min {}", lo, plo, s.min);
        prop_assert!(phi <= s.max, "p{} = {} above max {}", hi, phi, s.max);
    }

    #[test]
    fn counter_merge_is_associative(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
        let snap = |v: u64| {
            let r = Registry::new();
            r.counter("queries").add(v);
            r.gauge("depth").add(v as i64 % 1000);
            r.snapshot()
        };
        // (a ⊕ b) ⊕ c
        let mut left = snap(a);
        left.merge(&snap(b));
        left.merge(&snap(c));
        // a ⊕ (b ⊕ c)
        let mut bc = snap(b);
        bc.merge(&snap(c));
        let mut right = snap(a);
        right.merge(&bc);
        prop_assert_eq!(left.counters["queries"], right.counters["queries"]);
        prop_assert_eq!(left.counters["queries"], a + b + c);
        prop_assert_eq!(left.gauges["depth"], right.gauges["depth"]);
    }

    #[test]
    fn histogram_merge_matches_recording_everything(
        xs in prop::collection::vec(0u32..20_000, 0..100),
        ys in prop::collection::vec(0u32..20_000, 0..100),
    ) {
        let part_a = Histogram::latency_ms();
        let part_b = Histogram::latency_ms();
        let whole = Histogram::latency_ms();
        for &v in &xs {
            part_a.record(f64::from(v));
            whole.record(f64::from(v));
        }
        for &v in &ys {
            part_b.record(f64::from(v));
            whole.record(f64::from(v));
        }
        let mut merged = part_a.snapshot();
        merged.merge(&part_b.snapshot());
        prop_assert_eq!(merged, whole.snapshot());
    }
}
