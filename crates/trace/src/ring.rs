//! The per-worker event ring — the flight recorder's bounded memory.
//!
//! One ring holds the events of the domain its worker is currently
//! probing. Below capacity it is a plain append-only log (no reorder,
//! no drop — the proptest invariant); at capacity it discards the
//! oldest event, so a trigger always dumps the *last* N events and a
//! pathological domain cannot grow memory without bound. Sequence
//! numbers are assigned at push time and never reused, so an overflow
//! is visible as a gap at the front of the block.

use std::collections::VecDeque;

use crate::event::{Step, TraceData, TraceEvent};

/// Bounded, ordered store for one domain's trace events.
#[derive(Debug)]
pub struct EventRing {
    cap: usize,
    next_seq: u32,
    buf: VecDeque<TraceEvent>,
}

impl EventRing {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        EventRing { cap, next_seq: 0, buf: VecDeque::with_capacity(cap.min(64)) }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events discarded since the last reset (pushes minus held).
    pub fn dropped(&self) -> u32 {
        self.next_seq - self.buf.len() as u32
    }

    /// Appends an event, assigning the next sequence number; discards
    /// the oldest event if the ring is full.
    pub fn push(&mut self, step: Step, data: TraceData) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(TraceEvent { seq: self.next_seq, step, data });
        self.next_seq += 1;
    }

    /// A copy of the held events, oldest first (what a flight dump
    /// records).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }

    /// Drains the held events, oldest first, leaving the ring empty but
    /// keeping the sequence counter (callers reset per domain).
    pub fn take(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Clears the ring and restarts sequence numbering for a new
    /// domain.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.next_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn note(ring: &mut EventRing, text: &str) {
        ring.push(Step::ParentNs, TraceData::Note { text: text.into() });
    }

    #[test]
    fn below_capacity_nothing_drops_or_reorders() {
        let mut ring = EventRing::new(4);
        for i in 0..4 {
            note(&mut ring, &format!("e{i}"));
        }
        assert_eq!(ring.dropped(), 0);
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq as usize, i);
        }
    }

    #[test]
    fn overflow_discards_oldest_and_keeps_order() {
        let mut ring = EventRing::new(3);
        for i in 0..5 {
            note(&mut ring, &format!("e{i}"));
        }
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u32> = ring.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn reset_restarts_numbering() {
        let mut ring = EventRing::new(2);
        note(&mut ring, "a");
        ring.reset();
        note(&mut ring, "b");
        assert_eq!(ring.snapshot()[0].seq, 0);
        assert_eq!(ring.dropped(), 0);
    }
}
