//! Deterministic JSON encoding for trace records.
//!
//! Same discipline as the journal's codec: a tiny hand-rolled JSON
//! subset (`u64` numbers, strings, arrays, insertion-ordered objects)
//! so the encoding is byte-stable across platforms and runs — the trace
//! determinism CI gate literally `cmp`s two trace files. Decoding a
//! record that passed its frame checksum but does not match the schema
//! panics: that is a format bug, not data corruption.

use std::net::Ipv4Addr;

use crate::event::{DomainBlock, FlightDump, Step, TraceData, TraceEvent};

/// The JSON subset trace records are built from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Value {
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn encode(&self, out: &mut String) {
        match self {
            Value::Num(n) => out.push_str(&n.to_string()),
            Value::Str(s) => encode_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    // Fast path: nothing to escape (UTF-8 continuation bytes are ≥ 0x80,
    // so a byte scan is sound).
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

// ---------------------------------------------------------------- parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(self.bytes.get(self.pos), Some(&b), "trace record: expected {:?}", b as char);
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.bytes.get(self.pos).expect("trace record: truncated")
    }

    fn value(&mut self) -> Value {
        match self.peek() {
            b'"' => Value::Str(self.string()),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == b']' {
                    self.pos += 1;
                    return Value::Arr(items);
                }
                loop {
                    items.push(self.value());
                    match self.peek() {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Value::Arr(items);
                        }
                        other => panic!("trace record: bad array separator {:?}", other as char),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == b'}' {
                    self.pos += 1;
                    return Value::Obj(fields);
                }
                loop {
                    self.skip_ws();
                    let key = self.string();
                    self.expect(b':');
                    fields.push((key, self.value()));
                    match self.peek() {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Value::Obj(fields);
                        }
                        other => panic!("trace record: bad object separator {:?}", other as char),
                    }
                }
            }
            b'0'..=b'9' => {
                let start = self.pos;
                while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
                Value::Num(text.parse().expect("trace record: number overflow"))
            }
            other => panic!("trace record: unexpected byte {:?}", other as char),
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().expect("trace record: unterminated string") {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    let esc =
                        self.bytes.get(self.pos).copied().expect("trace record: truncated escape");
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .expect("trace record: bad \\u escape");
                            self.pos += 4;
                            let code =
                                u32::from_str_radix(hex, 16).expect("trace record: bad \\u escape");
                            out.push(char::from_u32(code).expect("trace record: bad \\u escape"));
                        }
                        other => panic!("trace record: bad escape {:?}", other as char),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the payload came from a
                    // &str, so boundaries are sound).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

fn parse_json(s: &str) -> Value {
    let mut p = Parser::new(s);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trace record: trailing bytes");
    v
}

// -------------------------------------------------------- field helpers

fn need<'v>(fields: &'v [(String, Value)], key: &str) -> &'v Value {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or_else(|| panic!("trace record: missing field `{key}`"))
}

fn get<'v>(fields: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn need_num(fields: &[(String, Value)], key: &str) -> u64 {
    match need(fields, key) {
        Value::Num(n) => *n,
        _ => panic!("trace record: field `{key}` is not a number"),
    }
}

fn need_str(fields: &[(String, Value)], key: &str) -> String {
    match need(fields, key) {
        Value::Str(s) => s.clone(),
        _ => panic!("trace record: field `{key}` is not a string"),
    }
}

fn need_arr<'v>(fields: &'v [(String, Value)], key: &str) -> &'v [Value] {
    match need(fields, key) {
        Value::Arr(items) => items,
        _ => panic!("trace record: field `{key}` is not an array"),
    }
}

fn addr_from(v: &Value) -> Ipv4Addr {
    match v {
        Value::Str(s) => s.parse().expect("trace record: bad address"),
        _ => panic!("trace record: address is not a string"),
    }
}

// ---------------------------------------------------------- event codec

/// Writes one event object straight into `out` — no intermediate value
/// tree. Domain blocks dominate a trace file's bytes, and this runs on
/// the worker thread for every sampled event, so it avoids the per-field
/// key allocations of the generic [`Value`] path. Field order matches
/// [`event_from_value`]'s expectations and must stay byte-stable.
fn write_event(e: &TraceEvent, out: &mut String) {
    use std::fmt::Write as _;
    let _ = write!(out, "{{\"seq\":{},\"step\":\"{}\"", e.seq, e.step.as_str());
    match &e.data {
        TraceData::Send { dst, attempt } => {
            let _ = write!(out, ",\"kind\":\"send\",\"dst\":\"{dst}\",\"attempt\":{attempt}");
        }
        TraceData::Fault { dst, attempt, verdict, extra_ms } => {
            let _ = write!(out, ",\"kind\":\"fault\",\"dst\":\"{dst}\",\"attempt\":{attempt}");
            out.push_str(",\"verdict\":");
            encode_string(verdict, out);
            let _ = write!(out, ",\"extra_ms\":{extra_ms}");
        }
        TraceData::Response { dst, attempt, class, ms } => {
            let _ = write!(out, ",\"kind\":\"response\",\"dst\":\"{dst}\",\"attempt\":{attempt}");
            out.push_str(",\"class\":");
            encode_string(class, out);
            let _ = write!(out, ",\"ms\":{ms}");
        }
        TraceData::Referral { cut, targets } => {
            out.push_str(",\"kind\":\"referral\",\"cut\":");
            encode_string(cut, out);
            let _ = write!(out, ",\"targets\":{targets}");
        }
        TraceData::Resolve { host, addrs } => {
            out.push_str(",\"kind\":\"resolve\",\"host\":");
            encode_string(host, out);
            out.push_str(",\"addrs\":[");
            for (i, a) in addrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{a}\"");
            }
            out.push(']');
        }
        TraceData::Charge { round, dst } => {
            out.push_str(",\"kind\":\"charge\",\"round\":");
            encode_string(round, out);
            if let Some(dst) = dst {
                let _ = write!(out, ",\"dst\":\"{dst}\"");
            }
        }
        TraceData::RetryDenied { dst } => {
            let _ = write!(out, ",\"kind\":\"retry_denied\",\"dst\":\"{dst}\"");
        }
        TraceData::Backoff { dst, attempt, ms } => {
            let _ = write!(
                out,
                ",\"kind\":\"backoff\",\"dst\":\"{dst}\",\"attempt\":{attempt},\"ms\":{ms}"
            );
        }
        TraceData::BreakerDenied { dst } => {
            let _ = write!(out, ",\"kind\":\"breaker_denied\",\"dst\":\"{dst}\"");
        }
        TraceData::BreakerTrial { dst } => {
            let _ = write!(out, ",\"kind\":\"breaker_trial\",\"dst\":\"{dst}\"");
        }
        TraceData::Breaker { dst, transition } => {
            let _ = write!(out, ",\"kind\":\"breaker\",\"dst\":\"{dst}\"");
            out.push_str(",\"transition\":");
            encode_string(transition, out);
        }
        TraceData::Note { text } => {
            out.push_str(",\"kind\":\"note\",\"text\":");
            encode_string(text, out);
        }
    }
    out.push('}');
}

fn write_events(events: &[TraceEvent], out: &mut String) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(e, out);
    }
    out.push(']');
}

/// Encodes a `domain` record from a borrowed block — the per-domain hot
/// path [`Tracer::submit`](crate::Tracer::submit) runs on the worker
/// thread, outside the sink lock.
pub(crate) fn encode_domain(block: &DomainBlock) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + block.events.len() * 96);
    let _ = write!(out, "{{\"kind\":\"domain\",\"index\":{},\"domain\":", block.index);
    encode_string(&block.domain, &mut out);
    if block.dropped > 0 {
        let _ = write!(out, ",\"dropped\":{}", block.dropped);
    }
    out.push_str(",\"events\":");
    write_events(&block.events, &mut out);
    out.push('}');
    out
}

/// Encodes a `dump` record from a borrowed flight dump (worker-side,
/// at trigger time).
pub(crate) fn encode_dump(dump: &FlightDump) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(64 + dump.events.len() * 96);
    out.push_str("{\"kind\":\"dump\",\"trigger\":");
    encode_string(&dump.trigger, &mut out);
    if let Some(index) = dump.index {
        let _ = write!(out, ",\"index\":{index}");
    }
    if let Some(domain) = &dump.domain {
        out.push_str(",\"domain\":");
        encode_string(domain, &mut out);
    }
    let _ = write!(out, ",\"ord\":{}", dump.ord);
    out.push_str(",\"events\":");
    write_events(&dump.events, &mut out);
    out.push('}');
    out
}

fn event_from_value(v: &Value) -> TraceEvent {
    let Value::Obj(fields) = v else { panic!("trace record: event is not an object") };
    let seq = u32::try_from(need_num(fields, "seq")).expect("trace record: seq overflow");
    let step_label = need_str(fields, "step");
    let step = Step::parse(&step_label)
        .unwrap_or_else(|| panic!("trace record: unknown step `{step_label}`"));
    let kind = need_str(fields, "kind");
    let attempt = |key: &str| u32::try_from(need_num(fields, key)).expect("attempt overflow");
    let data = match kind.as_str() {
        "send" => {
            TraceData::Send { dst: addr_from(need(fields, "dst")), attempt: attempt("attempt") }
        }
        "fault" => TraceData::Fault {
            dst: addr_from(need(fields, "dst")),
            attempt: attempt("attempt"),
            verdict: need_str(fields, "verdict"),
            extra_ms: need_num(fields, "extra_ms"),
        },
        "response" => TraceData::Response {
            dst: addr_from(need(fields, "dst")),
            attempt: attempt("attempt"),
            class: need_str(fields, "class"),
            ms: need_num(fields, "ms"),
        },
        "referral" => TraceData::Referral {
            cut: need_str(fields, "cut"),
            targets: need_num(fields, "targets"),
        },
        "resolve" => TraceData::Resolve {
            host: need_str(fields, "host"),
            addrs: need_arr(fields, "addrs").iter().map(addr_from).collect(),
        },
        "charge" => TraceData::Charge {
            round: need_str(fields, "round"),
            dst: get(fields, "dst").map(addr_from),
        },
        "retry_denied" => TraceData::RetryDenied { dst: addr_from(need(fields, "dst")) },
        "backoff" => TraceData::Backoff {
            dst: addr_from(need(fields, "dst")),
            attempt: attempt("attempt"),
            ms: need_num(fields, "ms"),
        },
        "breaker_denied" => TraceData::BreakerDenied { dst: addr_from(need(fields, "dst")) },
        "breaker_trial" => TraceData::BreakerTrial { dst: addr_from(need(fields, "dst")) },
        "breaker" => TraceData::Breaker {
            dst: addr_from(need(fields, "dst")),
            transition: need_str(fields, "transition"),
        },
        "note" => TraceData::Note { text: need_str(fields, "text") },
        other => panic!("trace record: unknown event kind `{other}`"),
    };
    TraceEvent { seq, step, data }
}

// --------------------------------------------------------- record codec

/// One framed record in a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// File header: always the first frame.
    Header {
        /// Format version (currently 1).
        version: u64,
        /// Sampling seed.
        seed: u64,
        /// Sampling rate in parts per million.
        sample_ppm: u64,
        /// Flight-recorder ring capacity (events per domain).
        flight_capacity: u64,
        /// Campaign domain count.
        domains: u64,
    },
    /// A runner stage boundary (`begin`/`end`), written single-threaded.
    Stage {
        /// Stage name (`round1`, ...).
        name: String,
        /// `begin` or `end`.
        mark: String,
    },
    /// The campaign resumed from a journal at this domain index.
    Resume {
        /// First freshly probed domain index.
        from: u64,
    },
    /// All events of one sampled domain.
    Domain(DomainBlock),
    /// A flight-recorder snapshot.
    Dump(FlightDump),
    /// Trailer: probing finished and the sink was flushed.
    Complete {
        /// Sampled domain blocks written.
        domains: u64,
        /// Events written across all blocks.
        events: u64,
        /// Flight dumps written.
        dumps: u64,
    },
}

impl TraceRecord {
    /// Byte-stable JSON encoding (one line, no whitespace).
    pub fn encode(&self) -> String {
        let value = match self {
            TraceRecord::Header { version, seed, sample_ppm, flight_capacity, domains } => {
                obj(vec![
                    ("kind", Value::Str("header".into())),
                    ("version", Value::Num(*version)),
                    ("seed", Value::Num(*seed)),
                    ("sample_ppm", Value::Num(*sample_ppm)),
                    ("flight_capacity", Value::Num(*flight_capacity)),
                    ("domains", Value::Num(*domains)),
                ])
            }
            TraceRecord::Stage { name, mark } => obj(vec![
                ("kind", Value::Str("stage".into())),
                ("name", Value::Str(name.clone())),
                ("mark", Value::Str(mark.clone())),
            ]),
            TraceRecord::Resume { from } => {
                obj(vec![("kind", Value::Str("resume".into())), ("from", Value::Num(*from))])
            }
            TraceRecord::Domain(block) => return encode_domain(block),
            TraceRecord::Dump(dump) => return encode_dump(dump),
            TraceRecord::Complete { domains, events, dumps } => obj(vec![
                ("kind", Value::Str("complete".into())),
                ("domains", Value::Num(*domains)),
                ("events", Value::Num(*events)),
                ("dumps", Value::Num(*dumps)),
            ]),
        };
        let mut out = String::new();
        value.encode(&mut out);
        out
    }

    /// Decodes a record that already passed its frame checksum.
    ///
    /// # Panics
    ///
    /// Panics on any schema mismatch — a checksummed-but-undecodable
    /// record means a format bug, not torn bytes.
    pub fn decode(json: &str) -> TraceRecord {
        let Value::Obj(fields) = parse_json(json) else { panic!("trace record: not an object") };
        let kind = need_str(&fields, "kind");
        match kind.as_str() {
            "header" => TraceRecord::Header {
                version: need_num(&fields, "version"),
                seed: need_num(&fields, "seed"),
                sample_ppm: need_num(&fields, "sample_ppm"),
                flight_capacity: need_num(&fields, "flight_capacity"),
                domains: need_num(&fields, "domains"),
            },
            "stage" => TraceRecord::Stage {
                name: need_str(&fields, "name"),
                mark: need_str(&fields, "mark"),
            },
            "resume" => TraceRecord::Resume { from: need_num(&fields, "from") },
            "domain" => TraceRecord::Domain(DomainBlock {
                index: need_num(&fields, "index"),
                domain: need_str(&fields, "domain"),
                dropped: get(&fields, "dropped")
                    .map(|v| match v {
                        Value::Num(n) => u32::try_from(*n).expect("dropped overflow"),
                        _ => panic!("trace record: `dropped` is not a number"),
                    })
                    .unwrap_or(0),
                events: need_arr(&fields, "events").iter().map(event_from_value).collect(),
            }),
            "dump" => TraceRecord::Dump(FlightDump {
                trigger: need_str(&fields, "trigger"),
                index: get(&fields, "index").map(|v| match v {
                    Value::Num(n) => *n,
                    _ => panic!("trace record: `index` is not a number"),
                }),
                domain: get(&fields, "domain").map(|v| match v {
                    Value::Str(s) => s.clone(),
                    _ => panic!("trace record: `domain` is not a string"),
                }),
                ord: u32::try_from(need_num(&fields, "ord")).expect("ord overflow"),
                events: need_arr(&fields, "events").iter().map(event_from_value).collect(),
            }),
            "complete" => TraceRecord::Complete {
                domains: need_num(&fields, "domains"),
                events: need_num(&fields, "events"),
                dumps: need_num(&fields, "dumps"),
            },
            other => panic!("trace record: unknown kind `{other}`"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Step;

    fn sample_block() -> DomainBlock {
        DomainBlock {
            index: 7,
            domain: "portal.gov.zz".into(),
            dropped: 0,
            events: vec![
                TraceEvent {
                    seq: 0,
                    step: Step::ParentNs,
                    data: TraceData::Charge { round: "round1".into(), dst: None },
                },
                TraceEvent {
                    seq: 1,
                    step: Step::ParentNs,
                    data: TraceData::Send { dst: "198.41.0.4".parse().unwrap(), attempt: 0 },
                },
                TraceEvent {
                    seq: 2,
                    step: Step::Referral,
                    data: TraceData::Referral { cut: "gov.zz".into(), targets: 2 },
                },
                TraceEvent {
                    seq: 3,
                    step: Step::AddrResolve,
                    data: TraceData::Resolve {
                        host: "ns1.gov.zz".into(),
                        addrs: vec!["192.0.2.1".parse().unwrap()],
                    },
                },
                TraceEvent {
                    seq: 4,
                    step: Step::ChildNs,
                    data: TraceData::Fault {
                        dst: "192.0.2.1".parse().unwrap(),
                        attempt: 0,
                        verdict: "flap".into(),
                        extra_ms: 0,
                    },
                },
                TraceEvent {
                    seq: 5,
                    step: Step::ChildNs,
                    data: TraceData::Response {
                        dst: "192.0.2.1".parse().unwrap(),
                        attempt: 0,
                        class: "timeout".into(),
                        ms: 900,
                    },
                },
            ],
        }
    }

    #[test]
    fn records_roundtrip_byte_identically() {
        let records = vec![
            TraceRecord::Header {
                version: 1,
                seed: 7,
                sample_ppm: 1_000_000,
                flight_capacity: 512,
                domains: 600,
            },
            TraceRecord::Stage { name: "round1".into(), mark: "begin".into() },
            TraceRecord::Resume { from: 150 },
            TraceRecord::Domain(sample_block()),
            TraceRecord::Dump(FlightDump {
                trigger: "retry_exhausted".into(),
                index: Some(7),
                domain: Some("portal.gov.zz".into()),
                ord: 0,
                events: sample_block().events,
            }),
            TraceRecord::Dump(FlightDump {
                trigger: "analysis_panic:providers".into(),
                index: None,
                domain: None,
                ord: 0,
                events: vec![],
            }),
            TraceRecord::Complete { domains: 600, events: 40_000, dumps: 3 },
        ];
        for r in records {
            let json = r.encode();
            let back = TraceRecord::decode(&json);
            assert_eq!(back, r);
            assert_eq!(back.encode(), json, "re-encode not byte-identical");
        }
    }

    #[test]
    fn strings_with_escapes_survive() {
        let r = TraceRecord::Stage { name: "a\"b\\c\nd\te\u{1}".into(), mark: "begin".into() };
        assert_eq!(TraceRecord::decode(&r.encode()), r);
    }

    #[test]
    #[should_panic(expected = "unknown kind")]
    fn unknown_kind_panics() {
        TraceRecord::decode("{\"kind\":\"mystery\"}");
    }
}
