//! Cross-run trace comparison primitives: aligning two [`TraceLog`]s
//! block-by-block and finding the first event where two recordings of
//! the same domain disagree.
//!
//! These are the building blocks `govdns-diff` composes into a full
//! `RunDiff`; they live here because they are pure functions of trace
//! data and belong next to the reader. Alignment is by *domain name*
//! (not campaign index): two runs of different seeds or worlds probe
//! different domain lists, and the name is the stable join key the
//! longitudinal story needs.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use crate::event::{DomainBlock, TraceEvent};
use crate::read::{read_trace, TraceLog};

/// One aligned row of two trace logs: a domain name and the block each
/// run recorded for it (`None` = not sampled / not probed in that run).
#[derive(Debug, Clone, Copy)]
pub struct AlignedBlock<'l> {
    /// The join key.
    pub domain: &'l str,
    /// Run A's block, if any.
    pub a: Option<&'l DomainBlock>,
    /// Run B's block, if any.
    pub b: Option<&'l DomainBlock>,
}

/// Aligns two trace logs by domain name, in lexicographic name order
/// (deterministic regardless of either run's probing order).
pub fn align_blocks<'l>(a: &'l TraceLog, b: &'l TraceLog) -> Vec<AlignedBlock<'l>> {
    let mut rows: BTreeMap<&'l str, (Option<&'l DomainBlock>, Option<&'l DomainBlock>)> =
        BTreeMap::new();
    for block in &a.domains {
        rows.entry(&block.domain).or_default().0 = Some(block);
    }
    for block in &b.domains {
        rows.entry(&block.domain).or_default().1 = Some(block);
    }
    rows.into_iter().map(|(domain, (a, b))| AlignedBlock { domain, a, b }).collect()
}

/// The first probe step at which two recordings of one domain disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDivergence {
    /// Position in the event streams (both blocks agree on everything
    /// before it).
    pub pos: usize,
    /// Run A's event at `pos` (`None` = A's stream ended first).
    pub a: Option<TraceEvent>,
    /// Run B's event at `pos` (`None` = B's stream ended first).
    pub b: Option<TraceEvent>,
}

/// Walks two blocks' event streams in lockstep and returns the first
/// position where they disagree (different step or payload, or one
/// stream ending early). `None` means the recordings are identical.
///
/// Sequence numbers are compared too — they are part of the recorded
/// bytes — but for ring-overflow-free blocks they are positional and
/// never diverge on their own.
pub fn first_divergence(a: &DomainBlock, b: &DomainBlock) -> Option<EventDivergence> {
    let n = a.events.len().max(b.events.len());
    for pos in 0..n {
        let ea = a.events.get(pos);
        let eb = b.events.get(pos);
        if ea != eb {
            return Some(EventDivergence { pos, a: ea.cloned(), b: eb.cloned() });
        }
    }
    None
}

/// A rendered window of one block's timeline around a divergence: the
/// `--explain`-style context a human reads to see *how* the runs got to
/// the point of disagreement. Lines are [`TraceEvent::render`] output;
/// the divergent line (when the stream reaches `pos`) is prefixed with
/// `> `, the agreeing context with two spaces.
pub fn divergence_context(block: &DomainBlock, pos: usize, radius: usize) -> Vec<String> {
    let start = pos.saturating_sub(radius);
    let end = (pos + radius + 1).min(block.events.len());
    let mut lines = Vec::with_capacity(end.saturating_sub(start) + 1);
    if start > 0 {
        lines.push(format!("  ... {start} earlier events"));
    }
    for (i, event) in block.events.iter().enumerate().take(end).skip(start) {
        let marker = if i == pos { "> " } else { "  " };
        lines.push(format!("{marker}{}", event.render()));
    }
    if pos >= block.events.len() {
        lines.push("> (stream ends here)".to_string());
    }
    lines
}

/// Reads two trace files side-by-side (the cross-run entry point).
///
/// # Errors
///
/// Returns the first I/O error; each file's torn tail is tolerated
/// exactly as in [`read_trace`].
pub fn read_trace_pair(
    a: impl AsRef<Path>,
    b: impl AsRef<Path>,
) -> io::Result<(TraceLog, TraceLog)> {
    Ok((read_trace(a)?, read_trace(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Step, TraceData};

    fn event(seq: u32, text: &str) -> TraceEvent {
        TraceEvent { seq, step: Step::ParentNs, data: TraceData::Note { text: text.to_string() } }
    }

    fn block(domain: &str, texts: &[&str]) -> DomainBlock {
        DomainBlock {
            index: 0,
            domain: domain.to_string(),
            dropped: 0,
            events: texts.iter().enumerate().map(|(i, t)| event(i as u32, t)).collect(),
        }
    }

    #[test]
    fn identical_blocks_have_no_divergence() {
        let a = block("a.gov.zz", &["one", "two"]);
        assert_eq!(first_divergence(&a, &a.clone()), None);
    }

    #[test]
    fn first_differing_event_is_reported() {
        let a = block("a.gov.zz", &["one", "two", "three"]);
        let b = block("a.gov.zz", &["one", "2", "three"]);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.pos, 1);
        assert_eq!(d.a, Some(event(1, "two")));
        assert_eq!(d.b, Some(event(1, "2")));
    }

    #[test]
    fn shorter_stream_diverges_at_its_end() {
        let a = block("a.gov.zz", &["one"]);
        let b = block("a.gov.zz", &["one", "two"]);
        let d = first_divergence(&a, &b).unwrap();
        assert_eq!(d.pos, 1);
        assert_eq!(d.a, None);
        assert_eq!(d.b, Some(event(1, "two")));
    }

    #[test]
    fn alignment_joins_by_name_in_order() {
        let mut log_a = TraceLog::default();
        log_a.domains.push(block("b.gov.zz", &[]));
        log_a.domains.push(block("a.gov.zz", &[]));
        let mut log_b = TraceLog::default();
        log_b.domains.push(block("b.gov.zz", &[]));
        log_b.domains.push(block("c.gov.zz", &[]));
        let rows = align_blocks(&log_a, &log_b);
        let names: Vec<&str> = rows.iter().map(|r| r.domain).collect();
        assert_eq!(names, vec!["a.gov.zz", "b.gov.zz", "c.gov.zz"]);
        assert!(rows[0].a.is_some() && rows[0].b.is_none());
        assert!(rows[1].a.is_some() && rows[1].b.is_some());
        assert!(rows[2].a.is_none() && rows[2].b.is_some());
    }

    #[test]
    fn context_marks_the_divergent_line() {
        let b = block("a.gov.zz", &["one", "two", "three", "four"]);
        let lines = divergence_context(&b, 2, 1);
        assert_eq!(lines.len(), 4, "{lines:?}");
        assert!(lines[0].starts_with("  ... 1 earlier events"));
        assert!(lines[2].starts_with("> "));
        // Past-the-end divergence (stream exhausted).
        let lines = divergence_context(&b, 4, 1);
        assert!(lines.last().unwrap().contains("stream ends here"));
    }
}
