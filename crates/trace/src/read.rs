//! Reading a trace file back: frames → records → causal timelines.
//!
//! The reader applies the same torn-tail discipline as the journal
//! replayer: it walks `T1` frames until one fails its header, length,
//! or checksum test, keeps everything before the tear, and reports the
//! remainder as [`TraceLog::dropped_bytes`].

use std::io;
use std::path::Path;

use crate::codec::TraceRecord;
use crate::event::{DomainBlock, FlightDump};
use crate::frame::read_frame;

/// The header frame's fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceHeader {
    /// Format version.
    pub version: u64,
    /// Sampling seed.
    pub seed: u64,
    /// Sampling rate, parts per million.
    pub sample_ppm: u64,
    /// Flight-recorder ring capacity.
    pub flight_capacity: u64,
    /// Campaign domain count.
    pub domains: u64,
}

/// A decoded trace file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// The header frame, when the file has one.
    pub header: Option<TraceHeader>,
    /// Stage boundaries in file order, as `(name, mark)`.
    pub stages: Vec<(String, String)>,
    /// The resume marker, when the campaign resumed from a journal.
    pub resume_from: Option<u64>,
    /// Sampled domain blocks, in campaign index order.
    pub domains: Vec<DomainBlock>,
    /// Flight-recorder dumps, in file order (sorted by
    /// `(domain index, ordinal)` at write time).
    pub dumps: Vec<FlightDump>,
    /// Whether the completion trailer was seen.
    pub completed: bool,
    /// Bytes after the last valid frame (a torn tail, if nonzero).
    pub dropped_bytes: u64,
}

impl TraceLog {
    /// The block for a domain, if it was sampled.
    pub fn domain(&self, name: &str) -> Option<&DomainBlock> {
        self.domains.iter().find(|b| b.domain == name)
    }

    /// Total events across all domain blocks.
    pub fn events_total(&self) -> u64 {
        self.domains.iter().map(|b| b.events.len() as u64).sum()
    }

    /// Resolves an evidence citation `(domain, seq)` to the recorded
    /// event it names. `None` means the citation is dangling: the domain
    /// was never sampled, or the ring dropped that sequence number.
    pub fn resolve(&self, domain: &str, seq: u32) -> Option<&crate::event::TraceEvent> {
        self.domain(domain).and_then(|b| b.event(seq))
    }
}

/// Reads and decodes a trace file, dropping any torn tail.
///
/// # Panics
///
/// Panics if a frame passes its checksum but fails to decode — a
/// format bug, not corruption (corruption fails the checksum and lands
/// in [`TraceLog::dropped_bytes`]).
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<TraceLog> {
    let bytes = std::fs::read(path)?;
    let mut log = TraceLog::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some((payload, next)) = read_frame(&bytes, offset) else {
            break;
        };
        match TraceRecord::decode(payload) {
            TraceRecord::Header { version, seed, sample_ppm, flight_capacity, domains } => {
                log.header =
                    Some(TraceHeader { version, seed, sample_ppm, flight_capacity, domains });
            }
            TraceRecord::Stage { name, mark } => log.stages.push((name, mark)),
            TraceRecord::Resume { from } => log.resume_from = Some(from),
            TraceRecord::Domain(block) => log.domains.push(block),
            TraceRecord::Dump(dump) => log.dumps.push(dump),
            TraceRecord::Complete { .. } => log.completed = true,
        }
        offset = next;
    }
    log.dropped_bytes = (bytes.len() - offset) as u64;
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::write_frame;

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("govdns-trace-read-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.trace");
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &TraceRecord::Stage { name: "round1".into(), mark: "begin".into() }.encode(),
        );
        buf.extend_from_slice(b"T1 0123456789abcdef 000000ff\n{\"kind\":\"dom");
        std::fs::write(&path, &buf).unwrap();
        let log = read_trace(&path).unwrap();
        assert_eq!(log.stages, vec![("round1".to_string(), "begin".to_string())]);
        assert!(log.dropped_bytes > 0);
        assert!(!log.completed);
    }
}
