//! The trace sink: per-worker recorders feeding one ordered file.
//!
//! **Hot-path discipline.** Probing workers only ever touch their own
//! [`WorkerTracer`] — a plain ring buffer, no locks, no atomics. The
//! shared [`Tracer`] is locked exactly once per *domain* (when a worker
//! submits its finished block) and once per flight dump, never per
//! query — and the JSON encoding + framing of blocks and dumps happens
//! on the worker thread *before* the lock is taken, so the sink lock
//! only ever covers a buffered byte append. That keeps the traced hot
//! path within the campaign bench's overhead gate.
//!
//! **Determinism.** The file must be byte-identical at any worker
//! count, so blocks cannot be written in completion order. The sink
//! keeps a reorder buffer keyed by campaign domain index and drains it
//! in index order; unsampled domains submit an empty placeholder so the
//! drain never stalls. Campaign-level frames (header, stage marks,
//! resume marker, completion trailer, analysis-panic dumps) are written
//! only from single-threaded runner sections, so their placement is
//! fixed too. Flight dumps are collected during the run and written at
//! [`Tracer::finish`] sorted by `(domain index, ordinal)`.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;

use govdns_model::DomainName;

use crate::codec::TraceRecord;
use crate::event::{DomainBlock, FlightDump, Step, TraceData};
use crate::frame::write_frame;
use crate::ring::EventRing;
use crate::sample::{TraceSampler, SAMPLE_FULL};

/// Default flight-recorder ring capacity (events per domain).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// Where and how to trace a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Trace file path (created or truncated).
    pub path: PathBuf,
    /// Sampling seed — independent of the world and chaos seeds.
    pub seed: u64,
    /// Sampling rate in parts per million of domains (1_000_000 traces
    /// everything).
    pub sample_ppm: u32,
    /// Flight-recorder ring capacity, events per domain.
    pub flight_capacity: usize,
}

impl TraceSpec {
    /// Full-fidelity tracing to `path` (sample everything, seed 0,
    /// default ring capacity).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TraceSpec {
            path: path.into(),
            seed: 0,
            sample_ppm: SAMPLE_FULL,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
        }
    }

    /// Sets the sampling seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling rate in parts per million (builder style).
    #[must_use]
    pub fn with_sample_ppm(mut self, ppm: u32) -> Self {
        self.sample_ppm = ppm;
        self
    }
}

struct Sink {
    writer: io::BufWriter<fs::File>,
    /// Next domain index the file is waiting for.
    next: u64,
    /// Blocks that finished ahead of `next` (`None` = unsampled), each
    /// paired with its frame bytes, encoded worker-side.
    pending: BTreeMap<u64, Option<(DomainBlock, Vec<u8>)>>,
    domains_written: u64,
    events_written: u64,
    /// The highest-index sampled block written so far — the context an
    /// analysis-panic dump records.
    last_block: Option<DomainBlock>,
    finished: bool,
}

impl Sink {
    fn frame(&mut self, record: &TraceRecord) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &record.encode());
        self.writer.write_all(&buf).expect("trace sink write failed");
    }

    fn drain(&mut self) {
        while let Some(slot) = self.pending.remove(&self.next) {
            if let Some((block, bytes)) = slot {
                self.domains_written += 1;
                self.events_written += block.events.len() as u64;
                self.writer.write_all(&bytes).expect("trace sink write failed");
                self.last_block = Some(block);
            }
            self.next += 1;
        }
    }
}

/// Frames a pre-encoded record payload (worker-side; no lock held).
fn framed(payload: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 32);
    write_frame(&mut buf, payload);
    buf
}

/// The shared trace sink for one campaign. Create with
/// [`Tracer::create`], hand each worker a [`WorkerTracer`] via
/// [`Tracer::worker`], and close with [`Tracer::finish`].
pub struct Tracer {
    spec: TraceSpec,
    sampler: TraceSampler,
    sink: Mutex<Sink>,
    /// Flight dumps with their frame bytes (encoded at record time, on
    /// the triggering worker's thread).
    dumps: Mutex<Vec<(FlightDump, Vec<u8>)>>,
    analysis_dumps: Mutex<u32>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("spec", &self.spec).finish_non_exhaustive()
    }
}

impl Tracer {
    /// Opens the trace file, writes the header frame (and a resume
    /// marker when `resume_from > 0`), and returns the shared sink.
    pub fn create(spec: &TraceSpec, domains: u64, resume_from: u64) -> io::Result<Arc<Tracer>> {
        let file = fs::File::create(&spec.path)?;
        let tracer = Tracer {
            spec: spec.clone(),
            sampler: TraceSampler::new(spec.seed, spec.sample_ppm),
            sink: Mutex::new(Sink {
                writer: io::BufWriter::new(file),
                next: resume_from,
                pending: BTreeMap::new(),
                domains_written: 0,
                events_written: 0,
                last_block: None,
                finished: false,
            }),
            dumps: Mutex::new(Vec::new()),
            analysis_dumps: Mutex::new(0),
        };
        {
            let mut sink = tracer.sink.lock();
            sink.frame(&TraceRecord::Header {
                version: 1,
                seed: spec.seed,
                sample_ppm: u64::from(spec.sample_ppm),
                flight_capacity: spec.flight_capacity as u64,
                domains,
            });
            if resume_from > 0 {
                sink.frame(&TraceRecord::Resume { from: resume_from });
            }
        }
        Ok(Arc::new(tracer))
    }

    /// The spec the tracer was created with.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// The sampling verdict for a domain hash (pure; thread-safe).
    pub fn keep(&self, domain_fnv64: u64) -> bool {
        self.sampler.keep(domain_fnv64)
    }

    /// A per-worker recorder bound to this sink.
    pub fn worker(self: &Arc<Self>) -> WorkerTracer {
        WorkerTracer {
            tracer: Arc::clone(self),
            ring: EventRing::new(self.spec.flight_capacity),
            index: 0,
            domain: String::new(),
            sampled: false,
            active: false,
            step: Step::ParentNs,
            dump_ord: 0,
            dumped_triggers: Vec::new(),
        }
    }

    /// Writes a stage boundary frame. Call only from single-threaded
    /// runner sections, where its file position is deterministic.
    pub fn stage(&self, name: &str, mark: &str) {
        self.sink
            .lock()
            .frame(&TraceRecord::Stage { name: name.to_string(), mark: mark.to_string() });
    }

    /// Submits one domain's finished block (`None` for an unsampled
    /// domain — the placeholder keeps the in-order drain moving). The
    /// block is encoded and framed on the calling thread; the sink lock
    /// only covers the buffered append.
    pub fn submit(&self, index: u64, block: Option<DomainBlock>) {
        let slot = block.map(|b| {
            let bytes = framed(&crate::codec::encode_domain(&b));
            (b, bytes)
        });
        let mut sink = self.sink.lock();
        sink.pending.insert(index, slot);
        sink.drain();
    }

    /// Records a flight dump (written to the file at [`finish`], sorted
    /// by `(domain index, ordinal)`). Encoded on the calling thread.
    ///
    /// [`finish`]: Tracer::finish
    pub fn record_dump(&self, dump: FlightDump) {
        let bytes = framed(&crate::codec::encode_dump(&dump));
        self.dumps.lock().push((dump, bytes));
    }

    /// The flight dumps recorded so far, in trigger order.
    pub fn dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().iter().map(|(dump, _)| dump.clone()).collect()
    }

    /// Writes the sorted flight dumps and the completion trailer, then
    /// flushes. Idempotent.
    pub fn finish(&self) {
        let mut sink = self.sink.lock();
        if sink.finished {
            return;
        }
        sink.drain();
        let mut dumps = self.dumps.lock();
        dumps.sort_by(|a, b| {
            let ka = (a.0.index.unwrap_or(u64::MAX), a.0.ord);
            let kb = (b.0.index.unwrap_or(u64::MAX), b.0.ord);
            ka.cmp(&kb)
        });
        let n = dumps.len() as u64;
        for (_, bytes) in dumps.iter() {
            sink.writer.write_all(bytes).expect("trace sink write failed");
        }
        drop(dumps);
        let (domains, events) = (sink.domains_written, sink.events_written);
        sink.frame(&TraceRecord::Complete { domains, events, dumps: n });
        sink.writer.flush().expect("trace sink flush failed");
        sink.finished = true;
    }

    /// Records and appends an analysis-panic dump: the flight
    /// recorder's view at the time probing ended (the last sampled
    /// block), tagged with the dead stage. May be called after
    /// [`finish`] — the frame is appended and flushed immediately.
    ///
    /// [`finish`]: Tracer::finish
    pub fn analysis_dump(&self, stage: &str) {
        let mut ord = self.analysis_dumps.lock();
        let mut sink = self.sink.lock();
        let events = sink.last_block.as_ref().map(|b| b.events.clone()).unwrap_or_default();
        let dump = FlightDump {
            trigger: format!("analysis_panic:{stage}"),
            index: None,
            domain: None,
            ord: *ord,
            events,
        };
        *ord += 1;
        let bytes = framed(&crate::codec::encode_dump(&dump));
        sink.writer.write_all(&bytes).expect("trace sink write failed");
        sink.writer.flush().expect("trace sink flush failed");
        drop(sink);
        self.dumps.lock().push((dump, bytes));
    }
}

/// One worker's private recorder: a ring for the domain being probed,
/// plus the bookkeeping to submit finished blocks in campaign order.
///
/// Not `Sync` by design — each worker owns exactly one.
#[derive(Debug)]
pub struct WorkerTracer {
    tracer: Arc<Tracer>,
    ring: EventRing,
    index: u64,
    domain: String,
    sampled: bool,
    active: bool,
    step: Step,
    dump_ord: u32,
    /// Triggers already dumped for the current domain, for
    /// [`dump_once`](WorkerTracer::dump_once).
    dumped_triggers: Vec<String>,
}

impl WorkerTracer {
    /// Starts recording domain `index`. Decides sampling from the
    /// domain's stable hash; an unsampled domain records nothing but
    /// still submits its placeholder at [`end`](WorkerTracer::end).
    pub fn begin(&mut self, index: u64, domain: &DomainName) {
        if self.active {
            self.end();
        }
        self.sampled = self.tracer.keep(domain.fnv64());
        self.domain = if self.sampled { domain.to_string() } else { String::new() };
        self.index = index;
        self.ring.reset();
        self.step = Step::ParentNs;
        self.dump_ord = 0;
        self.dumped_triggers.clear();
        self.active = true;
    }

    /// Whether events are currently being recorded (active + sampled) —
    /// callers use this to skip building event payloads entirely.
    pub fn recording(&self) -> bool {
        self.active && self.sampled
    }

    /// The protocol step subsequent events are tagged with.
    pub fn step(&self) -> Step {
        self.step
    }

    /// Moves to a new protocol step.
    pub fn set_step(&mut self, step: Step) {
        self.step = step;
    }

    /// Records one event at the current step.
    pub fn emit(&mut self, data: TraceData) {
        if self.recording() {
            let step = self.step;
            self.ring.push(step, data);
        }
    }

    /// Records one event at an explicit step without moving the cursor.
    pub fn emit_at(&mut self, step: Step, data: TraceData) {
        if self.recording() {
            self.ring.push(step, data);
        }
    }

    /// Snapshots the ring into a flight dump (breaker trip, retry
    /// exhaustion, REFUSED burst). No-op for unsampled domains, so dump
    /// contents stay deterministic under sampling.
    pub fn dump(&mut self, trigger: &str) {
        if !self.recording() {
            return;
        }
        let dump = FlightDump {
            trigger: trigger.to_string(),
            index: Some(self.index),
            domain: Some(self.domain.clone()),
            ord: self.dump_ord,
            events: self.ring.snapshot(),
        };
        self.dump_ord += 1;
        self.dumped_triggers.push(trigger.to_string());
        self.tracer.record_dump(dump);
    }

    /// Like [`dump`](WorkerTracer::dump), but at most once per trigger
    /// per domain — for high-frequency triggers (retry exhaustion,
    /// REFUSED bursts) where the first occurrence carries the incident
    /// context and repeats would only duplicate ring contents into the
    /// file.
    pub fn dump_once(&mut self, trigger: &str) {
        if self.dumped_triggers.iter().any(|t| t == trigger) {
            return;
        }
        self.dump(trigger);
    }

    /// Closes the current domain and submits its block (or placeholder)
    /// to the ordered sink.
    pub fn end(&mut self) {
        if !self.active {
            return;
        }
        let block = if self.sampled {
            Some(DomainBlock {
                index: self.index,
                domain: std::mem::take(&mut self.domain),
                dropped: self.ring.dropped(),
                events: self.ring.take(),
            })
        } else {
            None
        };
        self.tracer.submit(self.index, block);
        self.active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::read_trace;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn out_of_order_submission_lands_in_index_order() {
        let path = tmp("reorder.trace");
        let tracer = Tracer::create(&TraceSpec::new(&path), 3, 0).unwrap();
        let mut w1 = tracer.worker();
        let mut w2 = tracer.worker();
        // Worker 2 finishes domain 2 before worker 1 finishes 0 and 1.
        w2.begin(2, &name("c.gov.zz"));
        w2.emit(TraceData::Note { text: "late".into() });
        w2.end();
        w1.begin(0, &name("a.gov.zz"));
        w1.emit(TraceData::Note { text: "first".into() });
        w1.end();
        w1.begin(1, &name("b.gov.zz"));
        w1.end();
        tracer.stage("round1", "end");
        tracer.finish();

        let log = read_trace(&path).unwrap();
        assert!(log.completed);
        assert_eq!(log.dropped_bytes, 0);
        let indices: Vec<u64> = log.domains.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(log.domains[0].domain, "a.gov.zz");
    }

    #[test]
    fn dumps_are_sorted_and_counted() {
        let path = tmp("dumps.trace");
        let tracer = Tracer::create(&TraceSpec::new(&path), 2, 0).unwrap();
        let mut w = tracer.worker();
        w.begin(1, &name("b.gov.zz"));
        w.emit(TraceData::Note { text: "x".into() });
        w.dump("retry_exhausted");
        w.end();
        w.begin(0, &name("a.gov.zz"));
        w.dump("breaker_trip");
        w.end();
        tracer.finish();
        tracer.analysis_dump("providers");

        let log = read_trace(&path).unwrap();
        assert_eq!(log.dumps.len(), 3);
        assert_eq!(log.dumps[0].trigger, "breaker_trip");
        assert_eq!(log.dumps[0].index, Some(0));
        assert_eq!(log.dumps[1].trigger, "retry_exhausted");
        assert_eq!(log.dumps[1].events.len(), 1);
        assert_eq!(log.dumps[2].trigger, "analysis_panic:providers");
    }

    #[test]
    fn unsampled_domains_leave_no_blocks_but_do_not_stall() {
        let path = tmp("sampled.trace");
        let spec = TraceSpec::new(&path).with_seed(5).with_sample_ppm(0);
        let tracer = Tracer::create(&spec, 2, 0).unwrap();
        let mut w = tracer.worker();
        for i in 0..2 {
            w.begin(i, &name("a.gov.zz"));
            w.emit(TraceData::Note { text: "ignored".into() });
            w.end();
        }
        tracer.finish();
        let log = read_trace(&path).unwrap();
        assert!(log.completed);
        assert!(log.domains.is_empty());
    }
}
