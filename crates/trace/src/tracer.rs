//! The trace sink: per-worker recorders feeding one ordered file
//! through a dedicated I/O thread.
//!
//! **Hot-path discipline.** Probing workers only ever touch their own
//! [`WorkerTracer`] — a plain ring buffer, no locks, no atomics. When a
//! worker finishes a domain (or triggers a flight dump) it sends one
//! message down a bounded channel to the sink I/O thread and returns
//! immediately; it never acquires a sink mutex. JSON encoding and
//! framing of blocks and dumps happen on the I/O thread, off the
//! probing path entirely. The only way a worker can stall is
//! backpressure — the channel filling faster than the I/O thread
//! drains it — and that wait is measured ([`Tracer::wait_ns`]) so the
//! campaign bench and the e2e suite can assert it stays at zero.
//!
//! **Determinism.** The file must be byte-identical at any worker
//! count, so blocks cannot be written in completion order. The I/O
//! thread owns a reorder buffer keyed by campaign domain index and
//! drains it in index order; unsampled domains submit an empty
//! placeholder so the drain never stalls. Campaign-level frames
//! (header, stage marks, resume marker, completion trailer,
//! analysis-panic dumps) are written only from single-threaded runner
//! sections; they travel down the same FIFO channel, so every block
//! submitted before them lands first and their file position is fixed
//! too. Flight dumps are collected during the run (bounded by
//! [`TraceSpec::max_dumps`]) and written at [`Tracer::finish`] sorted
//! by `(domain index, ordinal)` — a total order on unique keys, so the
//! arrival interleaving never shows in the file.
//!
//! **Shutdown.** [`Tracer::finish`] sends a final message, joins the
//! I/O thread, reclaims the sink, and writes the sorted dumps plus the
//! completion trailer. If a probing worker panics and the campaign
//! unwinds without calling `finish`, dropping the `Tracer` closes the
//! channel; the I/O thread drains what it has and exits, and the
//! buffered writer flushes best-effort on drop — the file is left
//! without its completion trailer, which readers already treat as an
//! interrupted trace.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use govdns_model::DomainName;

use crate::codec::TraceRecord;
use crate::event::{DomainBlock, FlightDump, Step, TraceData};
use crate::frame::write_frame;
use crate::ring::EventRing;
use crate::sample::{TraceSampler, SAMPLE_FULL};

/// Default flight-recorder ring capacity (events per domain).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 512;

/// Default cap on collected flight dumps per campaign: high enough that
/// no legitimate run ever trips it, low enough that an incident storm
/// under `ChaosProfile::Hostile` cannot grow the dump buffer without
/// limit.
pub const DEFAULT_MAX_DUMPS: usize = 65_536;

/// Bounded sink-channel capacity, in messages. Each message is one
/// finished domain block (or one flight dump), so the queue bounds
/// memory at roughly `capacity × flight_capacity` events while leaving
/// enough slack that workers never block on a healthy I/O thread.
const SINK_CHANNEL_CAPACITY: usize = 1024;

/// Where and how to trace a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpec {
    /// Trace file path (created or truncated).
    pub path: PathBuf,
    /// Sampling seed — independent of the world and chaos seeds.
    pub seed: u64,
    /// Sampling rate in parts per million of domains (1_000_000 traces
    /// everything).
    pub sample_ppm: u32,
    /// Flight-recorder ring capacity, events per domain.
    pub flight_capacity: usize,
    /// Cap on collected flight dumps: once this many are held, further
    /// dumps are counted ([`Tracer::dumps_dropped`]) and discarded.
    pub max_dumps: usize,
}

impl TraceSpec {
    /// Full-fidelity tracing to `path` (sample everything, seed 0,
    /// default ring capacity and dump cap).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        TraceSpec {
            path: path.into(),
            seed: 0,
            sample_ppm: SAMPLE_FULL,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            max_dumps: DEFAULT_MAX_DUMPS,
        }
    }

    /// Sets the sampling seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling rate in parts per million (builder style).
    #[must_use]
    pub fn with_sample_ppm(mut self, ppm: u32) -> Self {
        self.sample_ppm = ppm;
        self
    }

    /// Sets the flight-dump cap (builder style).
    #[must_use]
    pub fn with_max_dumps(mut self, max: usize) -> Self {
        self.max_dumps = max;
        self
    }
}

/// One message to the sink I/O thread.
enum SinkMsg {
    /// A finished domain block (`None` = unsampled placeholder).
    Block(u64, Option<DomainBlock>),
    /// A flight dump, held until `finish`.
    Dump(FlightDump),
    /// A stage-boundary frame (single-threaded call sites only).
    Stage(String, String),
    /// Drain and hand the sink back through the thread's return value.
    Finish,
}

struct Sink {
    writer: io::BufWriter<fs::File>,
    /// Next domain index the file is waiting for.
    next: u64,
    /// Blocks that finished ahead of `next` (`None` = unsampled).
    pending: BTreeMap<u64, Option<DomainBlock>>,
    domains_written: u64,
    events_written: u64,
    /// The highest-index sampled block written so far — the context an
    /// analysis-panic dump records.
    last_block: Option<DomainBlock>,
    finished: bool,
}

impl Sink {
    fn frame(&mut self, record: &TraceRecord) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &record.encode());
        self.writer.write_all(&buf).expect("trace sink write failed");
    }

    fn drain(&mut self) {
        while let Some(slot) = self.pending.remove(&self.next) {
            if let Some(block) = slot {
                self.domains_written += 1;
                self.events_written += block.events.len() as u64;
                let bytes = framed(&crate::codec::encode_domain(&block));
                self.writer.write_all(&bytes).expect("trace sink write failed");
                self.last_block = Some(block);
            }
            self.next += 1;
        }
    }
}

/// Everything the I/O thread owns, handed back at `finish`.
struct SinkState {
    sink: Sink,
    /// Flight dumps in arrival order, written sorted at `finish`.
    dumps: Vec<FlightDump>,
    /// Ordinal for analysis-panic dumps appended after `finish`.
    analysis_ord: u32,
}

/// Frames a pre-encoded record payload.
fn framed(payload: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 32);
    write_frame(&mut buf, payload);
    buf
}

/// The shared trace sink for one campaign. Create with
/// [`Tracer::create`], hand each worker a [`WorkerTracer`] via
/// [`Tracer::worker`], and close with [`Tracer::finish`].
pub struct Tracer {
    spec: TraceSpec,
    sampler: TraceSampler,
    /// Channel to the sink I/O thread. Workers send and return; they
    /// never hold a sink lock.
    tx: SyncSender<SinkMsg>,
    /// The I/O thread, joined (and its state reclaimed) at `finish`.
    io: Mutex<Option<JoinHandle<SinkState>>>,
    /// The reclaimed sink after `finish` — what `analysis_dump` appends
    /// through.
    done: Mutex<Option<SinkState>>,
    /// Nanoseconds workers spent blocked on a full sink channel
    /// (backpressure); zero in a healthy run.
    wait_ns: AtomicU64,
    /// Messages currently queued (sent, not yet processed).
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_hwm: AtomicU64,
    /// Dumps discarded over [`TraceSpec::max_dumps`].
    dumps_dropped: Arc<AtomicU64>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("spec", &self.spec).finish_non_exhaustive()
    }
}

impl Tracer {
    /// Opens the trace file, writes the header frame (and a resume
    /// marker when `resume_from > 0`), spawns the sink I/O thread, and
    /// returns the shared sink.
    pub fn create(spec: &TraceSpec, domains: u64, resume_from: u64) -> io::Result<Arc<Tracer>> {
        let file = fs::File::create(&spec.path)?;
        let mut sink = Sink {
            writer: io::BufWriter::new(file),
            next: resume_from,
            pending: BTreeMap::new(),
            domains_written: 0,
            events_written: 0,
            last_block: None,
            finished: false,
        };
        sink.frame(&TraceRecord::Header {
            version: 1,
            seed: spec.seed,
            sample_ppm: u64::from(spec.sample_ppm),
            flight_capacity: spec.flight_capacity as u64,
            domains,
        });
        if resume_from > 0 {
            sink.frame(&TraceRecord::Resume { from: resume_from });
        }

        let (tx, rx) = sync_channel::<SinkMsg>(SINK_CHANNEL_CAPACITY);
        let dumps_dropped = Arc::new(AtomicU64::new(0));
        let tracer = Tracer {
            spec: spec.clone(),
            sampler: TraceSampler::new(spec.seed, spec.sample_ppm),
            tx,
            io: Mutex::new(None),
            done: Mutex::new(None),
            wait_ns: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            dumps_dropped: Arc::clone(&dumps_dropped),
        };
        let tracer = Arc::new(tracer);

        let max_dumps = spec.max_dumps;
        let depth = WeakDepth(Arc::downgrade(&tracer));
        let handle = std::thread::Builder::new()
            .name("govdns-trace-sink".into())
            .spawn(move || {
                let mut state = SinkState { sink, dumps: Vec::new(), analysis_ord: 0 };
                // A closed channel (worker panic unwound the campaign
                // without `finish`) drains what arrived and exits.
                while let Ok(msg) = rx.recv() {
                    // Finish bypasses `send` and is never counted.
                    if !matches!(msg, SinkMsg::Finish) {
                        depth.dec();
                    }
                    match msg {
                        SinkMsg::Block(index, block) => {
                            state.sink.pending.insert(index, block);
                            state.sink.drain();
                        }
                        SinkMsg::Dump(dump) => {
                            if state.dumps.len() < max_dumps {
                                state.dumps.push(dump);
                            } else {
                                dumps_dropped.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        SinkMsg::Stage(name, mark) => {
                            state.sink.frame(&TraceRecord::Stage { name, mark });
                        }
                        SinkMsg::Finish => break,
                    }
                }
                state.sink.drain();
                state
            })
            .expect("spawn trace sink thread");
        *tracer.io.lock() = Some(handle);
        Ok(tracer)
    }

    /// The spec the tracer was created with.
    pub fn spec(&self) -> &TraceSpec {
        &self.spec
    }

    /// The sampling verdict for a domain hash (pure; thread-safe).
    pub fn keep(&self, domain_fnv64: u64) -> bool {
        self.sampler.keep(domain_fnv64)
    }

    /// Nanoseconds workers spent blocked on sink backpressure so far.
    /// Zero means no worker ever waited on the trace pipeline.
    pub fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// High-water mark of the sink queue depth, in messages.
    pub fn queue_high_water(&self) -> u64 {
        self.queue_hwm.load(Ordering::Relaxed)
    }

    /// Flight dumps discarded over [`TraceSpec::max_dumps`].
    pub fn dumps_dropped(&self) -> u64 {
        self.dumps_dropped.load(Ordering::Relaxed)
    }

    /// A per-worker recorder bound to this sink.
    pub fn worker(self: &Arc<Self>) -> WorkerTracer {
        WorkerTracer {
            tracer: Arc::clone(self),
            ring: EventRing::new(self.spec.flight_capacity),
            index: 0,
            domain: String::new(),
            sampled: false,
            active: false,
            step: Step::ParentNs,
            dump_ord: 0,
            dumped_triggers: Vec::new(),
        }
    }

    /// Enqueues one message, measuring any backpressure wait.
    fn send(&self, msg: SinkMsg) {
        // Count before sending: the I/O thread decrements on receipt,
        // and counting after delivery would let the decrement land
        // first and underflow the gauge.
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
        match self.tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                let start = Instant::now();
                self.tx.send(msg).expect("trace sink thread died");
                self.wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => panic!("trace sink thread died"),
        }
    }

    /// Writes a stage boundary frame. Call only from single-threaded
    /// runner sections: the FIFO channel places it after every block
    /// already submitted, so its file position is deterministic.
    pub fn stage(&self, name: &str, mark: &str) {
        self.send(SinkMsg::Stage(name.to_string(), mark.to_string()));
    }

    /// Submits one domain's finished block (`None` for an unsampled
    /// domain — the placeholder keeps the in-order drain moving). The
    /// calling worker only enqueues; encoding, framing, and the ordered
    /// write all happen on the sink I/O thread.
    pub fn submit(&self, index: u64, block: Option<DomainBlock>) {
        self.send(SinkMsg::Block(index, block));
    }

    /// Records a flight dump (written to the file at [`finish`], sorted
    /// by `(domain index, ordinal)`). Dumps past the spec's cap are
    /// counted and discarded.
    ///
    /// [`finish`]: Tracer::finish
    pub fn record_dump(&self, dump: FlightDump) {
        self.send(SinkMsg::Dump(dump));
    }

    /// Joins the sink I/O thread, writes the sorted flight dumps and
    /// the completion trailer, then flushes. Idempotent.
    pub fn finish(&self) {
        let Some(handle) = self.io.lock().take() else {
            return;
        };
        self.tx.send(SinkMsg::Finish).expect("trace sink thread died");
        let mut state = handle.join().expect("trace sink thread panicked");
        debug_assert!(!state.sink.finished);
        // `(index, ord)` is unique per dump, so the sort is a total
        // order: the file never depends on arrival interleaving.
        state.dumps.sort_by(|a, b| {
            let ka = (a.index.unwrap_or(u64::MAX), a.ord);
            let kb = (b.index.unwrap_or(u64::MAX), b.ord);
            ka.cmp(&kb)
        });
        let n = state.dumps.len() as u64;
        for dump in &state.dumps {
            let bytes = framed(&crate::codec::encode_dump(dump));
            state.sink.writer.write_all(&bytes).expect("trace sink write failed");
        }
        let (domains, events) = (state.sink.domains_written, state.sink.events_written);
        state.sink.frame(&TraceRecord::Complete { domains, events, dumps: n });
        state.sink.writer.flush().expect("trace sink flush failed");
        state.sink.finished = true;
        *self.done.lock() = Some(state);
    }

    /// Records and appends an analysis-panic dump: the flight
    /// recorder's view at the time probing ended (the last sampled
    /// block), tagged with the dead stage. Finishes the trace first if
    /// the caller has not; the frame is appended and flushed
    /// immediately.
    pub fn analysis_dump(&self, stage: &str) {
        self.finish();
        let mut done = self.done.lock();
        let state = done.as_mut().expect("trace finished above");
        let events = state.sink.last_block.as_ref().map(|b| b.events.clone()).unwrap_or_default();
        let dump = FlightDump {
            trigger: format!("analysis_panic:{stage}"),
            index: None,
            domain: None,
            ord: state.analysis_ord,
            events,
        };
        state.analysis_ord += 1;
        let bytes = framed(&crate::codec::encode_dump(&dump));
        state.sink.writer.write_all(&bytes).expect("trace sink write failed");
        state.sink.writer.flush().expect("trace sink flush failed");
    }
}

/// A weak handle the I/O thread uses to decrement the queue-depth
/// gauge without keeping the `Tracer` (and so itself) alive.
struct WeakDepth(std::sync::Weak<Tracer>);

impl WeakDepth {
    fn dec(&self) {
        if let Some(t) = self.0.upgrade() {
            t.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// One worker's private recorder: a ring for the domain being probed,
/// plus the bookkeeping to submit finished blocks in campaign order.
///
/// Not `Sync` by design — each worker owns exactly one.
#[derive(Debug)]
pub struct WorkerTracer {
    tracer: Arc<Tracer>,
    ring: EventRing,
    index: u64,
    domain: String,
    sampled: bool,
    active: bool,
    step: Step,
    dump_ord: u32,
    /// Triggers already dumped for the current domain, for
    /// [`dump_once`](WorkerTracer::dump_once).
    dumped_triggers: Vec<String>,
}

impl WorkerTracer {
    /// Starts recording domain `index`. Decides sampling from the
    /// domain's stable hash; an unsampled domain records nothing but
    /// still submits its placeholder at [`end`](WorkerTracer::end).
    pub fn begin(&mut self, index: u64, domain: &DomainName) {
        if self.active {
            self.end();
        }
        self.sampled = self.tracer.keep(domain.fnv64());
        self.domain = if self.sampled { domain.to_string() } else { String::new() };
        self.index = index;
        self.ring.reset();
        self.step = Step::ParentNs;
        self.dump_ord = 0;
        self.dumped_triggers.clear();
        self.active = true;
    }

    /// Whether events are currently being recorded (active + sampled) —
    /// callers use this to skip building event payloads entirely.
    pub fn recording(&self) -> bool {
        self.active && self.sampled
    }

    /// The protocol step subsequent events are tagged with.
    pub fn step(&self) -> Step {
        self.step
    }

    /// Moves to a new protocol step.
    pub fn set_step(&mut self, step: Step) {
        self.step = step;
    }

    /// Records one event at the current step.
    pub fn emit(&mut self, data: TraceData) {
        if self.recording() {
            let step = self.step;
            self.ring.push(step, data);
        }
    }

    /// Records one event at an explicit step without moving the cursor.
    pub fn emit_at(&mut self, step: Step, data: TraceData) {
        if self.recording() {
            self.ring.push(step, data);
        }
    }

    /// Snapshots the ring into a flight dump (breaker trip, retry
    /// exhaustion, REFUSED burst). No-op for unsampled domains, so dump
    /// contents stay deterministic under sampling.
    pub fn dump(&mut self, trigger: &str) {
        if !self.recording() {
            return;
        }
        let dump = FlightDump {
            trigger: trigger.to_string(),
            index: Some(self.index),
            domain: Some(self.domain.clone()),
            ord: self.dump_ord,
            events: self.ring.snapshot(),
        };
        self.dump_ord += 1;
        self.dumped_triggers.push(trigger.to_string());
        self.tracer.record_dump(dump);
    }

    /// Like [`dump`](WorkerTracer::dump), but at most once per trigger
    /// per domain — for high-frequency triggers (retry exhaustion,
    /// REFUSED bursts) where the first occurrence carries the incident
    /// context and repeats would only duplicate ring contents into the
    /// file.
    pub fn dump_once(&mut self, trigger: &str) {
        if self.dumped_triggers.iter().any(|t| t == trigger) {
            return;
        }
        self.dump(trigger);
    }

    /// Closes the current domain and submits its block (or placeholder)
    /// to the ordered sink.
    pub fn end(&mut self) {
        if !self.active {
            return;
        }
        let block = if self.sampled {
            Some(DomainBlock {
                index: self.index,
                domain: std::mem::take(&mut self.domain),
                dropped: self.ring.dropped(),
                events: self.ring.take(),
            })
        } else {
            None
        };
        self.tracer.submit(self.index, block);
        self.active = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read::read_trace;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("govdns-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn name(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn out_of_order_submission_lands_in_index_order() {
        let path = tmp("reorder.trace");
        let tracer = Tracer::create(&TraceSpec::new(&path), 3, 0).unwrap();
        let mut w1 = tracer.worker();
        let mut w2 = tracer.worker();
        // Worker 2 finishes domain 2 before worker 1 finishes 0 and 1.
        w2.begin(2, &name("c.gov.zz"));
        w2.emit(TraceData::Note { text: "late".into() });
        w2.end();
        w1.begin(0, &name("a.gov.zz"));
        w1.emit(TraceData::Note { text: "first".into() });
        w1.end();
        w1.begin(1, &name("b.gov.zz"));
        w1.end();
        tracer.stage("round1", "end");
        tracer.finish();

        let log = read_trace(&path).unwrap();
        assert!(log.completed);
        assert_eq!(log.dropped_bytes, 0);
        let indices: Vec<u64> = log.domains.iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![0, 1, 2]);
        assert_eq!(log.domains[0].domain, "a.gov.zz");
    }

    #[test]
    fn dumps_are_sorted_and_counted() {
        let path = tmp("dumps.trace");
        let tracer = Tracer::create(&TraceSpec::new(&path), 2, 0).unwrap();
        let mut w = tracer.worker();
        w.begin(1, &name("b.gov.zz"));
        w.emit(TraceData::Note { text: "x".into() });
        w.dump("retry_exhausted");
        w.end();
        w.begin(0, &name("a.gov.zz"));
        w.dump("breaker_trip");
        w.end();
        tracer.finish();
        tracer.analysis_dump("providers");

        let log = read_trace(&path).unwrap();
        assert_eq!(log.dumps.len(), 3);
        assert_eq!(log.dumps[0].trigger, "breaker_trip");
        assert_eq!(log.dumps[0].index, Some(0));
        assert_eq!(log.dumps[1].trigger, "retry_exhausted");
        assert_eq!(log.dumps[1].events.len(), 1);
        assert_eq!(log.dumps[2].trigger, "analysis_panic:providers");
    }

    #[test]
    fn unsampled_domains_leave_no_blocks_but_do_not_stall() {
        let path = tmp("sampled.trace");
        let spec = TraceSpec::new(&path).with_seed(5).with_sample_ppm(0);
        let tracer = Tracer::create(&spec, 2, 0).unwrap();
        let mut w = tracer.worker();
        for i in 0..2 {
            w.begin(i, &name("a.gov.zz"));
            w.emit(TraceData::Note { text: "ignored".into() });
            w.end();
        }
        tracer.finish();
        let log = read_trace(&path).unwrap();
        assert!(log.completed);
        assert!(log.domains.is_empty());
    }

    #[test]
    fn dump_cap_bounds_the_buffer_and_counts_drops() {
        let path = tmp("capped.trace");
        let spec = TraceSpec::new(&path).with_max_dumps(2);
        let tracer = Tracer::create(&spec, 1, 0).unwrap();
        let mut w = tracer.worker();
        w.begin(0, &name("a.gov.zz"));
        w.emit(TraceData::Note { text: "storm".into() });
        for i in 0..5 {
            w.dump(&format!("incident_{i}"));
        }
        w.end();
        tracer.finish();

        assert_eq!(tracer.dumps_dropped(), 3, "cap of 2 must drop 3 of 5 dumps");
        let log = read_trace(&path).unwrap();
        assert!(log.completed);
        assert_eq!(log.dumps.len(), 2, "only the first two dumps survive the cap");
        assert_eq!(log.dumps[0].trigger, "incident_0");
        assert_eq!(log.dumps[1].trigger, "incident_1");
    }

    #[test]
    fn backpressure_accounting_starts_at_zero() {
        let path = tmp("wait.trace");
        let tracer = Tracer::create(&TraceSpec::new(&path), 1, 0).unwrap();
        let mut w = tracer.worker();
        w.begin(0, &name("a.gov.zz"));
        w.end();
        tracer.finish();
        assert_eq!(tracer.wait_ns(), 0, "a tiny run must never block on the sink channel");
        assert!(tracer.queue_high_water() >= 1);
        assert_eq!(tracer.dumps_dropped(), 0);
    }
}
