//! # govdns-trace — the measurement pipeline's flight recorder
//!
//! Aggregate telemetry (the `govdns-telemetry` registry) answers *how
//! many* queries failed; this crate answers *which* query failed and
//! *why*. Every attempt and every decision about it — fault verdicts,
//! limiter charges, breaker denials, backoffs, response classes — is a
//! [`TraceEvent`] recorded into a per-worker ring buffer
//! ([`WorkerTracer`]) and flushed per domain into a `T1`-framed trace
//! file with the journal's torn-tail discipline.
//!
//! Three properties drive the design:
//!
//! 1. **Determinism.** Sampling is a pure function of `(seed,
//!    domain-fnv64)`; events exclude interleaving-dependent state; the
//!    sink writes blocks in campaign index order through a reorder
//!    buffer. Identically seeded campaigns produce byte-identical trace
//!    files at any worker count (CI `cmp`s two of them).
//! 2. **Bounded memory.** The flight recorder keeps at most one ring of
//!    events per worker; on a breaker trip, retry exhaustion, REFUSED
//!    burst, or analysis panic it dumps the last-N events it holds.
//! 3. **A lock-free hot path.** Workers record into their own ring; the
//!    shared sink is locked once per domain, never per query.
//!
//! ```
//! use govdns_trace::{EventRing, Step, TraceData, TraceRecord};
//!
//! let mut ring = EventRing::new(16);
//! ring.push(Step::ParentNs, TraceData::Send { dst: "198.41.0.4".parse().unwrap(), attempt: 0 });
//! let events = ring.take();
//!
//! // Records re-encode byte-identically — the file diff gate relies on it.
//! let record = govdns_trace::TraceRecord::Domain(govdns_trace::DomainBlock {
//!     index: 0,
//!     domain: "portal.gov.zz".into(),
//!     dropped: 0,
//!     events,
//! });
//! assert_eq!(TraceRecord::decode(&record.encode()).encode(), record.encode());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod diff;
mod event;
mod frame;
mod read;
mod ring;
mod sample;
mod tracer;

pub use codec::TraceRecord;
pub use diff::{
    align_blocks, divergence_context, first_divergence, read_trace_pair, AlignedBlock,
    EventDivergence,
};
pub use event::{DomainBlock, FlightDump, Step, TraceData, TraceEvent};
pub use frame::{fnv64, read_frame, write_frame, FRAME_HEADER_LEN};
pub use read::{read_trace, TraceHeader, TraceLog};
pub use ring::EventRing;
pub use sample::{TraceSampler, SAMPLE_FULL};
pub use tracer::{TraceSpec, Tracer, WorkerTracer, DEFAULT_FLIGHT_CAPACITY, DEFAULT_MAX_DUMPS};
