//! Deterministic whole-domain sampling.
//!
//! The sampling verdict is a pure function of `(trace seed,
//! domain-fnv64)`: no counters, no RNG state, no thread identity. A
//! domain is either fully traced or fully skipped, and the verdict is
//! the same whether one worker or eight evaluate it — which is the
//! whole determinism argument for byte-identical trace files across
//! worker counts.

/// SplitMix64 finalizer — the same stateless mixer the simulated
/// network uses for fault and loss verdicts.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Parts-per-million denominator for sampling rates.
pub const SAMPLE_FULL: u32 = 1_000_000;

/// Pure `(seed, domain-fnv64) → keep/skip` sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSampler {
    seed: u64,
    sample_ppm: u32,
}

impl TraceSampler {
    /// A sampler keeping `sample_ppm` parts per million of domains
    /// under `seed` (values ≥ [`SAMPLE_FULL`] keep everything).
    pub fn new(seed: u64, sample_ppm: u32) -> Self {
        TraceSampler { seed, sample_ppm }
    }

    /// The sampling verdict for a domain, given its
    /// [`DomainName::fnv64`](govdns_model::DomainName::fnv64) hash.
    pub fn keep(&self, domain_fnv64: u64) -> bool {
        if self.sample_ppm >= SAMPLE_FULL {
            return true;
        }
        if self.sample_ppm == 0 {
            return false;
        }
        mix(self.seed ^ domain_fnv64) % u64::from(SAMPLE_FULL) < u64::from(self.sample_ppm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_are_total() {
        let all = TraceSampler::new(1, SAMPLE_FULL);
        let none = TraceSampler::new(1, 0);
        for h in 0..100u64 {
            assert!(all.keep(h));
            assert!(!none.keep(h));
        }
    }

    #[test]
    fn rate_lands_in_the_ballpark() {
        let half = TraceSampler::new(9, SAMPLE_FULL / 2);
        let kept = (0..10_000u64).filter(|&h| half.keep(mix(h))).count();
        assert!((4_000..6_000).contains(&kept), "50% sampler kept {kept}/10000");
    }

    #[test]
    fn verdicts_are_pure() {
        let s = TraceSampler::new(42, 123_456);
        for h in 0..500u64 {
            assert_eq!(s.keep(h), s.keep(h));
        }
    }
}
