//! The trace event vocabulary.
//!
//! One [`TraceEvent`] records one decision the pipeline made about one
//! query — an attempt hitting the wire, the fault layer's verdict, a
//! limiter charge, a breaker denial, a backoff, a response
//! classification. Events carry a per-domain sequence number and the
//! Figure-1 protocol [`Step`] they belong to; the domain itself lives on
//! the enclosing [`DomainBlock`], because a whole domain is always
//! probed by one worker and traced as one unit.

use std::net::Ipv4Addr;

/// Which step of the paper's Figure-1 probing protocol an event belongs
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Walking the delegation tree down to the parent zone.
    ParentNs,
    /// A referral descending the tree (or terminating the walk).
    Referral,
    /// Querying the child-side nameservers for their NS view.
    ChildNs,
    /// Resolving a nameserver host name to addresses (side query).
    AddrResolve,
    /// Direct per-address probing (the SOA check).
    DirectProbe,
}

impl Step {
    /// Stable wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Step::ParentNs => "parent_ns",
            Step::Referral => "referral",
            Step::ChildNs => "child_ns",
            Step::AddrResolve => "addr_resolve",
            Step::DirectProbe => "direct_probe",
        }
    }

    /// Parses a wire label back into a step.
    pub fn parse(s: &str) -> Option<Step> {
        Some(match s {
            "parent_ns" => Step::ParentNs,
            "referral" => Step::Referral,
            "child_ns" => Step::ChildNs,
            "addr_resolve" => Step::AddrResolve,
            "direct_probe" => Step::DirectProbe,
            _ => return None,
        })
    }
}

/// The payload of one trace event.
///
/// Fields deliberately exclude anything that depends on worker
/// interleaving or per-worker cache state (resolver cache hit counts,
/// global destination ordinals, wall-clock time), so that identically
/// seeded campaigns emit byte-identical traces at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceData {
    /// A query attempt hit the wire. The qname is the enclosing block's
    /// domain; `attempt` is the cumulative ordinal for this
    /// `(dst, qname)` pair.
    Send {
        /// Destination server address.
        dst: Ipv4Addr,
        /// Cumulative attempt ordinal for this `(dst, qname)` pair.
        attempt: u32,
    },
    /// The fault layer's verdict for an attempt (emitted only when a
    /// rule fired).
    Fault {
        /// Destination server address.
        dst: Ipv4Addr,
        /// Attempt ordinal the verdict applied to.
        attempt: u32,
        /// Which rule fired: `flap`, `loss`, `refused`, `truncated`,
        /// `delayed`, or `baseline_loss` for world-level packet loss.
        verdict: String,
        /// Extra delay injected by latency spikes, milliseconds.
        extra_ms: u64,
    },
    /// How an attempt resolved.
    Response {
        /// Destination server address.
        dst: Ipv4Addr,
        /// Attempt ordinal.
        attempt: u32,
        /// Response classification label (`authoritative`, `referral`,
        /// `timeout`, `rejected`, `truncated`, ...).
        class: String,
        /// Round-trip (or timeout wait) in simulated milliseconds.
        ms: u64,
    },
    /// The delegation walk took (or terminated on) a referral.
    Referral {
        /// The zone cut the referral pointed at.
        cut: String,
        /// How many nameserver targets it carried.
        targets: u64,
    },
    /// A nameserver host name was resolved to addresses.
    Resolve {
        /// The nameserver host name.
        host: String,
        /// Addresses the resolver produced (empty on failure).
        addrs: Vec<Ipv4Addr>,
    },
    /// The rate limiter booked a query.
    Charge {
        /// Ledger round label (`round1`, `round2`, `soa`, `side`).
        round: String,
        /// Destination charged, when the round is destination-scoped.
        dst: Option<Ipv4Addr>,
    },
    /// The per-destination retry budget denied a retry.
    RetryDenied {
        /// Destination whose budget ran dry.
        dst: Ipv4Addr,
    },
    /// The client backed off before a retry.
    Backoff {
        /// Destination being retried.
        dst: Ipv4Addr,
        /// The attempt ordinal about to be issued.
        attempt: u32,
        /// Backoff duration, milliseconds (deterministic jitter).
        ms: u64,
    },
    /// An open circuit breaker denied the query outright.
    BreakerDenied {
        /// Quarantined destination.
        dst: Ipv4Addr,
    },
    /// A half-open breaker admitted a trial query.
    BreakerTrial {
        /// Destination on trial.
        dst: Ipv4Addr,
    },
    /// A breaker changed state after a result.
    Breaker {
        /// Destination whose breaker moved.
        dst: Ipv4Addr,
        /// Transition label (`tripped`, `reclosed`, `reopened`).
        transition: String,
    },
    /// Free-form annotation (stage markers inside a domain, panics).
    Note {
        /// The annotation.
        text: String,
    },
}

/// One recorded event: per-domain sequence number, protocol step, and
/// payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sequence number within the domain (0-based, gap-free until the
    /// ring overflows).
    pub seq: u32,
    /// Protocol step the event belongs to.
    pub step: Step,
    /// The payload.
    pub data: TraceData,
}

impl TraceEvent {
    /// The destination address the event concerns, if any.
    pub fn dst(&self) -> Option<Ipv4Addr> {
        match &self.data {
            TraceData::Send { dst, .. }
            | TraceData::Fault { dst, .. }
            | TraceData::Response { dst, .. }
            | TraceData::RetryDenied { dst }
            | TraceData::Backoff { dst, .. }
            | TraceData::BreakerDenied { dst }
            | TraceData::BreakerTrial { dst }
            | TraceData::Breaker { dst, .. } => Some(*dst),
            TraceData::Charge { dst, .. } => *dst,
            _ => None,
        }
    }

    /// The response class label, for `Response` events.
    pub fn class(&self) -> Option<&str> {
        match &self.data {
            TraceData::Response { class, .. } => Some(class),
            _ => None,
        }
    }

    /// One human-readable timeline line for this event.
    pub fn render(&self) -> String {
        let body = match &self.data {
            TraceData::Send { dst, attempt } => format!("send dst={dst} attempt={attempt}"),
            TraceData::Fault { dst, attempt, verdict, extra_ms } => {
                let extra =
                    if *extra_ms > 0 { format!(" extra_ms={extra_ms}") } else { String::new() };
                format!("fault verdict={verdict} dst={dst} attempt={attempt}{extra}")
            }
            TraceData::Response { dst, attempt, class, ms } => {
                format!("response class={class} dst={dst} attempt={attempt} ms={ms}")
            }
            TraceData::Referral { cut, targets } => format!("referral cut={cut} targets={targets}"),
            TraceData::Resolve { host, addrs } => {
                let rendered: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
                format!("resolve host={host} addrs=[{}]", rendered.join(","))
            }
            TraceData::Charge { round, dst } => match dst {
                Some(dst) => format!("charge round={round} dst={dst}"),
                None => format!("charge round={round}"),
            },
            TraceData::RetryDenied { dst } => format!("retry_denied dst={dst}"),
            TraceData::Backoff { dst, attempt, ms } => {
                format!("backoff dst={dst} attempt={attempt} ms={ms}")
            }
            TraceData::BreakerDenied { dst } => format!("breaker_denied dst={dst}"),
            TraceData::BreakerTrial { dst } => format!("breaker_trial dst={dst}"),
            TraceData::Breaker { dst, transition } => {
                format!("breaker {transition} dst={dst}")
            }
            TraceData::Note { text } => format!("note {text}"),
        };
        format!("#{:03} [{}] {}", self.seq, self.step.as_str(), body)
    }
}

/// All trace events of one probed domain, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainBlock {
    /// Campaign domain index — equal to the journal's probe record
    /// index, which is what ties a trace block to the write-ahead log.
    pub index: u64,
    /// The probed domain.
    pub domain: String,
    /// Events the bounded ring had to discard before the block closed
    /// (0 unless a pathological domain overflowed the flight recorder).
    pub dropped: u32,
    /// The recorded events.
    pub events: Vec<TraceEvent>,
}

impl DomainBlock {
    /// The per-domain causal timeline, one rendered line per event.
    pub fn timeline(&self) -> Vec<String> {
        self.events.iter().map(TraceEvent::render).collect()
    }

    /// Resolves a sequence number back to its recorded event — the
    /// evidence-citation hook: a verdict that cites `(domain, seq)` is
    /// checkable by looking the event up again in the trace file.
    /// Sequence numbers are gap-free until the ring overflows, but a
    /// dropped prefix means `seq` may be absent, so this searches rather
    /// than indexes.
    pub fn event(&self, seq: u32) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.seq == seq)
    }

    /// All events belonging to one protocol step, in emission order.
    pub fn events_in(&self, step: Step) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.step == step)
    }
}

/// A snapshot the flight recorder took when a trigger fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// What fired: `breaker_trip`, `retry_exhausted`, `refused_burst`,
    /// or `analysis_panic:<stage>`.
    pub trigger: String,
    /// Campaign domain index, when the trigger fired inside a probe.
    pub index: Option<u64>,
    /// The domain being probed, when inside a probe.
    pub domain: Option<String>,
    /// Dump ordinal within the domain (a domain can trip twice).
    pub ord: u32,
    /// The last-N events the recorder held at trigger time.
    pub events: Vec<TraceEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_labels_roundtrip() {
        for s in
            [Step::ParentNs, Step::Referral, Step::ChildNs, Step::AddrResolve, Step::DirectProbe]
        {
            assert_eq!(Step::parse(s.as_str()), Some(s));
        }
        assert_eq!(Step::parse("warp"), None);
    }

    #[test]
    fn render_is_stable() {
        let e = TraceEvent {
            seq: 3,
            step: Step::ParentNs,
            data: TraceData::Send { dst: "192.0.2.1".parse().unwrap(), attempt: 0 },
        };
        assert_eq!(e.render(), "#003 [parent_ns] send dst=192.0.2.1 attempt=0");
        assert_eq!(e.dst(), Some("192.0.2.1".parse().unwrap()));
        assert_eq!(e.class(), None);
    }
}
