//! `T1` framing — the trace file's torn-tail discipline.
//!
//! Identical in shape to the journal's `J1` framing: each record is a
//! 29-byte header (`"T1 "`, 16 hex digits of the payload's FNV-1a 64
//! checksum, a space, 8 hex digits of payload length, `\n`) followed by
//! the payload and a trailing `\n`. A reader that hits a frame whose
//! header, length, trailer, or checksum does not hold stops there and
//! reports the remainder as dropped bytes — exactly what a crash
//! mid-append leaves behind.

/// Bytes in a frame header.
pub const FRAME_HEADER_LEN: usize = 29;

/// FNV-1a 64 over raw bytes — the frame checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends one framed payload to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &str) {
    let bytes = payload.as_bytes();
    out.extend_from_slice(format!("T1 {:016x} {:08x}\n", fnv64(bytes), bytes.len()).as_bytes());
    out.extend_from_slice(bytes);
    out.push(b'\n');
}

/// Reads the frame starting at `offset`; returns the payload and the
/// offset of the next frame, or `None` on a torn or corrupt frame.
pub fn read_frame(bytes: &[u8], offset: usize) -> Option<(&str, usize)> {
    let head = bytes.get(offset..offset + FRAME_HEADER_LEN)?;
    if &head[..3] != b"T1 " || head[19] != b' ' || head[28] != b'\n' {
        return None;
    }
    let sum = u64::from_str_radix(std::str::from_utf8(&head[3..19]).ok()?, 16).ok()?;
    let len = usize::from_str_radix(std::str::from_utf8(&head[20..28]).ok()?, 16).ok()?;
    let start = offset + FRAME_HEADER_LEN;
    let payload = bytes.get(start..start.checked_add(len)?)?;
    if bytes.get(start + len) != Some(&b'\n') {
        return None;
    }
    if fnv64(payload) != sum {
        return None;
    }
    Some((std::str::from_utf8(payload).ok()?, start + len + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"kind\":\"stage\"}");
        write_frame(&mut buf, "second");
        let (p1, next) = read_frame(&buf, 0).unwrap();
        assert_eq!(p1, "{\"kind\":\"stage\"}");
        let (p2, end) = read_frame(&buf, next).unwrap();
        assert_eq!(p2, "second");
        assert_eq!(end, buf.len());
    }

    #[test]
    fn torn_tail_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "complete record");
        let (_, next) = read_frame(&buf, 0).unwrap();
        // A record the crash cut off mid-write.
        buf.extend_from_slice(b"T1 0123456789abcdef 000000ff\n{\"kind\":\"dom");
        assert!(read_frame(&buf, next).is_none());
    }

    #[test]
    fn corrupt_checksum_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload");
        let flip = FRAME_HEADER_LEN + 2;
        buf[flip] ^= 0x01;
        assert!(read_frame(&buf, 0).is_none());
    }
}
