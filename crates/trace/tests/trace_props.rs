//! Property tests for the flight recorder's determinism-bearing
//! primitives: the record codec must round-trip byte-identically (the
//! trace determinism CI gate `cmp`s whole files), the event ring must
//! behave as an append-only log below capacity and a sliding window at
//! it, and the sampler's verdicts must not depend on which thread asks.

use std::net::Ipv4Addr;

use govdns_trace::{
    DomainBlock, EventRing, FlightDump, Step, TraceData, TraceEvent, TraceRecord, TraceSampler,
    SAMPLE_FULL,
};
use proptest::prelude::*;

fn addr_strategy() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from)
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop::sample::select(vec![
        Step::ParentNs,
        Step::Referral,
        Step::ChildNs,
        Step::AddrResolve,
        Step::DirectProbe,
    ])
}

/// Printable text, including the JSON-hostile characters the codec must
/// escape (quotes, backslashes, control bytes).
fn text_strategy() -> impl Strategy<Value = String> {
    "[ -~\t\n\r\u{1}\u{e9}]{0,40}"
}

fn data_strategy() -> impl Strategy<Value = TraceData> {
    prop_oneof![
        (addr_strategy(), any::<u32>()).prop_map(|(dst, attempt)| TraceData::Send { dst, attempt }),
        (addr_strategy(), any::<u32>(), text_strategy(), any::<u64>()).prop_map(
            |(dst, attempt, verdict, extra_ms)| TraceData::Fault {
                dst,
                attempt,
                verdict,
                extra_ms
            }
        ),
        (addr_strategy(), any::<u32>(), text_strategy(), any::<u64>())
            .prop_map(|(dst, attempt, class, ms)| TraceData::Response { dst, attempt, class, ms }),
        (text_strategy(), any::<u64>())
            .prop_map(|(cut, targets)| TraceData::Referral { cut, targets }),
        (text_strategy(), prop::collection::vec(addr_strategy(), 0..4))
            .prop_map(|(host, addrs)| TraceData::Resolve { host, addrs }),
        (text_strategy(), any::<bool>(), addr_strategy())
            .prop_map(|(round, some, dst)| TraceData::Charge { round, dst: some.then_some(dst) }),
        addr_strategy().prop_map(|dst| TraceData::RetryDenied { dst }),
        (addr_strategy(), any::<u32>(), any::<u64>())
            .prop_map(|(dst, attempt, ms)| TraceData::Backoff { dst, attempt, ms }),
        addr_strategy().prop_map(|dst| TraceData::BreakerDenied { dst }),
        addr_strategy().prop_map(|dst| TraceData::BreakerTrial { dst }),
        (addr_strategy(), text_strategy())
            .prop_map(|(dst, transition)| TraceData::Breaker { dst, transition }),
        text_strategy().prop_map(|text| TraceData::Note { text }),
    ]
}

fn event_strategy() -> impl Strategy<Value = TraceEvent> {
    (any::<u32>(), step_strategy(), data_strategy()).prop_map(|(seq, step, data)| TraceEvent {
        seq,
        step,
        data,
    })
}

fn events_strategy() -> impl Strategy<Value = Vec<TraceEvent>> {
    prop::collection::vec(event_strategy(), 0..8)
}

fn record_strategy() -> impl Strategy<Value = TraceRecord> {
    prop_oneof![
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
            |(seed, sample_ppm, flight_capacity, domains)| TraceRecord::Header {
                version: 1,
                seed,
                sample_ppm,
                flight_capacity,
                domains,
            }
        ),
        (text_strategy(), text_strategy())
            .prop_map(|(name, mark)| TraceRecord::Stage { name, mark }),
        any::<u64>().prop_map(|from| TraceRecord::Resume { from }),
        (any::<u64>(), text_strategy(), any::<u32>(), events_strategy()).prop_map(
            |(index, domain, dropped, events)| TraceRecord::Domain(DomainBlock {
                index,
                domain,
                dropped,
                events,
            })
        ),
        (
            text_strategy(),
            (any::<bool>(), any::<u64>()),
            (any::<bool>(), text_strategy()),
            any::<u32>(),
            events_strategy(),
        )
            .prop_map(|(trigger, index, domain, ord, events)| TraceRecord::Dump(
                FlightDump {
                    trigger,
                    index: index.0.then_some(index.1),
                    domain: domain.0.then_some(domain.1),
                    ord,
                    events,
                }
            )),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(domains, events, dumps)| {
            TraceRecord::Complete { domains, events, dumps }
        }),
    ]
}

proptest! {
    /// decode(encode(r)) == r and re-encoding is byte-identical — the
    /// property the file-level `cmp` determinism gate rests on.
    #[test]
    fn records_roundtrip_byte_identically(record in record_strategy()) {
        let json = record.encode();
        let back = TraceRecord::decode(&json);
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(back.encode(), json);
    }

    /// Below capacity the ring is a plain append-only log: every pushed
    /// event is held, in push order, with dense sequence numbers and a
    /// zero drop count.
    #[test]
    fn ring_below_capacity_never_drops_or_reorders(
        cap in 1usize..64,
        pushes in prop::collection::vec((step_strategy(), text_strategy()), 0..64),
    ) {
        let mut ring = EventRing::new(cap);
        let n = pushes.len().min(cap);
        for (step, text) in pushes.iter().take(n).cloned() {
            ring.push(step, TraceData::Note { text });
        }
        prop_assert_eq!(ring.dropped(), 0);
        let held = ring.snapshot();
        prop_assert_eq!(held.len(), n);
        for (i, (event, (step, text))) in held.iter().zip(pushes.iter()).enumerate() {
            prop_assert_eq!(event.seq as usize, i);
            prop_assert_eq!(event.step, *step);
            prop_assert_eq!(&event.data, &TraceData::Note { text: text.clone() });
        }
    }

    /// At or above capacity the ring keeps exactly the last `cap`
    /// events, still in order, and accounts for every discard.
    #[test]
    fn ring_overflow_keeps_the_newest_in_order(
        cap in 1usize..32,
        total in 0usize..96,
    ) {
        let mut ring = EventRing::new(cap);
        for i in 0..total {
            ring.push(Step::ChildNs, TraceData::Note { text: format!("e{i}") });
        }
        let held = ring.snapshot();
        prop_assert_eq!(held.len(), total.min(cap));
        prop_assert_eq!(ring.dropped() as usize, total.saturating_sub(cap));
        let first = total.saturating_sub(cap);
        for (offset, event) in held.iter().enumerate() {
            prop_assert_eq!(event.seq as usize, first + offset);
            prop_assert_eq!(&event.data, &TraceData::Note { text: format!("e{}", first + offset) });
        }
    }

    /// Sampling verdicts are a pure function of (seed, domain hash):
    /// eight threads evaluating the same sampler agree with a single
    /// thread on every domain — no counters, no RNG state, no thread
    /// identity.
    #[test]
    fn sampler_is_thread_invariant(
        seed in any::<u64>(),
        sample_ppm in 0u32..=SAMPLE_FULL,
        hashes in prop::collection::vec(any::<u64>(), 1..128),
    ) {
        let sampler = TraceSampler::new(seed, sample_ppm);
        let single: Vec<bool> = hashes.iter().map(|&h| sampler.keep(h)).collect();
        let threaded: Vec<Vec<bool>> = std::thread::scope(|scope| {
            (0..8)
                .map(|_| {
                    let hashes = &hashes;
                    scope.spawn(move || hashes.iter().map(|&h| sampler.keep(h)).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("sampler thread"))
                .collect()
        });
        for verdicts in threaded {
            prop_assert_eq!(&verdicts, &single);
        }
    }
}
