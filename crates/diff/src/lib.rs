//! # govdns-diff — cross-run comparison and the regression corpus
//!
//! A measurement campaign is only trustworthy if a re-run can be
//! *compared* to it precisely. This crate turns two campaign outputs —
//! canonical dataset JSON, `T1` trace files, telemetry snapshots — into
//! a structured [`RunDiff`]:
//!
//! * **Dataset**: per-domain outcome-class transitions (for instance
//!   `authoritative → degraded`), attempt/query/elapsed shifts, and
//!   distribution summaries ([`DatasetDiff`]);
//! * **Remediation**: which prescribed-action tallies moved;
//! * **Smells**: which operational-smell verdicts appeared, resolved,
//!   or changed severity between the runs ([`SmellDiff`]);
//! * **Trace**: per-domain *first divergence* — the first event at
//!   which the two runs' recorded decision streams disagree, with the
//!   surrounding timeline from both sides ([`TraceDiff`]);
//! * **Telemetry**: opt-in counter/gauge/histogram deltas (wall-clock
//!   stages excluded), informational because they vary with worker
//!   count even when every probe outcome is identical.
//!
//! The determinism contract makes the diff a *gate*, not a heuristic:
//! identically seeded runs diff empty at any worker count, and any
//! non-empty diff of two same-seed runs is a regression. CI enforces
//! both directions.
//!
//! The second half is the regression corpus ([`CorpusCase`]): when a
//! campaign assertion or analysis fails, the offending domains' trace
//! blocks and the seeds that generated their world are archived into a
//! small JSON case that [`CorpusCase::replay`] re-executes against a
//! fresh simnet — byte-comparing the replayed trace blocks against the
//! recording — so the failure stays reproducible long after the run
//! that exposed it.
//!
//! ```
//! use govdns_diff::DatasetView;
//!
//! // Self-comparison of any view is empty — the CLI's `diff` mode
//! // builds views from two runs' `dataset.json` files instead.
//! let view = DatasetView::default();
//! assert!(view.diff(&view).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod dataset;
pub mod json;
mod rundiff;
mod smelldiff;

pub use corpus::{
    parse_profile, profile_label, CorpusCase, CorpusDomain, ReplayMismatch, ReplayOutcome,
    ReplaySetup, CAPTURE_CAP,
};
pub use dataset::{ClassTransition, DatasetDiff, DatasetView, DomainRow, NamedShift, RttSummary};
pub use rundiff::{
    counts_from_json, remedies_delta, telemetry_from_json, BlockDivergence, RenderOptions, RunDiff,
    TraceDiff,
};
pub use smelldiff::{SmellDiff, SmellTransition, SmellView};
