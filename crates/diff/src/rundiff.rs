//! The top-level cross-run comparison: dataset rows, remediation
//! tallies, trace first-divergence forensics, and (opt-in) telemetry.
//!
//! A [`RunDiff`] is what the `diff` CLI prints and what CI byte-compares:
//! both renderings ([`RunDiff::render_text`] and [`RunDiff::to_json`])
//! are deterministic functions of the two runs' artifacts, so running
//! the same comparison twice yields byte-identical output.
//!
//! The telemetry delta is deliberately *informational*: counters like
//! cache hits vary with worker count even when every probe outcome is
//! identical, so it never counts toward [`RunDiff::differences`] and is
//! only rendered when explicitly requested.

use std::fmt::Write as _;

use govdns_telemetry::{
    HistogramSnapshot, QueryLedger, ScalarDelta, TelemetryDelta, TelemetrySnapshot,
};
use govdns_trace::{align_blocks, divergence_context, first_divergence, TraceLog};

use crate::dataset::{DatasetDiff, DomainRow};
use crate::json::{self, escape_into, Json};
use crate::smelldiff::{SmellDiff, SmellTransition};

/// How much surrounding timeline a first-divergence report carries.
const CONTEXT_RADIUS: usize = 3;

/// How many diverged domains get full timelines in text mode before the
/// rendering switches to a count (all of them are always in the JSON).
const DETAIL_CAP: usize = 5;

/// One aligned trace block pair that disagrees, with the first
/// disagreeing event and its surrounding timeline from both runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDivergence {
    /// The domain.
    pub domain: String,
    /// Position of the first disagreeing event in both streams.
    pub pos: usize,
    /// Run A's event at `pos` (rendered), if its stream reaches it.
    pub a_event: Option<String>,
    /// Run B's event at `pos` (rendered), if its stream reaches it.
    pub b_event: Option<String>,
    /// Run A's timeline around `pos`, divergent line marked.
    pub a_context: Vec<String>,
    /// Run B's timeline around `pos`, divergent line marked.
    pub b_context: Vec<String>,
}

/// Everything that differs between two trace files' domain blocks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDiff {
    /// Domain blocks aligned by name across the two files.
    pub aligned: usize,
    /// Aligned blocks whose event streams agree exactly.
    pub identical: usize,
    /// Domains only run A sampled, name order.
    pub only_a: Vec<String>,
    /// Domains only run B sampled, name order.
    pub only_b: Vec<String>,
    /// Aligned blocks that disagree, name order, each with its first
    /// divergence located.
    pub diverged: Vec<BlockDivergence>,
}

impl TraceDiff {
    /// Compares two trace logs block-by-block.
    pub fn compare(a: &TraceLog, b: &TraceLog) -> TraceDiff {
        let mut diff = TraceDiff::default();
        for pair in align_blocks(a, b) {
            match (pair.a, pair.b) {
                (Some(_), None) => diff.only_a.push(pair.domain.to_owned()),
                (None, Some(_)) => diff.only_b.push(pair.domain.to_owned()),
                (None, None) => {}
                (Some(ba), Some(bb)) => {
                    diff.aligned += 1;
                    match first_divergence(ba, bb) {
                        None => diff.identical += 1,
                        Some(d) => diff.diverged.push(BlockDivergence {
                            domain: pair.domain.to_owned(),
                            pos: d.pos,
                            a_event: d.a.as_ref().map(|e| e.render()),
                            b_event: d.b.as_ref().map(|e| e.render()),
                            a_context: divergence_context(ba, d.pos, CONTEXT_RADIUS),
                            b_context: divergence_context(bb, d.pos, CONTEXT_RADIUS),
                        }),
                    }
                }
            }
        }
        diff
    }

    /// Whether both files sampled the same domains with identical
    /// event streams.
    pub fn is_empty(&self) -> bool {
        self.only_a.is_empty() && self.only_b.is_empty() && self.diverged.is_empty()
    }

    /// Number of differing blocks.
    pub fn differences(&self) -> usize {
        self.only_a.len() + self.only_b.len() + self.diverged.len()
    }
}

/// Rendering filters for [`RunDiff::render_text`].
#[derive(Debug, Clone, Default)]
pub struct RenderOptions {
    /// Only show changed entries; skip the summary panels.
    pub only_changed: bool,
    /// Restrict per-domain detail (transitions, shifts, divergence
    /// timelines) to this domain, and lift the detail cap for it.
    pub domain: Option<String>,
}

/// The complete structured comparison of two campaign runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunDiff {
    /// Per-domain dataset comparison.
    pub dataset: DatasetDiff,
    /// Remediation-tally deltas (`remedies.json`), name order; empty
    /// when both runs prescribed identical remediation.
    pub remedies: Vec<ScalarDelta<u64>>,
    /// Smell-verdict transitions (`smells.json`), when both runs kept a
    /// smell report. Smell verdicts are worker-count-invariant, so this
    /// counts toward [`RunDiff::differences`] like remediation does.
    pub smells: Option<SmellDiff>,
    /// Trace comparison, when both runs kept a trace file.
    pub trace: Option<TraceDiff>,
    /// Telemetry delta, when requested. Informational only: counters
    /// vary with worker count even on identical probe outcomes, so this
    /// never counts toward [`RunDiff::differences`].
    pub telemetry: Option<TelemetryDelta>,
}

impl RunDiff {
    /// Whether the runs agree on everything that is expected to
    /// reproduce (dataset rows, remediation, trace streams).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
            && self.remedies.is_empty()
            && self.smells.as_ref().is_none_or(SmellDiff::is_empty)
            && self.trace.as_ref().is_none_or(TraceDiff::is_empty)
    }

    /// Number of reproducible-surface differences.
    pub fn differences(&self) -> usize {
        self.dataset.differences()
            + self.remedies.len()
            + self.smells.as_ref().map_or(0, SmellDiff::differences)
            + self.trace.as_ref().map_or(0, TraceDiff::differences)
    }

    /// Deterministic human-readable rendering.
    pub fn render_text(&self, opts: &RenderOptions) -> String {
        let mut out = String::new();
        let d = &self.dataset;
        let wants = |name: &str| opts.domain.as_deref().is_none_or(|want| want == name);
        if !opts.only_changed {
            let _ = writeln!(out, "domains measured:    {} vs {}", d.domains.0, d.domains.1);
            out.push_str("class totals (A -> B):\n");
            for (class, a, b) in &d.class_totals {
                let _ = writeln!(out, "  {:<13} {a} -> {b}", class.as_str());
            }
            let _ = writeln!(out, "degraded domains:    {} -> {}", d.degraded.0, d.degraded.1);
            let _ = writeln!(
                out,
                "delivery attempts:   {} -> {}",
                d.attempts_total.0, d.attempts_total.1
            );
            for (label, r) in [("A", &d.rtt.0), ("B", &d.rtt.1)] {
                let _ = writeln!(
                    out,
                    "elapsed-ms {label}:        mean {} p50 {} p90 {} p99 {} max {}",
                    r.mean_ms, r.p50_ms, r.p90_ms, r.p99_ms, r.max_ms
                );
            }
        }
        for (label, names) in [("only in A", &d.only_a), ("only in B", &d.only_b)] {
            if !names.is_empty() {
                let _ = writeln!(out, "{label} ({}):", names.len());
                for name in names.iter().filter(|n| wants(n)) {
                    let _ = writeln!(out, "  {name}");
                }
            }
        }
        if !d.transitions.is_empty() {
            let _ = writeln!(out, "class transitions ({}):", d.transitions.len());
            for t in d.transitions.iter().filter(|t| wants(&t.domain)) {
                let _ = writeln!(out, "  {:<40} {} -> {}", t.domain, t.from, t.to);
            }
        }
        if !d.shifts.is_empty() {
            let _ = writeln!(out, "numeric shifts ({}):", d.shifts.len());
            for s in d.shifts.iter().filter(|s| wants(&s.domain)) {
                let _ = writeln!(out, "  {:<40} {}", s.domain, shift_line(&s.a, &s.b));
            }
        }
        if !self.remedies.is_empty() {
            let _ = writeln!(out, "remediation deltas ({}):", self.remedies.len());
            for r in &self.remedies {
                let _ = writeln!(out, "  {:<30} {} -> {}", r.name, r.a, r.b);
            }
        }
        if let Some(s) = &self.smells {
            if !opts.only_changed || !s.is_empty() {
                let _ = writeln!(out, "smell verdicts:      {} -> {}", s.totals.0, s.totals.1);
            }
            let sections = [
                ("smells appeared", &s.appeared),
                ("smells resolved", &s.resolved),
                ("smell severity shifts", &s.shifted),
            ];
            for (label, list) in sections {
                if !list.is_empty() {
                    let _ = writeln!(out, "{label} ({}):", list.len());
                    for t in list.iter().filter(|t| wants(&t.domain)) {
                        let _ = writeln!(
                            out,
                            "  {:<40} {:<20} {} -> {}",
                            t.domain,
                            t.kind,
                            severity_cell(t.a),
                            severity_cell(t.b)
                        );
                    }
                }
            }
        }
        if let Some(t) = &self.trace {
            if !opts.only_changed || !t.is_empty() {
                let _ = writeln!(
                    out,
                    "trace blocks:        {} aligned, {} identical, {} diverged, {} unmatched",
                    t.aligned,
                    t.identical,
                    t.diverged.len(),
                    t.only_a.len() + t.only_b.len()
                );
            }
            let detailed: Vec<&BlockDivergence> =
                t.diverged.iter().filter(|b| wants(&b.domain)).collect();
            let cap = if opts.domain.is_some() { usize::MAX } else { DETAIL_CAP };
            for b in detailed.iter().take(cap) {
                let _ = writeln!(out, "first divergence in {} at event {}:", b.domain, b.pos);
                let _ = writeln!(out, "  run A:");
                for line in &b.a_context {
                    let _ = writeln!(out, "    {line}");
                }
                let _ = writeln!(out, "  run B:");
                for line in &b.b_context {
                    let _ = writeln!(out, "    {line}");
                }
            }
            if detailed.len() > cap {
                let _ = writeln!(
                    out,
                    "  ... {} more diverged domains (use --domain NAME for one, --json for all)",
                    detailed.len() - cap
                );
            }
        }
        if let Some(t) = &self.telemetry {
            out.push_str(&t.render_text());
        }
        if self.is_empty() {
            out.push_str("runs are identical\n");
        } else {
            let _ = writeln!(out, "total differences:   {}", self.differences());
        }
        out
    }

    /// Canonical JSON rendering: fixed field order, no whitespace —
    /// byte-stable for CI comparison. This is the machine gate artifact,
    /// so it carries only worker-count-invariant content: the
    /// cache-warmth-sensitive RTT distribution panels appear in the
    /// text rendering only, and two same-seed runs produce identical
    /// JSON diffs against any third run regardless of worker counts.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let d = &self.dataset;
        let _ = write!(out, "{{\"differences\":{}", self.differences());
        let _ = write!(out, ",\"dataset\":{{\"domains\":[{},{}]", d.domains.0, d.domains.1);
        json_names(&mut out, ",\"only_a\":", &d.only_a);
        json_names(&mut out, ",\"only_b\":", &d.only_b);
        out.push_str(",\"transitions\":[");
        for (i, t) in d.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"domain\":");
            escape_into(&t.domain, &mut out);
            let _ = write!(out, ",\"from\":\"{}\",\"to\":\"{}\"}}", t.from, t.to);
        }
        out.push_str("],\"shifts\":[");
        for (i, s) in d.shifts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"domain\":");
            escape_into(&s.domain, &mut out);
            out.push_str(",\"a\":");
            json_row(&mut out, &s.a);
            out.push_str(",\"b\":");
            json_row(&mut out, &s.b);
            out.push('}');
        }
        out.push_str("],\"class_totals\":[");
        for (i, (class, a, b)) in d.class_totals.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[\"{}\",{a},{b}]", class.as_str());
        }
        let _ = write!(out, "],\"degraded\":[{},{}]", d.degraded.0, d.degraded.1);
        let _ = write!(out, ",\"attempts\":[{},{}]", d.attempts_total.0, d.attempts_total.1);
        out.push_str("},\"remedies\":[");
        for (i, r) in self.remedies.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            escape_into(&r.name, &mut out);
            let _ = write!(out, ",{},{}]", r.a, r.b);
        }
        out.push_str("],\"smells\":");
        match &self.smells {
            None => out.push_str("null"),
            Some(s) => {
                let _ = write!(out, "{{\"totals\":[{},{}]", s.totals.0, s.totals.1);
                let sections = [
                    (",\"appeared\":[", &s.appeared),
                    (",\"resolved\":[", &s.resolved),
                    (",\"shifted\":[", &s.shifted),
                ];
                for (key, list) in sections {
                    out.push_str(key);
                    for (i, t) in list.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        json_transition(&mut out, t);
                    }
                    out.push(']');
                }
                out.push('}');
            }
        }
        out.push_str(",\"trace\":");
        match &self.trace {
            None => out.push_str("null"),
            Some(t) => {
                let _ = write!(out, "{{\"aligned\":{},\"identical\":{}", t.aligned, t.identical);
                json_names(&mut out, ",\"only_a\":", &t.only_a);
                json_names(&mut out, ",\"only_b\":", &t.only_b);
                out.push_str(",\"diverged\":[");
                for (i, b) in t.diverged.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("{\"domain\":");
                    escape_into(&b.domain, &mut out);
                    let _ = write!(out, ",\"pos\":{}", b.pos);
                    for (key, event) in [(",\"a\":", &b.a_event), (",\"b\":", &b.b_event)] {
                        out.push_str(key);
                        match event {
                            None => out.push_str("null"),
                            Some(text) => escape_into(text, &mut out),
                        }
                    }
                    out.push('}');
                }
                out.push_str("]}");
            }
        }
        out.push_str(",\"telemetry\":");
        match &self.telemetry {
            None => out.push_str("null"),
            Some(t) => {
                let _ = write!(out, "{{\"entries\":{},\"counters\":[", t.len());
                for (i, c) in t.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    escape_into(&c.name, &mut out);
                    let _ = write!(out, ",{},{}]", c.a, c.b);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
        out
    }
}

/// The changed-field summary for a numeric shift, only naming fields
/// that moved. Restricted to the worker-count-invariant fields — the
/// cache-warmth-sensitive `queries`/`elapsed_ms` never appear here, so
/// the rendering is a function of the runs, not of how they were
/// parallelised (they still feed the aggregate RTT panels).
fn shift_line(a: &DomainRow, b: &DomainRow) -> String {
    let mut parts = Vec::new();
    let mut field = |name: &str, av: u64, bv: u64| {
        if av != bv {
            parts.push(format!("{name} {av}->{bv}"));
        }
    };
    field("rounds", a.rounds, b.rounds);
    field("attempts", a.attempts, b.attempts);
    field("servers", a.servers, b.servers);
    if a.degraded != b.degraded {
        parts.push(format!("degraded {}->{}", a.degraded, b.degraded));
    }
    parts.join(", ")
}

/// A shift row's JSON, invariant fields only (see [`shift_line`]).
fn json_row(out: &mut String, r: &DomainRow) {
    let _ = write!(
        out,
        "{{\"class\":\"{}\",\"degraded\":{},\"rounds\":{},\"attempts\":{},\"servers\":{}}}",
        r.class, r.degraded, r.rounds, r.attempts, r.servers
    );
}

/// An absent-side severity renders as `-` in text mode.
fn severity_cell(v: Option<u32>) -> String {
    v.map_or_else(|| "-".to_string(), |s| s.to_string())
}

/// A smell transition's JSON, absent severities as `null`.
fn json_transition(out: &mut String, t: &SmellTransition) {
    out.push_str("{\"domain\":");
    escape_into(&t.domain, out);
    out.push_str(",\"kind\":");
    escape_into(&t.kind, out);
    for (key, v) in [(",\"a\":", t.a), (",\"b\":", t.b)] {
        out.push_str(key);
        match v {
            None => out.push_str("null"),
            Some(s) => {
                let _ = write!(out, "{s}");
            }
        }
    }
    out.push('}');
}

fn json_names(out: &mut String, key: &str, names: &[String]) {
    out.push_str(key);
    out.push('[');
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        escape_into(name, out);
    }
    out.push(']');
}

/// Re-parses a `TelemetrySnapshot::to_json` document back into the
/// fields the cross-run delta compares: counters, gauges, histogram
/// observation counts, and the ledger total. Stage timings, toplists,
/// and histogram distributions are not reconstructed — the delta never
/// reads them.
///
/// # Errors
///
/// Returns a message when the document is not a telemetry snapshot.
pub fn telemetry_from_json(text: &str) -> Result<TelemetrySnapshot, String> {
    let doc = json::parse(text)?;
    let mut snap = TelemetrySnapshot::default();
    let fields = |key: &str| -> Result<&[(String, Json)], String> {
        doc.get(key)
            .and_then(Json::as_obj)
            .ok_or_else(|| format!("telemetry JSON lacks object {key:?}"))
    };
    for (name, value) in fields("counters")? {
        let v = value.as_u64().ok_or_else(|| format!("counter {name:?} is not a count"))?;
        snap.counters.insert(name.clone(), v);
    }
    for (name, value) in fields("gauges")? {
        let v = value.as_i64().ok_or_else(|| format!("gauge {name:?} is not an integer"))?;
        snap.gauges.insert(name.clone(), v);
    }
    for (name, value) in fields("histograms")? {
        let count = value
            .get("count")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram {name:?} lacks a count"))?;
        snap.histograms.insert(
            name.clone(),
            HistogramSnapshot {
                bounds: Vec::new(),
                buckets: Vec::new(),
                count,
                sum: 0.0,
                min: 0.0,
                max: 0.0,
            },
        );
    }
    if let Some(ledger) = doc.get("ledger").filter(|l| !matches!(l, Json::Null)) {
        let total = ledger.get("total").and_then(Json::as_u64).ok_or("ledger lacks a total")?;
        snap.ledger = Some(QueryLedger { total, ..QueryLedger::default() });
    }
    Ok(snap)
}

/// Parses a flat `{"name": count, ...}` document (the `remedies.json`
/// artifact) into name-sorted pairs.
///
/// # Errors
///
/// Returns a message when the document is not a flat count map.
pub fn counts_from_json(text: &str) -> Result<Vec<(String, u64)>, String> {
    let doc = json::parse(text)?;
    let fields = doc.as_obj().ok_or("expected a flat JSON object of counts")?;
    fields
        .iter()
        .map(|(name, value)| {
            value
                .as_u64()
                .map(|v| (name.clone(), v))
                .ok_or_else(|| format!("count {name:?} is not an integer"))
        })
        .collect()
}

/// Compares two remediation tallies (flat name → count maps read from
/// `remedies.json`), returning only the names whose counts differ.
pub fn remedies_delta(a: &[(String, u64)], b: &[(String, u64)]) -> Vec<ScalarDelta<u64>> {
    let names: std::collections::BTreeSet<&String> =
        a.iter().map(|(n, _)| n).chain(b.iter().map(|(n, _)| n)).collect();
    let lookup = |set: &[(String, u64)], name: &String| {
        set.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    };
    names
        .into_iter()
        .filter_map(|name| {
            let (av, bv) = (lookup(a, name), lookup(b, name));
            (av != bv).then(|| ScalarDelta { name: name.clone(), a: av, b: bv })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_trace::{DomainBlock, Step, TraceData, TraceEvent};

    fn block(domain: &str, texts: &[&str]) -> DomainBlock {
        DomainBlock {
            index: 0,
            domain: domain.into(),
            dropped: 0,
            events: texts
                .iter()
                .enumerate()
                .map(|(i, t)| TraceEvent {
                    seq: i as u32,
                    step: Step::ParentNs,
                    data: TraceData::Note { text: (*t).into() },
                })
                .collect(),
        }
    }

    fn log(blocks: Vec<DomainBlock>) -> TraceLog {
        TraceLog { domains: blocks, ..TraceLog::default() }
    }

    #[test]
    fn identical_logs_have_empty_trace_diff() {
        let a = log(vec![block("a.gov.zz", &["x", "y"]), block("b.gov.zz", &["z"])]);
        let t = TraceDiff::compare(&a, &a.clone());
        assert!(t.is_empty());
        assert_eq!((t.aligned, t.identical), (2, 2));
    }

    #[test]
    fn divergence_carries_both_timelines() {
        let a = log(vec![block("a.gov.zz", &["x", "y", "z"])]);
        let b = log(vec![block("a.gov.zz", &["x", "q", "z"])]);
        let t = TraceDiff::compare(&a, &b);
        assert_eq!(t.differences(), 1);
        let d = &t.diverged[0];
        assert_eq!(d.pos, 1);
        assert!(d.a_event.as_deref().unwrap().contains('y'));
        assert!(d.b_event.as_deref().unwrap().contains('q'));
        assert!(d.a_context.iter().any(|l| l.starts_with("> ")), "{:?}", d.a_context);
    }

    #[test]
    fn empty_rundiff_renders_identical_and_counts_zero() {
        let rd = RunDiff::default();
        assert!(rd.is_empty());
        assert_eq!(rd.differences(), 0);
        let text = rd.render_text(&RenderOptions::default());
        assert!(text.contains("runs are identical"), "{text}");
        let json = rd.to_json();
        assert!(json.starts_with("{\"differences\":0"), "{json}");
        assert_eq!(
            crate::json::parse(&json).unwrap().get("differences").unwrap().as_u64(),
            Some(0)
        );
    }

    #[test]
    fn smell_transitions_count_as_differences() {
        let rd = RunDiff {
            smells: Some(SmellDiff {
                appeared: vec![SmellTransition {
                    domain: "a.gov.zz".into(),
                    kind: "lame_delegation".into(),
                    a: None,
                    b: Some(65),
                }],
                shifted: vec![SmellTransition {
                    domain: "b.gov.zz".into(),
                    kind: "single_homed_glue".into(),
                    a: Some(50),
                    b: Some(70),
                }],
                totals: (1, 2),
                ..SmellDiff::default()
            }),
            ..RunDiff::default()
        };
        assert!(!rd.is_empty());
        assert_eq!(rd.differences(), 2);
        let text = rd.render_text(&RenderOptions::default());
        assert!(text.contains("smells appeared (1):"), "{text}");
        assert!(text.contains("- -> 65"), "{text}");
        assert!(text.contains("50 -> 70"), "{text}");
        let json = rd.to_json();
        assert!(json.contains("\"smells\":{\"totals\":[1,2]"), "{json}");
        assert!(json.contains("\"kind\":\"lame_delegation\",\"a\":null,\"b\":65"), "{json}");
        crate::json::parse(&json).expect("smell section stays parseable");
    }

    #[test]
    fn remedies_delta_reports_only_changes() {
        let a = vec![("removals".to_string(), 3u64), ("ns_fixes".to_string(), 1)];
        let b = vec![("removals".to_string(), 3u64), ("ns_fixes".to_string(), 4)];
        let d = remedies_delta(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "ns_fixes");
        assert_eq!((d[0].a, d[0].b), (1, 4));
    }
}
