//! A minimal JSON reader for the pipeline's own artifacts.
//!
//! The build environment has no crates.io access, so there is no
//! full-blown JSON library to lean on; this parser covers exactly the
//! subset the pipeline's canonical encoders emit (`canonical_json`,
//! `TelemetrySnapshot::to_json`, corpus cases): objects with
//! insertion-ordered keys, arrays, strings with the codec's escape set,
//! numbers, booleans, and `null`. Anything outside that subset is a
//! parse error, not a lenient guess — these files are machine-written,
//! so leniency would only hide corruption.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first violation.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", char::from(byte)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number bytes");
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| "invalid utf-8".to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        let c = char::from_u32(code).ok_or("non-scalar \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    other => return Err(format!("unknown escape \\{}", char::from(*other))),
                }
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

/// JSON string escaping for the crate's own writers (corpus cases,
/// `RunDiff::to_json`) — byte-compatible with the trace codec's.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    if s.bytes().all(|b| b >= 0x20 && b != b'"' && b != b'\\') {
        out.push_str(s);
    } else {
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_canonical_subset() {
        let doc = r#"{"a":1,"b":"x","c":[true,false,null],"d":{"e":2.5},"f":[]}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_arr().unwrap()[0].as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().get("e"), Some(&Json::Num(2.5)));
        assert!(v.get("d").unwrap().get("e").unwrap().as_u64().is_none(), "2.5 is not integral");
    }

    #[test]
    fn escapes_round_trip() {
        let nasty = "a\"b\\c\nd\te\rf\u{1}g";
        let mut doc = String::new();
        escape_into(nasty, &mut doc);
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"abc").is_err());
    }
}
