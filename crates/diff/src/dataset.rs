//! Per-domain dataset comparison: class transitions, numeric shifts,
//! and distribution summaries between two campaign outputs.
//!
//! The unit of comparison is the [`DatasetView`]: one row per domain,
//! keyed by name, carrying exactly the fields that compare meaningfully
//! across runs (outcome class, degradation, query/attempt/round counts,
//! simulated elapsed time). A view can be built from an in-memory
//! [`MeasurementDataset`] or re-parsed from the `canonical_json` file a
//! previous run left on disk — both constructions produce identical
//! rows, which is property-tested, so diffing a live run against an
//! archived one is exact.

use std::collections::BTreeMap;

use govdns_core::{DomainClass, MeasurementDataset};

use crate::json::{self, Json};

/// One domain's comparable outcome.
///
/// Not every field is reproducible: `queries` and `elapsed_ms` count
/// the resolver's side lookups too, whose number depends on per-worker
/// cache warmth — they vary with the worker count even when every probe
/// outcome is identical. Shift detection therefore compares only the
/// invariant fields ([`DomainRow::invariant_eq`]); the volatile pair
/// feeds the distribution summaries instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainRow {
    /// Funnel outcome class.
    pub class: DomainClass,
    /// Whether the domain answered only degraded.
    pub degraded: bool,
    /// Queries this domain's probe sent.
    pub queries: u64,
    /// Probe rounds the record aggregates.
    pub rounds: u64,
    /// Total delivery attempts across every observation.
    pub attempts: u64,
    /// Total simulated waiting, milliseconds.
    pub elapsed_ms: u64,
    /// Nameservers probed.
    pub servers: u64,
}

impl DomainRow {
    /// Whether the worker-count-invariant fields agree: outcome class,
    /// degradation, delivery attempts, rounds, and the server set size.
    /// `queries`/`elapsed_ms` are excluded — cache-warmth noise.
    pub fn invariant_eq(&self, other: &DomainRow) -> bool {
        self.class == other.class
            && self.degraded == other.degraded
            && self.attempts == other.attempts
            && self.rounds == other.rounds
            && self.servers == other.servers
    }
}

/// A name-keyed, order-independent projection of a campaign's outcome.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatasetView {
    /// Rows by domain name (lexicographic).
    pub rows: BTreeMap<String, DomainRow>,
}

impl DatasetView {
    /// Projects a live dataset.
    pub fn from_dataset(ds: &MeasurementDataset) -> DatasetView {
        let mut rows = BTreeMap::new();
        for p in &ds.probes {
            rows.insert(
                p.domain.to_string(),
                DomainRow {
                    class: p.class(),
                    degraded: p.degraded(),
                    queries: u64::from(p.queries),
                    rounds: u64::from(p.rounds),
                    attempts: p.attempts_total(),
                    elapsed_ms: u64::from(p.elapsed_ms),
                    servers: p.servers.len() as u64,
                },
            );
        }
        DatasetView { rows }
    }

    /// Re-parses the `canonical_json` rendering of a dataset into the
    /// same rows [`DatasetView::from_dataset`] would produce.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a canonical dataset.
    pub fn from_canonical_json(text: &str) -> Result<DatasetView, String> {
        let doc = json::parse(text)?;
        let probes = doc
            .get("probes")
            .and_then(Json::as_arr)
            .ok_or("dataset JSON lacks a \"probes\" array")?;
        let mut rows = BTreeMap::new();
        for (i, p) in probes.iter().enumerate() {
            let field = |key: &str| -> Result<&Json, String> {
                p.get(key).ok_or_else(|| format!("probe {i} lacks {key:?}"))
            };
            let num = |key: &str| -> Result<u64, String> {
                field(key)?.as_u64().ok_or_else(|| format!("probe {i} {key:?} is not a count"))
            };
            let domain = field("domain")?
                .as_str()
                .ok_or_else(|| format!("probe {i} \"domain\" is not a string"))?
                .to_owned();
            let degraded = field("degraded")?
                .as_bool()
                .ok_or_else(|| format!("probe {i} \"degraded\" is not a bool"))?;
            let parent_obs = field("parent_observations")?
                .as_arr()
                .ok_or_else(|| format!("probe {i} parent_observations is not an array"))?;
            let servers = field("servers")?
                .as_arr()
                .ok_or_else(|| format!("probe {i} servers is not an array"))?;
            let class = json_class(p, parent_obs, servers, degraded);
            let attempts = observed_attempts(parent_obs)?
                + servers
                    .iter()
                    .map(|s| {
                        observed_attempts(
                            s.get("observations").and_then(Json::as_arr).unwrap_or(&[]),
                        )
                    })
                    .sum::<Result<u64, String>>()?;
            rows.insert(
                domain,
                DomainRow {
                    class,
                    degraded,
                    queries: num("queries")?,
                    rounds: num("rounds")?,
                    attempts,
                    elapsed_ms: num("elapsed_ms")?,
                    servers: servers.len() as u64,
                },
            );
        }
        Ok(DatasetView { rows })
    }

    /// Per-class row tallies, funnel order.
    pub fn class_totals(&self) -> [(DomainClass, usize); 5] {
        let mut totals = DomainClass::all().map(|c| (c, 0usize));
        for row in self.rows.values() {
            if let Some(slot) = totals.iter_mut().find(|(c, _)| *c == row.class) {
                slot.1 += 1;
            }
        }
        totals
    }

    /// Rows flagged degraded.
    pub fn degraded_count(&self) -> usize {
        self.rows.values().filter(|r| r.degraded).count()
    }

    /// Sum of delivery attempts across all rows.
    pub fn attempts_total(&self) -> u64 {
        self.rows.values().map(|r| r.attempts).sum()
    }

    /// The elapsed-time (RTT-proxy) distribution across all rows.
    pub fn rtt_summary(&self) -> RttSummary {
        RttSummary::of(self.rows.values().map(|r| r.elapsed_ms))
    }

    /// Compares two views.
    pub fn diff(&self, other: &DatasetView) -> DatasetDiff {
        let mut diff = DatasetDiff {
            domains: (self.rows.len(), other.rows.len()),
            class_totals: {
                let a = self.class_totals();
                let b = other.class_totals();
                DomainClass::all().map(|c| {
                    let at = a.iter().find(|(k, _)| *k == c).map_or(0, |(_, n)| *n);
                    let bt = b.iter().find(|(k, _)| *k == c).map_or(0, |(_, n)| *n);
                    (c, at, bt)
                })
            },
            degraded: (self.degraded_count(), other.degraded_count()),
            attempts_total: (self.attempts_total(), other.attempts_total()),
            rtt: (self.rtt_summary(), other.rtt_summary()),
            ..DatasetDiff::default()
        };
        for (name, a) in &self.rows {
            match other.rows.get(name) {
                None => diff.only_a.push(name.clone()),
                Some(b) if a.class != b.class => diff.transitions.push(ClassTransition {
                    domain: name.clone(),
                    from: a.class,
                    to: b.class,
                }),
                Some(b) if !a.invariant_eq(b) => {
                    diff.shifts.push(NamedShift { domain: name.clone(), a: *a, b: *b });
                }
                Some(_) => {}
            }
        }
        for name in other.rows.keys() {
            if !self.rows.contains_key(name) {
                diff.only_b.push(name.clone());
            }
        }
        diff
    }
}

/// Sums the `attempts` fields of an observation array.
fn observed_attempts(observations: &[Json]) -> Result<u64, String> {
    observations
        .iter()
        .map(|o| {
            o.get("attempts")
                .and_then(Json::as_u64)
                .ok_or_else(|| "observation lacks an \"attempts\" count".to_string())
        })
        .sum()
}

/// Recomputes [`DomainClass`] from a canonical-JSON probe object using
/// the same predicates `DomainProbe::class` applies to live probes.
fn json_class(probe: &Json, parent_obs: &[Json], servers: &[Json], degraded: bool) -> DomainClass {
    let responded =
        |o: &Json| !matches!(o.get("class").and_then(Json::as_str), Some("timeout" | "skipped"));
    let parent_responsive = parent_obs.iter().any(responded);
    let parent_nonempty =
        probe.get("parent_ns").and_then(Json::as_arr).is_some_and(|ns| !ns.is_empty());
    let serves_zone = |s: &Json| {
        s.get("observations").and_then(Json::as_arr).is_some_and(|obs| {
            obs.iter().any(|o| o.get("class").is_some_and(|c| c.get("authoritative").is_some()))
        })
    };
    let has_authoritative = servers.iter().any(serves_zone);
    if !parent_responsive {
        DomainClass::Unreachable
    } else if !parent_nonempty {
        DomainClass::Removed
    } else if !has_authoritative {
        DomainClass::Stale
    } else if degraded {
        DomainClass::Degraded
    } else {
        DomainClass::Authoritative
    }
}

/// A domain whose outcome class changed between runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassTransition {
    /// The domain.
    pub domain: String,
    /// Run A's class.
    pub from: DomainClass,
    /// Run B's class.
    pub to: DomainClass,
}

/// Integer five-number-ish summary of the per-domain elapsed-time
/// distribution. All fields are exact integers (mean truncates), so the
/// summary is byte-stable across platforms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RttSummary {
    /// Rows summarized.
    pub count: u64,
    /// Truncated mean, milliseconds.
    pub mean_ms: u64,
    /// Median (nearest-rank), milliseconds.
    pub p50_ms: u64,
    /// 90th percentile (nearest-rank), milliseconds.
    pub p90_ms: u64,
    /// 99th percentile (nearest-rank), milliseconds.
    pub p99_ms: u64,
    /// Largest value, milliseconds.
    pub max_ms: u64,
}

impl RttSummary {
    /// Summarizes an elapsed-time series.
    pub fn of(values: impl IntoIterator<Item = u64>) -> RttSummary {
        let mut sorted: Vec<u64> = values.into_iter().collect();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return RttSummary::default();
        }
        let n = sorted.len() as u64;
        let rank = |pct: u64| sorted[((n - 1) * pct / 100) as usize];
        RttSummary {
            count: n,
            mean_ms: sorted.iter().sum::<u64>() / n,
            p50_ms: rank(50),
            p90_ms: rank(90),
            p99_ms: rank(99),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// Everything that differs between two dataset views, plus the summary
/// panels a reviewer reads even when nothing differs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetDiff {
    /// Row counts (run A, run B).
    pub domains: (usize, usize),
    /// Domains only run A measured, name order.
    pub only_a: Vec<String>,
    /// Domains only run B measured, name order.
    pub only_b: Vec<String>,
    /// Domains whose outcome class changed, name order.
    pub transitions: Vec<ClassTransition>,
    /// Domains whose class held but whose numbers moved, name order.
    pub shifts: Vec<NamedShift>,
    /// Per-class tallies `(class, run A, run B)`, funnel order.
    pub class_totals: [(DomainClass, usize, usize); 5],
    /// Degraded-domain counts.
    pub degraded: (usize, usize),
    /// Total delivery attempts.
    pub attempts_total: (u64, u64),
    /// Elapsed-time distribution summaries.
    pub rtt: (RttSummary, RttSummary),
}

/// A domain whose class held but whose numbers moved (attempt counts,
/// query totals, elapsed time, server sets, or the degraded flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedShift {
    /// The domain.
    pub domain: String,
    /// Run A's row.
    pub a: DomainRow,
    /// Run B's row.
    pub b: DomainRow,
}

impl Default for DatasetDiff {
    fn default() -> Self {
        DatasetDiff {
            domains: (0, 0),
            only_a: Vec::new(),
            only_b: Vec::new(),
            transitions: Vec::new(),
            shifts: Vec::new(),
            class_totals: DomainClass::all().map(|c| (c, 0, 0)),
            degraded: (0, 0),
            attempts_total: (0, 0),
            rtt: (RttSummary::default(), RttSummary::default()),
        }
    }
}

impl DatasetDiff {
    /// Whether the two runs measured identical per-domain outcomes.
    pub fn is_empty(&self) -> bool {
        self.only_a.is_empty()
            && self.only_b.is_empty()
            && self.transitions.is_empty()
            && self.shifts.is_empty()
    }

    /// Number of differing domains.
    pub fn differences(&self) -> usize {
        self.only_a.len() + self.only_b.len() + self.transitions.len() + self.shifts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(class: DomainClass, attempts: u64) -> DomainRow {
        DomainRow {
            class,
            degraded: class == DomainClass::Degraded,
            queries: 4,
            rounds: 1,
            attempts,
            elapsed_ms: 10 * attempts,
            servers: 2,
        }
    }

    fn view(rows: &[(&str, DomainRow)]) -> DatasetView {
        DatasetView { rows: rows.iter().map(|(n, r)| ((*n).to_owned(), *r)).collect() }
    }

    #[test]
    fn self_diff_is_empty() {
        let v = view(&[
            ("a.gov.zz", row(DomainClass::Authoritative, 3)),
            ("b.gov.zz", row(DomainClass::Degraded, 7)),
        ]);
        let d = v.diff(&v);
        assert!(d.is_empty());
        assert_eq!(d.differences(), 0);
        assert_eq!(d.degraded, (1, 1));
    }

    #[test]
    fn transitions_and_shifts_are_separated() {
        let a = view(&[
            ("a.gov.zz", row(DomainClass::Authoritative, 3)),
            ("b.gov.zz", row(DomainClass::Authoritative, 3)),
            ("gone.gov.zz", row(DomainClass::Stale, 1)),
        ]);
        let b = view(&[
            ("a.gov.zz", row(DomainClass::Degraded, 3)),
            ("b.gov.zz", row(DomainClass::Authoritative, 9)),
            ("new.gov.zz", row(DomainClass::Unreachable, 1)),
        ]);
        let d = a.diff(&b);
        assert_eq!(d.only_a, vec!["gone.gov.zz"]);
        assert_eq!(d.only_b, vec!["new.gov.zz"]);
        assert_eq!(d.transitions.len(), 1);
        assert_eq!(d.transitions[0].domain, "a.gov.zz");
        assert_eq!(d.transitions[0].from, DomainClass::Authoritative);
        assert_eq!(d.transitions[0].to, DomainClass::Degraded);
        assert_eq!(d.shifts.len(), 1);
        assert_eq!(d.shifts[0].domain, "b.gov.zz");
        assert_eq!((d.shifts[0].a.attempts, d.shifts[0].b.attempts), (3, 9));
        assert_eq!(d.differences(), 4);
    }

    #[test]
    fn cache_warmth_noise_is_not_a_shift() {
        let a = view(&[("a.gov.zz", row(DomainClass::Authoritative, 3))]);
        let mut warmer = row(DomainClass::Authoritative, 3);
        warmer.queries += 5;
        warmer.elapsed_ms += 3_600;
        let b = view(&[("a.gov.zz", warmer)]);
        let d = a.diff(&b);
        assert!(d.is_empty(), "queries/elapsed_ms vary with worker count; not differences");
        assert_ne!(d.rtt.0, d.rtt.1, "but the distribution summary still reflects them");
    }

    #[test]
    fn rtt_summary_is_nearest_rank() {
        let s = RttSummary::of((1..=100).map(|v| v * 10));
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 500, "rank 49 of 0..100 holds 50*10");
        assert_eq!(s.p90_ms, 900);
        assert_eq!(s.p99_ms, 990);
        assert_eq!(s.max_ms, 1000);
        assert_eq!(s.mean_ms, 505);
        assert_eq!(RttSummary::of([]), RttSummary::default());
    }
}
