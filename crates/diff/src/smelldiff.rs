//! Cross-run smell transitions: which operational smells appeared,
//! which were resolved, and whose severity moved — the smell-plane
//! sibling of [`DatasetView::diff`](crate::dataset::DatasetView::diff),
//! reusing the same conventions (domains keyed by name in `BTreeMap`s,
//! name-ordered output vectors, `is_empty`/`differences` counting)
//! rather than inventing a second delta format.
//!
//! The view is parsed straight from a `smells.json` canonical report,
//! with smell kinds as plain labels — this module deliberately does not
//! depend on the smell crate, so `govdns-smell` can in turn reuse this
//! crate's JSON parser.

use std::collections::BTreeMap;

use crate::json::{self, Json};

/// The smell surface of one run: domain → smell label → severity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmellView {
    /// Per-domain smell severities, keyed by domain then kind label.
    pub rows: BTreeMap<String, BTreeMap<String, u32>>,
}

/// One smell whose presence or severity changed between two runs.
/// `a`/`b` are the severities on each side; `None` means the smell was
/// absent there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmellTransition {
    /// The affected domain.
    pub domain: String,
    /// The smell's wire label (`lame_delegation`, ...).
    pub kind: String,
    /// Severity in run A, if present.
    pub a: Option<u32>,
    /// Severity in run B, if present.
    pub b: Option<u32>,
}

/// Everything that changed on the smell surface between two runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SmellDiff {
    /// Verdicts present only in run B (the smell appeared), ordered by
    /// `(domain, kind)`.
    pub appeared: Vec<SmellTransition>,
    /// Verdicts present only in run A (the smell was resolved), same
    /// order.
    pub resolved: Vec<SmellTransition>,
    /// Verdicts present on both sides with different severities.
    pub shifted: Vec<SmellTransition>,
    /// Total verdicts on each side.
    pub totals: (usize, usize),
}

impl SmellView {
    /// Parses the smell surface out of a canonical `smells.json`.
    ///
    /// # Errors
    ///
    /// Returns a message when the document is not a smell report.
    pub fn from_canonical_json(text: &str) -> Result<SmellView, String> {
        let doc = json::parse(text)?;
        let mut rows: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for v in doc.get("verdicts").and_then(Json::as_arr).ok_or("smell report lacks verdicts")? {
            let domain =
                v.get("domain").and_then(Json::as_str).ok_or("verdict lacks a domain")?.to_owned();
            let kind =
                v.get("kind").and_then(Json::as_str).ok_or("verdict lacks a kind")?.to_owned();
            let severity =
                v.get("severity").and_then(Json::as_u64).ok_or("verdict lacks a severity")? as u32;
            rows.entry(domain).or_default().insert(kind, severity);
        }
        Ok(SmellView { rows })
    }

    /// Total verdicts in the view.
    pub fn verdicts(&self) -> usize {
        self.rows.values().map(BTreeMap::len).sum()
    }

    /// Compares two smell surfaces; `self` is run A.
    pub fn diff(&self, other: &SmellView) -> SmellDiff {
        let mut diff =
            SmellDiff { totals: (self.verdicts(), other.verdicts()), ..SmellDiff::default() };
        let empty = BTreeMap::new();
        let domains: std::collections::BTreeSet<&String> =
            self.rows.keys().chain(other.rows.keys()).collect();
        for domain in domains {
            let a_row = self.rows.get(domain).unwrap_or(&empty);
            let b_row = other.rows.get(domain).unwrap_or(&empty);
            let kinds: std::collections::BTreeSet<&String> =
                a_row.keys().chain(b_row.keys()).collect();
            for kind in kinds {
                let (a, b) = (a_row.get(kind).copied(), b_row.get(kind).copied());
                let t = |a, b| SmellTransition { domain: domain.clone(), kind: kind.clone(), a, b };
                match (a, b) {
                    (None, Some(_)) => diff.appeared.push(t(a, b)),
                    (Some(_), None) => diff.resolved.push(t(a, b)),
                    (Some(av), Some(bv)) if av != bv => diff.shifted.push(t(a, b)),
                    _ => {}
                }
            }
        }
        diff
    }
}

impl SmellDiff {
    /// Whether both runs agree on every verdict and severity.
    pub fn is_empty(&self) -> bool {
        self.appeared.is_empty() && self.resolved.is_empty() && self.shifted.is_empty()
    }

    /// Number of differing `(domain, smell)` pairs.
    pub fn differences(&self) -> usize {
        self.appeared.len() + self.resolved.len() + self.shifted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(entries: &[(&str, &str, u32)]) -> SmellView {
        let mut rows: BTreeMap<String, BTreeMap<String, u32>> = BTreeMap::new();
        for &(domain, kind, severity) in entries {
            rows.entry(domain.to_owned()).or_default().insert(kind.to_owned(), severity);
        }
        SmellView { rows }
    }

    #[test]
    fn self_diff_is_empty() {
        let v = view(&[("a.gov.zz", "lame_delegation", 65), ("b.gov.zz", "single_homed_glue", 50)]);
        let d = v.diff(&v.clone());
        assert!(d.is_empty());
        assert_eq!(d.differences(), 0);
        assert_eq!(d.totals, (2, 2));
    }

    #[test]
    fn appeared_resolved_and_shifted_split_by_presence() {
        let a = view(&[("a.gov.zz", "lame_delegation", 65), ("b.gov.zz", "stale_parent_ns", 60)]);
        let b =
            view(&[("a.gov.zz", "lame_delegation", 100), ("c.gov.zz", "cyclic_dependency", 75)]);
        let d = a.diff(&b);
        assert_eq!(d.differences(), 3);
        assert_eq!(d.appeared.len(), 1);
        assert_eq!((d.appeared[0].domain.as_str(), d.appeared[0].b), ("c.gov.zz", Some(75)));
        assert_eq!(d.resolved.len(), 1);
        assert_eq!((d.resolved[0].domain.as_str(), d.resolved[0].a), ("b.gov.zz", Some(60)));
        assert_eq!(d.shifted.len(), 1);
        assert_eq!((d.shifted[0].a, d.shifted[0].b), (Some(65), Some(100)));
    }

    #[test]
    fn parses_canonical_verdicts() {
        let text = "{\"seed\":7,\"scale_ppm\":10000,\"verdicts\":[{\"domain\":\"a.gov.zz\",\"country\":\"zz\",\"kind\":\"lame_delegation\",\"severity\":65,\"detail\":\"d\",\"refactoring\":\"r\",\"evidence\":[]}],\"by_kind\":{\"lame_delegation\":1},\"domains_affected\":1,\"evidence_cited\":0}";
        let v = SmellView::from_canonical_json(text).expect("parses");
        assert_eq!(v.verdicts(), 1);
        assert_eq!(v.rows["a.gov.zz"]["lame_delegation"], 65);
        assert!(SmellView::from_canonical_json("{\"no\":1}").is_err());
    }
}
