//! The regression corpus: frozen failure cases that replay.
//!
//! When a campaign assertion or analysis fails, the offending domains'
//! trace blocks plus everything needed to regenerate their world — the
//! world seed, scale, chaos plan, retry policy — are archived into a
//! [`CorpusCase`]. `replay` later re-probes *just those domains*
//! against a freshly generated simnet and byte-compares the new trace
//! blocks against the recorded ones, so a frozen failure keeps failing
//! (or is provably fixed) without re-running the whole campaign.
//!
//! Replay is only sound for configurations whose per-domain behaviour
//! is independent of global campaign state. [`CorpusCase::capture`]
//! enforces that: unlimited retry budget (a shared budget drains in
//! campaign order), no breakers (they quarantine based on global
//! failure history), and at most the Flaky chaos profile (whose fault
//! decisions are pure hashes of `(seed, destination, qname, attempt)`;
//! Hostile's REFUSED bursts depend on global per-destination ordinals).

use std::io;
use std::path::{Path, PathBuf};

use govdns_core::report::Report;
use govdns_core::{Campaign, ProbeClient, RateLimiter, RetryPolicy};
use govdns_model::DomainName;
use govdns_simnet::ChaosProfile;
use govdns_trace::{read_trace, TraceLog, TraceRecord, TraceSpec, Tracer};
use govdns_world::{WorldConfig, WorldGenerator};

use crate::json::{self, escape_into, Json};

/// How many offending domains a case archives at most.
pub const CAPTURE_CAP: usize = 8;

/// The campaign configuration a corpus case replays under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplaySetup {
    /// World seed.
    pub world_seed: u64,
    /// World scale in parts per million (exact, JSON-stable).
    pub scale_ppm: u64,
    /// Chaos profile and plan seed, when faults were installed.
    pub chaos: Option<(ChaosProfile, u64)>,
    /// Query-rate cap.
    pub max_qps: u32,
    /// Retry policy (its budget must be unlimited to be capturable).
    pub retry: RetryPolicy,
    /// Whether stale-looking domains got a second round.
    pub second_round: bool,
    /// Flight-recorder ring capacity the trace was recorded with.
    pub flight_capacity: usize,
}

impl ReplaySetup {
    /// Why this configuration cannot replay per-domain, or `None` when
    /// it can.
    pub fn replay_unsafe_reason(&self) -> Option<String> {
        if matches!(self.chaos, Some((ChaosProfile::Congested | ChaosProfile::Hostile, _))) {
            return Some(
                "chaos profile depends on global per-destination state; only flaky replays"
                    .to_string(),
            );
        }
        if self.retry.is_enabled() && self.retry.per_destination_budget.is_some() {
            return Some("bounded retry budget drains in campaign order".to_string());
        }
        None
    }
}

/// One archived domain: its campaign index and recorded trace block,
/// kept as the exact encoded record for byte comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusDomain {
    /// Campaign domain index at capture time.
    pub index: u64,
    /// The domain.
    pub domain: String,
    /// The encoded `TraceRecord::Domain` payload recorded at capture.
    pub payload: String,
}

/// A frozen failure case: setup plus recorded trace blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusCase {
    /// Case name (also the `corpus/<name>.json` file stem).
    pub name: String,
    /// What failed at capture time (assertion text, panicked analysis).
    pub trigger: String,
    /// The configuration to replay under.
    pub setup: ReplaySetup,
    /// The archived domains, campaign order.
    pub domains: Vec<CorpusDomain>,
}

impl CorpusCase {
    /// Archives the offending domains of a failed run.
    ///
    /// Offenders are taken from the report's flight-recorder citations
    /// (panicked analyses, dump-cited domains) padded with degraded
    /// domains, capped at [`CAPTURE_CAP`]; only domains with a sampled
    /// trace block qualify.
    ///
    /// # Errors
    ///
    /// Returns why the configuration is not replay-safe, or that no
    /// offending domain had a trace block.
    pub fn capture(
        name: &str,
        trigger: &str,
        setup: &ReplaySetup,
        report: &Report,
        log: &TraceLog,
    ) -> Result<CorpusCase, String> {
        if let Some(reason) = setup.replay_unsafe_reason() {
            return Err(format!("configuration is not replay-safe: {reason}"));
        }
        let mut domains = Vec::new();
        for domain in report.offending_domains(log, CAPTURE_CAP) {
            let block = log.domain(&domain).expect("offenders have trace blocks");
            domains.push(CorpusDomain {
                index: block.index,
                domain,
                payload: TraceRecord::Domain(block.clone()).encode(),
            });
        }
        if domains.is_empty() {
            return Err("no offending domain has a sampled trace block".to_string());
        }
        domains.sort_by_key(|d| d.index);
        Ok(CorpusCase {
            name: name.to_string(),
            trigger: trigger.to_string(),
            setup: setup.clone(),
            domains,
        })
    }

    /// Canonical JSON rendering (fixed field order, no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"name\":");
        escape_into(&self.name, &mut out);
        out.push_str(",\"trigger\":");
        escape_into(&self.trigger, &mut out);
        let s = &self.setup;
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!(
                ",\"world_seed\":{},\"scale_ppm\":{},\"chaos\":{},\"max_qps\":{},\
                 \"second_round\":{},\"flight_capacity\":{},\"retry\":{{\"max_attempts\":{},\
                 \"base_backoff_ms\":{},\"max_backoff_ms\":{}}},\"domains\":[",
                s.world_seed,
                s.scale_ppm,
                match s.chaos {
                    None => "null".to_string(),
                    Some((profile, seed)) => format!("[\"{}\",{seed}]", profile_label(profile)),
                },
                s.max_qps,
                s.second_round,
                s.flight_capacity,
                s.retry.max_attempts,
                s.retry.base_backoff_ms,
                s.retry.max_backoff_ms,
            ),
        );
        for (i, d) in self.domains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = std::fmt::Write::write_fmt(
                &mut out,
                format_args!("{{\"index\":{},\"domain\":", d.index),
            );
            escape_into(&d.domain, &mut out);
            out.push_str(",\"payload\":");
            escape_into(&d.payload, &mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Parses a case back from its JSON rendering.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed field.
    pub fn from_json(text: &str) -> Result<CorpusCase, String> {
        let doc = json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("corpus case lacks string {key:?}"))
        };
        let num = |value: Option<&Json>, what: &str| -> Result<u64, String> {
            value.and_then(Json::as_u64).ok_or_else(|| format!("corpus case lacks count {what:?}"))
        };
        let chaos = match doc.get("chaos") {
            None | Some(Json::Null) => None,
            Some(value) => {
                let pair = value.as_arr().filter(|a| a.len() == 2).ok_or("bad \"chaos\" pair")?;
                let label = pair[0].as_str().ok_or("bad chaos profile")?;
                let profile = parse_profile(label)
                    .ok_or_else(|| format!("unknown chaos profile {label:?}"))?;
                Some((profile, num(Some(&pair[1]), "chaos seed")?))
            }
        };
        let retry = doc.get("retry").ok_or("corpus case lacks \"retry\"")?;
        let retry = RetryPolicy {
            max_attempts: num(retry.get("max_attempts"), "retry.max_attempts")? as u32,
            base_backoff_ms: num(retry.get("base_backoff_ms"), "retry.base_backoff_ms")? as u32,
            max_backoff_ms: num(retry.get("max_backoff_ms"), "retry.max_backoff_ms")? as u32,
            per_destination_budget: None,
        };
        let domains = doc
            .get("domains")
            .and_then(Json::as_arr)
            .ok_or("corpus case lacks \"domains\"")?
            .iter()
            .map(|d| {
                Ok(CorpusDomain {
                    index: num(d.get("index"), "domain index")?,
                    domain: d
                        .get("domain")
                        .and_then(Json::as_str)
                        .ok_or("domain entry lacks a name")?
                        .to_owned(),
                    payload: d
                        .get("payload")
                        .and_then(Json::as_str)
                        .ok_or("domain entry lacks a payload")?
                        .to_owned(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(CorpusCase {
            name: str_field("name")?,
            trigger: str_field("trigger")?,
            setup: ReplaySetup {
                world_seed: num(doc.get("world_seed"), "world_seed")?,
                scale_ppm: num(doc.get("scale_ppm"), "scale_ppm")?,
                chaos,
                max_qps: num(doc.get("max_qps"), "max_qps")? as u32,
                retry,
                second_round: doc
                    .get("second_round")
                    .and_then(Json::as_bool)
                    .ok_or("corpus case lacks \"second_round\"")?,
                flight_capacity: num(doc.get("flight_capacity"), "flight_capacity")? as usize,
            },
            domains,
        })
    }

    /// Writes the case to `dir/<name>.json` and returns the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Loads a case from a file.
    ///
    /// # Errors
    ///
    /// Returns filesystem errors and parse failures as text.
    pub fn load(path: &Path) -> Result<CorpusCase, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        CorpusCase::from_json(&text)
    }

    /// Re-probes the archived domains against a freshly generated world
    /// and byte-compares each new trace block with the recorded one.
    ///
    /// # Errors
    ///
    /// Returns setup failures (world regeneration, trace I/O, a domain
    /// name that no longer parses) as text; recorded-vs-replayed
    /// disagreements are reported in the outcome, not as errors.
    pub fn replay(&self) -> Result<ReplayOutcome, String> {
        let s = &self.setup;
        let scale = s.scale_ppm as f64 / 1_000_000.0;
        let world =
            WorldGenerator::new(WorldConfig::small(s.world_seed).with_scale(scale)).generate();
        let matchers = world.catalog.matchers();
        let campaign = Campaign::new(&world, &matchers);
        if let Some((profile, seed)) = s.chaos {
            campaign.network.install_faults(Some(profile.plan(seed)));
        }
        let trace_path = std::env::temp_dir().join(format!(
            "govdns-replay-{}-{}.trace",
            std::process::id(),
            self.name
        ));
        let spec = TraceSpec {
            path: trace_path.clone(),
            seed: 0,
            sample_ppm: govdns_trace::SAMPLE_FULL,
            flight_capacity: s.flight_capacity,
            max_dumps: govdns_trace::DEFAULT_MAX_DUMPS,
        };
        let tracer = Tracer::create(&spec, self.domains.len() as u64, 0)
            .map_err(|e| format!("trace file: {e}"))?;
        let client = ProbeClient::new(
            campaign.network,
            campaign.roots.to_vec(),
            RateLimiter::new(s.max_qps),
        )
        .with_retry(s.retry)
        .with_tracer(tracer.worker());
        for (i, d) in self.domains.iter().enumerate() {
            let name: DomainName =
                d.domain.parse().map_err(|_| format!("bad domain name {:?}", d.domain))?;
            client.trace_begin(i as u64, &name);
            let mut probe = client.probe(&name);
            if s.second_round && probe.parent_nonempty() && !probe.has_authoritative_answer() {
                client.retry_child_side(&mut probe);
            }
            client.trace_end();
        }
        drop(client);
        tracer.finish();
        let log = read_trace(&trace_path).map_err(|e| format!("replayed trace: {e}"))?;
        let _ = std::fs::remove_file(&trace_path);

        let mut outcome = ReplayOutcome { domains: self.domains.len(), ..ReplayOutcome::default() };
        for d in &self.domains {
            let Some(block) = log.domain(&d.domain) else {
                outcome.mismatches.push(ReplayMismatch {
                    domain: d.domain.clone(),
                    detail: "replay produced no trace block".to_string(),
                });
                continue;
            };
            // The replay run numbers domains 0..n; restore the recorded
            // campaign index before comparing, so the archived bytes and
            // the replayed bytes differ only if *behaviour* differed.
            let mut block = block.clone();
            block.index = d.index;
            let replayed = TraceRecord::Domain(block.clone()).encode();
            if replayed == d.payload {
                outcome.matched += 1;
                continue;
            }
            let detail = match TraceRecord::decode(&d.payload) {
                TraceRecord::Domain(recorded) => {
                    match govdns_trace::first_divergence(&recorded, &block) {
                        Some(div) => format!(
                            "first divergence at event {}: recorded {} / replayed {}",
                            div.pos,
                            div.a.as_ref().map_or("(stream end)".into(), |e| e.render()),
                            div.b.as_ref().map_or("(stream end)".into(), |e| e.render()),
                        ),
                        None => "event streams agree but encodings differ".to_string(),
                    }
                }
                _ => "recorded payload is not a domain block".to_string(),
            };
            outcome.mismatches.push(ReplayMismatch { domain: d.domain.clone(), detail });
        }
        Ok(outcome)
    }
}

/// The result of replaying a corpus case.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// Domains the case archives.
    pub domains: usize,
    /// Domains whose replayed trace block matched byte-for-byte.
    pub matched: usize,
    /// Domains that disagreed, with the first divergence located.
    pub mismatches: Vec<ReplayMismatch>,
}

impl ReplayOutcome {
    /// Whether every archived domain replayed byte-identically.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty() && self.matched == self.domains
    }
}

/// One domain whose replay disagreed with the recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// The domain.
    pub domain: String,
    /// Where and how it first diverged.
    pub detail: String,
}

/// Stable corpus-file label for a chaos profile.
pub fn profile_label(profile: ChaosProfile) -> &'static str {
    match profile {
        ChaosProfile::Flaky => "flaky",
        ChaosProfile::Congested => "congested",
        ChaosProfile::Hostile => "hostile",
    }
}

/// Parses a corpus-file chaos label.
pub fn parse_profile(label: &str) -> Option<ChaosProfile> {
    Some(match label {
        "flaky" => ChaosProfile::Flaky,
        "congested" => ChaosProfile::Congested,
        "hostile" => ChaosProfile::Hostile,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> ReplaySetup {
        ReplaySetup {
            world_seed: 7,
            scale_ppm: 20_000,
            chaos: Some((ChaosProfile::Flaky, 7)),
            max_qps: 200,
            retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
            second_round: true,
            flight_capacity: govdns_trace::DEFAULT_FLIGHT_CAPACITY,
        }
    }

    #[test]
    fn case_json_round_trips() {
        let case = CorpusCase {
            name: "ci-fail-providers".into(),
            trigger: "analysis_panic:providers".into(),
            setup: setup(),
            domains: vec![CorpusDomain {
                index: 12,
                domain: "portal.gov.zz".into(),
                payload: "{\"kind\":\"domain\",\"index\":12}".into(),
            }],
        };
        let json = case.to_json();
        let back = CorpusCase::from_json(&json).unwrap();
        assert_eq!(back, case);
        assert_eq!(back.to_json(), json, "re-encoding is byte-stable");
    }

    #[test]
    fn unsafe_setups_are_refused() {
        let mut s = setup();
        s.chaos = Some((ChaosProfile::Hostile, 7));
        assert!(s.replay_unsafe_reason().is_some());
        let mut s = setup();
        s.retry.per_destination_budget = Some(64);
        assert!(s.replay_unsafe_reason().is_some());
        assert!(setup().replay_unsafe_reason().is_none());
        let mut s = setup();
        s.chaos = None;
        assert!(s.replay_unsafe_reason().is_none(), "clean delivery always replays");
    }
}
