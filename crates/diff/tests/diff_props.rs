//! Property tests for the cross-run diff engine's core contracts:
//! a run diffed against itself is empty no matter how it was
//! parallelised, the diff of two *different* runs is invariant to the
//! worker counts that produced them, and a corpus case survives the
//! full capture → JSON → replay round trip byte-identically.
//!
//! Campaigns are expensive relative to a property-test iteration, so
//! runs are memoized per `(seed, workers)` in a process-wide cache and
//! the input space is kept deliberately small — the point is the
//! invariant over a handful of genuinely distinct campaigns, not
//! thousands of near-identical ones.

use std::collections::HashMap;
use std::sync::Mutex;
use std::sync::OnceLock;

use govdns_core::report::{failpoint, Report};
use govdns_core::{BreakerPolicy, CampaignTelemetry, ChaosSpec, RetryPolicy, RunnerConfig};
use govdns_diff::{CorpusCase, DatasetView, ReplaySetup, RunDiff, TraceDiff};
use govdns_simnet::ChaosProfile;
use govdns_trace::{read_trace, TraceLog, TraceSpec, DEFAULT_FLIGHT_CAPACITY};
use govdns_world::{WorldConfig, WorldGenerator};
use proptest::prelude::*;

/// Campaign scale for the memoized runs — a few hundred domains, big
/// enough to exercise every outcome class and chaos verdict.
const SCALE_PPM: u64 = 1_500;

struct RunArtifacts {
    canonical: String,
    log: TraceLog,
}

/// The replay-safe configuration the diff CLI's `run` mode uses: flaky
/// chaos, no breakers, unlimited retry budget (see `examples/diff.rs`).
fn replay_safe_config(seed: u64, workers: usize, trace: &std::path::Path) -> RunnerConfig {
    RunnerConfig {
        workers,
        retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
        chaos: Some(ChaosSpec { profile: ChaosProfile::Flaky, seed }),
        breaker: BreakerPolicy::none(),
        trace: Some(TraceSpec::new(trace).with_seed(seed)),
        ..RunnerConfig::default()
    }
}

/// Runs (or recalls) the campaign for `(seed, workers)` and returns its
/// comparable artifacts: canonical dataset JSON and the decoded trace.
fn run(seed: u64, workers: usize) -> (String, TraceLog) {
    static CACHE: OnceLock<Mutex<HashMap<(u64, usize), RunArtifacts>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("run cache");
    let entry = cache.entry((seed, workers)).or_insert_with(|| {
        let scale = SCALE_PPM as f64 / 1_000_000.0;
        let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
        let matchers = world.catalog.matchers();
        let campaign = govdns_core::Campaign::new(&world, &matchers);
        let trace_path = std::env::temp_dir()
            .join(format!("diff-props-{}-{seed}-{workers}.trace", std::process::id()));
        let config = replay_safe_config(seed, workers, &trace_path);
        let ctl = CampaignTelemetry::new();
        let report = Report::generate_with(&campaign, config, &ctl);
        let log = read_trace(&trace_path).expect("trace file");
        let _ = std::fs::remove_file(&trace_path);
        RunArtifacts { canonical: report.dataset.canonical_json(), log }
    });
    (entry.canonical.clone(), entry.log.clone())
}

fn view(canonical: &str) -> DatasetView {
    DatasetView::from_canonical_json(canonical).expect("canonical dataset parses")
}

proptest! {
    /// The determinism gate: a campaign diffed against a re-run of
    /// itself is empty for any seed at ANY pair of worker counts —
    /// dataset, trace alignment, and the whole `RunDiff`.
    #[test]
    fn self_diff_is_empty_at_any_worker_count(
        seed in 1u64..4,
        wa in prop::sample::select(vec![1usize, 2, 8]),
        wb in prop::sample::select(vec![1usize, 4]),
    ) {
        let (canon_a, log_a) = run(seed, wa);
        let (canon_b, log_b) = run(seed, wb);
        let dataset = view(&canon_a).diff(&view(&canon_b));
        prop_assert!(dataset.is_empty(), "dataset self-diff not empty: {dataset:?}");
        let trace = TraceDiff::compare(&log_a, &log_b);
        prop_assert!(trace.is_empty(), "trace self-diff not empty");
        prop_assert_eq!(trace.identical, trace.aligned);
        let full = RunDiff { dataset, trace: Some(trace), ..RunDiff::default() };
        prop_assert!(full.is_empty());
        prop_assert_eq!(full.differences(), 0);
    }

    /// Cross-seed diffs are a function of the *runs*, not of how they
    /// were parallelised: the first-divergence report (and the entire
    /// diff JSON) is byte-identical whichever worker counts produced
    /// the two sides.
    #[test]
    fn cross_seed_diff_is_worker_invariant(
        seeds in prop::sample::select(vec![(1u64, 2u64), (2, 3), (1, 3)]),
        wa in prop::sample::select(vec![1usize, 2]),
        wb in prop::sample::select(vec![4usize, 8]),
    ) {
        let (sa, sb) = seeds;
        let build = |w_left: usize, w_right: usize| {
            let (canon_a, log_a) = run(sa, w_left);
            let (canon_b, log_b) = run(sb, w_right);
            let dataset = view(&canon_a).diff(&view(&canon_b));
            let trace = TraceDiff::compare(&log_a, &log_b);
            RunDiff { dataset, trace: Some(trace), ..RunDiff::default() }
        };
        let reference = build(1, 1);
        let varied = build(wa, wb);
        prop_assert!(!reference.is_empty(), "different seeds must differ");
        prop_assert_eq!(varied.to_json(), reference.to_json());
    }
}

/// The full corpus pipeline, end to end: arm the analysis failpoint,
/// run a traced campaign, capture the offending domains, round-trip
/// the case through JSON, and replay it byte-identically against a
/// fresh simnet.
#[test]
fn corpus_replay_round_trips_end_to_end() {
    let seed = 5u64;
    let scale = SCALE_PPM as f64 / 1_000_000.0;
    let world = WorldGenerator::new(WorldConfig::small(seed).with_scale(scale)).generate();
    let matchers = world.catalog.matchers();
    let campaign = govdns_core::Campaign::new(&world, &matchers);
    let trace_path =
        std::env::temp_dir().join(format!("diff-props-corpus-{}.trace", std::process::id()));
    let config = replay_safe_config(seed, 4, &trace_path);
    let ctl = CampaignTelemetry::new();

    failpoint::arm("providers");
    let report = Report::generate_with(&campaign, config, &ctl);
    failpoint::disarm();
    assert_eq!(report.analysis_failures.len(), 1, "failpoint must trip exactly one stage");

    let log = read_trace(&trace_path).expect("trace file");
    let _ = std::fs::remove_file(&trace_path);
    let setup = ReplaySetup {
        world_seed: seed,
        scale_ppm: SCALE_PPM,
        chaos: Some((ChaosProfile::Flaky, seed)),
        max_qps: RunnerConfig::default().max_qps,
        retry: RetryPolicy { per_destination_budget: None, ..RetryPolicy::adaptive() },
        second_round: true,
        flight_capacity: DEFAULT_FLIGHT_CAPACITY,
    };
    let case = CorpusCase::capture("props-e2e", "analysis_panic:providers", &setup, &report, &log)
        .expect("capture offending domains");
    assert!(!case.domains.is_empty());

    // JSON round trip is exact, including the byte-stable encoding.
    let json = case.to_json();
    let back = CorpusCase::from_json(&json).expect("corpus case parses");
    assert_eq!(back.to_json(), json);

    // Replaying the parsed case reproduces every recorded block.
    let outcome = back.replay().expect("replay runs");
    assert!(
        outcome.is_clean(),
        "replay must be byte-identical: {} of {} diverged",
        outcome.mismatches.len(),
        outcome.domains
    );
    assert_eq!(outcome.matched, case.domains.len());
}
