//! Property tests for the simulated network: servers always produce a
//! well-formed outcome, classification is closed, and accounting is
//! conserved.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use govdns_model::{DomainName, Message, RecordType, Soa, Zone};
use govdns_simnet::{AuthoritativeServer, LameMode, ServerBehavior, SimNetwork};

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z]{1,8}", 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("valid labels"))
}

fn rtype_strategy() -> impl Strategy<Value = RecordType> {
    prop::sample::select(RecordType::all().to_vec())
}

fn behavior_strategy() -> impl Strategy<Value = ServerBehavior> {
    prop_oneof![
        Just(ServerBehavior::Responsive),
        Just(ServerBehavior::RelativeNameBug),
        Just(ServerBehavior::Unresponsive),
        Just(ServerBehavior::Lame(LameMode::Refused)),
        Just(ServerBehavior::Lame(LameMode::ServFail)),
        Just(ServerBehavior::Lame(LameMode::UpwardReferral)),
        Just(ServerBehavior::Lame(LameMode::EmptyNonAuth)),
        Just(ServerBehavior::Parking {
            web_ip: Ipv4Addr::new(203, 0, 113, 80),
            ns_names: vec![
                "ns1.parking.example".parse().expect("static"),
                "ns2.parking.example".parse().expect("static"),
            ],
        }),
    ]
}

fn sample_zone() -> Zone {
    let n = |s: &str| -> DomainName { s.parse().unwrap() };
    let mut z = Zone::new(n("gov.zz"));
    z.set_soa(Soa::new(n("ns1.gov.zz"), n("hostmaster.gov.zz")));
    z.add_ns(n("gov.zz"), n("ns1.gov.zz"));
    z.add_a(n("ns1.gov.zz"), Ipv4Addr::new(10, 0, 0, 1));
    z.add_ns(n("child.gov.zz"), n("ns1.child.gov.zz"));
    z.add_glue(n("ns1.child.gov.zz"), Ipv4Addr::new(10, 0, 0, 2));
    z.add_a(n("www.gov.zz"), Ipv4Addr::new(10, 0, 0, 80));
    z
}

proptest! {
    /// Every behavior yields either silence or a response that echoes the
    /// query id and question; responsive behaviors never time out.
    #[test]
    fn server_outcomes_are_well_formed(
        behavior in behavior_strategy(),
        qname in name_strategy(),
        rtype in rtype_strategy(),
        id in any::<u16>(),
    ) {
        let server = AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), behavior.clone())
            .with_zone(sample_zone());
        let q = Message::query(id, qname.clone(), rtype);
        match server.handle(&q) {
            None => prop_assert!(matches!(behavior, ServerBehavior::Unresponsive)),
            Some(r) => {
                prop_assert_eq!(r.id, id);
                prop_assert_eq!(&r.question.name, &qname);
                prop_assert_eq!(r.question.rtype, rtype);
                // A response is never both an answer and a referral.
                prop_assert!(!(r.is_authoritative_answer() && r.is_referral()));
            }
        }
    }

    /// Parking answers every A/NS question authoritatively, whatever the
    /// name.
    #[test]
    fn parking_is_omniscient(qname in name_strategy()) {
        let server = AuthoritativeServer::new(
            Ipv4Addr::new(10, 9, 9, 9),
            ServerBehavior::Parking {
                web_ip: Ipv4Addr::new(203, 0, 113, 80),
                ns_names: vec!["ns1.parking.example".parse().unwrap()],
            },
        );
        for rtype in [RecordType::A, RecordType::Ns] {
            let r = server.handle(&Message::query(1, qname.clone(), rtype)).unwrap();
            prop_assert!(r.is_authoritative_answer(), "{rtype} for {qname}");
        }
    }

    /// Traffic accounting is conserved: replies + timeouts = queries.
    #[test]
    fn accounting_is_conserved(
        targets in prop::collection::vec(any::<[u8; 4]>(), 1..40),
        loss_pct in 0u8..=100,
    ) {
        let mut net = SimNetwork::new(5).with_loss_rate(f64::from(loss_pct) / 100.0);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), ServerBehavior::Responsive)
                .with_zone(sample_zone()),
        );
        let q = Message::query(1, "gov.zz".parse().unwrap(), RecordType::Ns);
        for t in &targets {
            net.deliver((*t).into(), &q);
        }
        let s = net.stats();
        prop_assert_eq!(s.queries_sent, targets.len() as u64);
        prop_assert_eq!(s.responses_received + s.timeouts, s.queries_sent);
        // Per-destination counts sum to the total.
        let sum: u64 = net.busiest_destinations(usize::MAX).iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, s.queries_sent);
    }
}
