//! Property tests for the simulated network: servers always produce a
//! well-formed outcome, classification is closed, accounting is
//! conserved, and the lock-light hot path is observationally equivalent
//! to a single-threaded reference.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use govdns_model::{DomainName, Message, RecordType, Soa, Zone};
use govdns_simnet::{AuthoritativeServer, LameMode, ServerBehavior, SimNetwork};

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z]{1,8}", 1..5)
        .prop_map(|labels| labels.join(".").parse().expect("valid labels"))
}

fn rtype_strategy() -> impl Strategy<Value = RecordType> {
    prop::sample::select(RecordType::all().to_vec())
}

fn behavior_strategy() -> impl Strategy<Value = ServerBehavior> {
    prop_oneof![
        Just(ServerBehavior::Responsive),
        Just(ServerBehavior::RelativeNameBug),
        Just(ServerBehavior::Unresponsive),
        Just(ServerBehavior::Lame(LameMode::Refused)),
        Just(ServerBehavior::Lame(LameMode::ServFail)),
        Just(ServerBehavior::Lame(LameMode::UpwardReferral)),
        Just(ServerBehavior::Lame(LameMode::EmptyNonAuth)),
        Just(ServerBehavior::Parking {
            web_ip: Ipv4Addr::new(203, 0, 113, 80),
            ns_names: vec![
                "ns1.parking.example".parse().expect("static"),
                "ns2.parking.example".parse().expect("static"),
            ],
        }),
    ]
}

fn sample_zone() -> Zone {
    let n = |s: &str| -> DomainName { s.parse().unwrap() };
    let mut z = Zone::new(n("gov.zz"));
    z.set_soa(Soa::new(n("ns1.gov.zz"), n("hostmaster.gov.zz")));
    z.add_ns(n("gov.zz"), n("ns1.gov.zz"));
    z.add_a(n("ns1.gov.zz"), Ipv4Addr::new(10, 0, 0, 1));
    z.add_ns(n("child.gov.zz"), n("ns1.child.gov.zz"));
    z.add_glue(n("ns1.child.gov.zz"), Ipv4Addr::new(10, 0, 0, 2));
    z.add_a(n("www.gov.zz"), Ipv4Addr::new(10, 0, 0, 80));
    z
}

proptest! {
    /// Every behavior yields either silence or a response that echoes the
    /// query id and question; responsive behaviors never time out.
    #[test]
    fn server_outcomes_are_well_formed(
        behavior in behavior_strategy(),
        qname in name_strategy(),
        rtype in rtype_strategy(),
        id in any::<u16>(),
    ) {
        let server = AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), behavior.clone())
            .with_zone(sample_zone());
        let q = Message::query(id, qname.clone(), rtype);
        match server.handle(&q) {
            None => prop_assert!(matches!(behavior, ServerBehavior::Unresponsive)),
            Some(r) => {
                prop_assert_eq!(r.id, id);
                prop_assert_eq!(&r.question.name, &qname);
                prop_assert_eq!(r.question.rtype, rtype);
                // A response is never both an answer and a referral.
                prop_assert!(!(r.is_authoritative_answer() && r.is_referral()));
            }
        }
    }

    /// Parking answers every A/NS question authoritatively, whatever the
    /// name.
    #[test]
    fn parking_is_omniscient(qname in name_strategy()) {
        let server = AuthoritativeServer::new(
            Ipv4Addr::new(10, 9, 9, 9),
            ServerBehavior::Parking {
                web_ip: Ipv4Addr::new(203, 0, 113, 80),
                ns_names: vec!["ns1.parking.example".parse().unwrap()],
            },
        );
        for rtype in [RecordType::A, RecordType::Ns] {
            let r = server.handle(&Message::query(1, qname.clone(), rtype)).unwrap();
            prop_assert!(r.is_authoritative_answer(), "{rtype} for {qname}");
        }
    }

    /// Traffic accounting is conserved: replies + timeouts = queries.
    #[test]
    fn accounting_is_conserved(
        targets in prop::collection::vec(any::<[u8; 4]>(), 1..40),
        loss_pct in 0u8..=100,
    ) {
        let mut net = SimNetwork::new(5).with_loss_rate(f64::from(loss_pct) / 100.0);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), ServerBehavior::Responsive)
                .with_zone(sample_zone()),
        );
        let q = Message::query(1, "gov.zz".parse().unwrap(), RecordType::Ns);
        for t in &targets {
            net.deliver((*t).into(), &q);
        }
        let s = net.stats();
        prop_assert_eq!(s.queries_sent, targets.len() as u64);
        prop_assert_eq!(s.responses_received + s.timeouts, s.queries_sent);
        // Per-destination counts sum to the total.
        let sum: u64 = net.busiest_destinations(usize::MAX).iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(sum, s.queries_sent);
    }

    /// The sharded, atomic accounting matches a single-threaded
    /// reference tally exactly: totals, the full per-destination table,
    /// and the busiest-destination ranking — whether deliveries run on
    /// one thread or race across several.
    #[test]
    fn concurrent_accounting_matches_a_single_threaded_reference(
        targets in prop::collection::vec(any::<[u8; 4]>(), 1..60),
        threads in 1usize..=4,
    ) {
        let q = Message::query(1, "gov.zz".parse::<DomainName>().unwrap(), RecordType::Ns);
        let build = || {
            let mut net = SimNetwork::new(5);
            net.add_server(
                AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), ServerBehavior::Responsive)
                    .with_zone(sample_zone()),
            );
            net
        };

        // Reference: one thread, in order, tallied by hand.
        let reference = build();
        let mut expected: std::collections::BTreeMap<Ipv4Addr, u64> =
            std::collections::BTreeMap::new();
        for t in &targets {
            let dst = Ipv4Addr::from(*t);
            reference.deliver(dst, &q);
            *expected.entry(dst).or_insert(0) += 1;
        }

        // Subject: the same deliveries split across worker threads.
        let subject = build();
        let (subject_ref, q_ref) = (&subject, &q);
        std::thread::scope(|scope| {
            for chunk in targets.chunks(targets.len().div_ceil(threads)) {
                scope.spawn(move || {
                    for t in chunk {
                        subject_ref.deliver(Ipv4Addr::from(*t), q_ref);
                    }
                });
            }
        });

        prop_assert_eq!(subject.stats(), reference.stats());
        prop_assert_eq!(
            subject.per_destination_snapshot(),
            expected.iter().map(|(&a, &c)| (a, c)).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            subject.busiest_destinations(5),
            reference.busiest_destinations(5)
        );
    }

    /// Hash-based packet loss is a pure function of
    /// `(seed, dst, qname, attempt)`: the per-exchange verdicts are the
    /// same whether the campaign runs on one worker or eight, however
    /// the threads interleave.
    #[test]
    fn loss_verdicts_do_not_depend_on_worker_count(
        seed in any::<u64>(),
        loss_pct in 1u8..100,
        dsts in prop::collection::vec(any::<[u8; 4]>(), 1..12),
    ) {
        let q = Message::query(1, "gov.zz".parse::<DomainName>().unwrap(), RecordType::Ns);
        let rate = f64::from(loss_pct) / 100.0;
        let build = |dsts: &[[u8; 4]]| {
            let mut net = SimNetwork::new(seed).with_loss_rate(rate);
            for t in dsts {
                let addr = Ipv4Addr::from(*t);
                if net.server(addr).is_none() {
                    net.add_server(
                        AuthoritativeServer::new(addr, ServerBehavior::Responsive)
                            .with_zone(sample_zone()),
                    );
                }
            }
            net
        };
        // Routed servers answer unless loss eats the exchange, so
        // `reply().is_none()` observes the loss verdict directly.
        let exchanges: Vec<(Ipv4Addr, u32)> = dsts
            .iter()
            .flat_map(|t| (0..4u32).map(|a| (Ipv4Addr::from(*t), a)))
            .collect();

        let single = build(&dsts);
        let sequential: Vec<bool> = exchanges
            .iter()
            .map(|&(dst, a)| single.deliver_attempt(dst, &q, a).reply().is_none())
            .collect();

        let parallel = build(&dsts);
        let verdicts: Vec<std::sync::Mutex<Option<bool>>> =
            exchanges.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let (parallel_ref, q_ref) = (&parallel, &q);
        std::thread::scope(|scope| {
            for (chunk_x, chunk_v) in exchanges
                .chunks(exchanges.len().div_ceil(8))
                .zip(verdicts.chunks(exchanges.len().div_ceil(8)))
            {
                scope.spawn(move || {
                    for ((dst, a), slot) in chunk_x.iter().zip(chunk_v) {
                        *slot.lock().unwrap() =
                            Some(parallel_ref.deliver_attempt(*dst, q_ref, *a).reply().is_none());
                    }
                });
            }
        });
        let threaded: Vec<bool> =
            verdicts.iter().map(|v| v.lock().unwrap().expect("all exchanges ran")).collect();
        prop_assert_eq!(threaded, sequential);
    }
}

mod scenario_layering {
    use super::*;
    use govdns_simnet::{prefix24, ChaosProfile, FaultKind, FaultPlan};

    fn profile_strategy() -> impl Strategy<Value = ChaosProfile> {
        prop::sample::select(vec![
            ChaosProfile::Flaky,
            ChaosProfile::Congested,
            ChaosProfile::Hostile,
        ])
    }

    proptest! {
        /// The counterfactual blackhole layer composes with every chaos
        /// profile without perturbing a single decision outside its
        /// destination set: rule indices, salts, and hash draws are
        /// untouched by the layering.
        #[test]
        fn blackhole_layer_composes_without_side_effects(
            profile in profile_strategy(),
            plan_seed in 0u64..1_000,
            blackholed in prop::collection::vec(any::<u32>(), 1..8),
            probes in prop::collection::vec((any::<u32>(), 0u32..4, 0u64..200), 1..40),
            qname in name_strategy(),
        ) {
            let base = profile.plan(plan_seed);
            let blackholed: Vec<Ipv4Addr> =
                blackholed.into_iter().map(Ipv4Addr::from).collect();
            let layered = base.clone().with_blackholed_addrs(blackholed.iter().copied());
            for &(dst, attempt, ordinal) in &probes {
                let dst = Ipv4Addr::from(dst);
                if layered.is_blackholed(dst) {
                    let d = layered.decide(dst, &qname, attempt, ordinal);
                    prop_assert_eq!(d.drop, Some(FaultKind::Outage));
                    prop_assert!(!d.refuse && !d.truncate && d.extra_delay_ms == 0);
                } else {
                    prop_assert_eq!(
                        base.decide(dst, &qname, attempt, ordinal),
                        layered.decide(dst, &qname, attempt, ordinal)
                    );
                }
            }
        }

        /// Prefix blackholes swallow every host in the /24 and nothing
        /// outside it, independent of the rule set underneath.
        #[test]
        fn prefix_blackhole_covers_exactly_the_prefix(
            profile in profile_strategy(),
            plan_seed in 0u64..1_000,
            prefix_of in any::<u32>(),
            others in prop::collection::vec(any::<u32>(), 1..20),
            qname in name_strategy(),
        ) {
            let p = prefix24(Ipv4Addr::from(prefix_of));
            let plan = profile.plan(plan_seed).with_blackholed_prefixes([p]);
            for host in [0u32, 1, 99, 255] {
                let addr = Ipv4Addr::from((u32::from(p.network())) | host);
                prop_assert_eq!(
                    plan.decide(addr, &qname, 0, 0).drop,
                    Some(FaultKind::Outage)
                );
            }
            let base = profile.plan(plan_seed);
            for &o in &others {
                let addr = Ipv4Addr::from(o);
                if prefix24(addr) != p {
                    prop_assert_eq!(
                        base.decide(addr, &qname, 0, 0),
                        plan.decide(addr, &qname, 0, 0)
                    );
                }
            }
        }

        /// The partial-outage degrade layer composes with every chaos
        /// profile without perturbing a single decision outside its
        /// destination set; inside the set, an attempt either loses the
        /// dial (outage drop) or sees the base decision bit-for-bit.
        #[test]
        fn degrade_layer_composes_without_side_effects(
            profile in profile_strategy(),
            plan_seed in 0u64..1_000,
            ppm in 1u32..=1_000_000,
            degraded in prop::collection::vec(any::<u32>(), 1..8),
            probes in prop::collection::vec((any::<u32>(), 0u32..4, 0u64..200), 1..40),
            qname in name_strategy(),
        ) {
            let base = profile.plan(plan_seed);
            let degraded: Vec<Ipv4Addr> =
                degraded.into_iter().map(Ipv4Addr::from).collect();
            let layered = base
                .clone()
                .with_degraded_addrs(degraded.iter().copied())
                .with_degrade_ppm(ppm);
            for &(dst, attempt, ordinal) in &probes {
                let dst = Ipv4Addr::from(dst);
                let b = base.decide(dst, &qname, attempt, ordinal);
                let l = layered.decide(dst, &qname, attempt, ordinal);
                if layered.is_degraded(dst) {
                    if l != b {
                        prop_assert_eq!(l.drop, Some(FaultKind::Outage));
                        prop_assert!(!l.refuse && !l.truncate && l.extra_delay_ms == 0);
                    }
                } else {
                    prop_assert_eq!(b, l, "decision changed outside the degraded set");
                }
            }
        }

        /// The degrade dial is a pure per-attempt hash: verdicts repeat
        /// exactly, and a full dial (1e6 ppm) behaves like a blackhole
        /// for every attempt.
        #[test]
        fn degrade_verdicts_are_deterministic_and_saturate(
            profile in profile_strategy(),
            plan_seed in 0u64..1_000,
            dst in any::<u32>(),
            qname in name_strategy(),
        ) {
            let dst = Ipv4Addr::from(dst);
            let half = profile.plan(plan_seed)
                .with_degraded_addrs([dst])
                .with_degrade_ppm(500_000);
            for attempt in 0..6 {
                prop_assert_eq!(
                    half.decide(dst, &qname, attempt, 10),
                    half.decide(dst, &qname, attempt, 10)
                );
            }
            let full = profile.plan(plan_seed)
                .with_degraded_addrs([dst])
                .with_degrade_ppm(1_000_000);
            for attempt in 0..6 {
                prop_assert_eq!(
                    full.decide(dst, &qname, attempt, 10).drop,
                    Some(FaultKind::Outage)
                );
            }
        }

        /// An empty scenario layer is exactly the base plan: adding no
        /// blackholes never flips `is_empty` or any verdict.
        #[test]
        fn empty_layer_is_identity(
            profile in profile_strategy(),
            plan_seed in 0u64..1_000,
            dst in any::<u32>(),
            attempt in 0u32..4,
            qname in name_strategy(),
        ) {
            let base = profile.plan(plan_seed);
            let layered = base
                .clone()
                .with_blackholed_addrs(std::iter::empty())
                .with_blackholed_prefixes(std::iter::empty());
            prop_assert_eq!(base.is_empty(), layered.is_empty());
            let dst = Ipv4Addr::from(dst);
            prop_assert_eq!(
                base.decide(dst, &qname, attempt, 50),
                layered.decide(dst, &qname, attempt, 50)
            );
            let empty = FaultPlan::new(plan_seed);
            prop_assert!(empty.is_empty());
        }
    }
}
