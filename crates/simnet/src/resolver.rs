use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, Ordering};

use parking_lot::Mutex;

use govdns_model::{DomainName, Message, Rcode, RecordData, RecordType, ResourceRecord};

use crate::SimNetwork;

const MAX_REFERRALS: usize = 24;
const MAX_GLUELESS_DEPTH: usize = 6;
const MAX_CNAME_CHASE: usize = 4;

/// Negative-caching TTL when an authoritative NODATA/NXDOMAIN reply
/// carries no SOA to derive one from (RFC 2308 uses the SOA minimum).
const DEFAULT_NEGATIVE_TTL_S: u32 = 3600;

/// How long a resolution *failure* (every server timed out or answered
/// uselessly) is negatively cached, seconds. RFC 2308 §7 allows caching
/// server failures for up to five minutes; resolvers in the field use
/// much shorter holds, and this short hold is what puts a floor under
/// time-to-recover once an outage lifts.
const SERVFAIL_NEGATIVE_TTL_S: u32 = 30;

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResolveError {
    /// The name authoritatively does not exist.
    NxDomain(DomainName),
    /// Every candidate server timed out or answered uselessly.
    Unreachable(DomainName),
    /// Referral chain exceeded the loop budget.
    TooManyReferrals(DomainName),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "name {n} does not exist"),
            ResolveError::Unreachable(n) => write!(f, "no nameserver reachable for {n}"),
            ResolveError::TooManyReferrals(n) => {
                write!(f, "referral loop while resolving {n}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// A successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveResult {
    /// Answer records (possibly empty for NODATA).
    pub records: Vec<ResourceRecord>,
    /// Total time the resolution took, milliseconds of simulated waiting.
    pub elapsed_ms: u32,
    /// Number of queries the resolution spent.
    pub queries: u32,
}

impl ResolveResult {
    /// The IPv4 addresses among the answers.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.records.iter().filter_map(|r| r.data.as_a()).collect()
    }
}

/// One positive-cache entry: the answer records plus the virtual-clock
/// second past which they may no longer be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Virtual-clock expiry, seconds: the entry is served strictly
    /// before this instant and evicted at or after it (`now + min TTL`
    /// of the records at insert time).
    pub expires_at_s: u64,
    /// The cached answer records (possibly empty for NODATA).
    pub records: Vec<ResourceRecord>,
}

/// Why a negatively-cached name fails without a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NegativeKind {
    /// An authoritative NXDOMAIN was cached (RFC 2308).
    NxDomain,
    /// A resolution failure (all servers dead or useless) was cached
    /// briefly, the way real resolvers hold SERVFAIL.
    Unreachable,
}

/// An iterative resolver walking the simulated DNS from the root.
///
/// This plays the role of the study's measurement-host resolver: locating
/// the authoritative servers of parent zones and resolving nameserver
/// hostnames to IPv4 addresses. It keeps a positive cache, as the real
/// pipeline relied on its resolver's cache across 147k domains.
///
/// **Virtual clock.** Entries carry an expiry derived from record TTLs
/// (SOA negative-caching minimums for empty answers), measured against a
/// per-resolver virtual clock that starts at zero and only moves when a
/// caller advances it. Measurement campaigns never advance the clock, so
/// nothing expires mid-campaign and campaign outputs are unchanged by
/// the expiry machinery; recovery modeling ticks the clock across an
/// outage window to watch cached answers die and come back.
#[derive(Debug)]
pub struct StubResolver<'net> {
    network: &'net SimNetwork,
    roots: Vec<Ipv4Addr>,
    cache: Mutex<HashMap<(DomainName, RecordType), CacheEntry>>,
    /// RFC 2308 negative cache, used only when
    /// [`with_negative_cache`](Self::with_negative_cache) opted in:
    /// campaigns re-probe failures (the paper's protocol), the recovery
    /// model caches them.
    neg_cache: Mutex<HashMap<(DomainName, RecordType), (u64, NegativeKind)>>,
    negative_caching: AtomicBool,
    clock_s: AtomicU64,
    next_id: AtomicU16,
}

impl<'net> StubResolver<'net> {
    /// Creates a resolver with the given root-server hints.
    ///
    /// # Panics
    ///
    /// Panics if `roots` is empty.
    pub fn new(network: &'net SimNetwork, roots: Vec<Ipv4Addr>) -> Self {
        assert!(!roots.is_empty(), "a resolver needs at least one root hint");
        StubResolver {
            network,
            roots,
            cache: Mutex::new(HashMap::new()),
            neg_cache: Mutex::new(HashMap::new()),
            negative_caching: AtomicBool::new(false),
            clock_s: AtomicU64::new(0),
            next_id: AtomicU16::new(1),
        }
    }

    /// Enables RFC 2308-style negative caching (builder style): cached
    /// NXDOMAINs fail without a query until their SOA-derived TTL
    /// passes, and resolution failures are held for a short SERVFAIL
    /// window. Off by default — the measurement pipeline re-probes
    /// failures by design, so campaigns must not cache them.
    #[must_use]
    pub fn with_negative_cache(self) -> Self {
        self.negative_caching.store(true, Ordering::Relaxed);
        self
    }

    fn fresh_id(&self) -> u16 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured root hints.
    pub fn roots(&self) -> &[Ipv4Addr] {
        &self.roots
    }

    /// The virtual clock, seconds.
    pub fn now_s(&self) -> u64 {
        self.clock_s.load(Ordering::Relaxed)
    }

    /// Sets the virtual clock (absolute, seconds).
    pub fn set_clock_s(&self, t: u64) {
        self.clock_s.store(t, Ordering::Relaxed);
    }

    /// Advances the virtual clock by `dt` seconds, returning the new
    /// time.
    pub fn advance_clock_s(&self, dt: u64) -> u64 {
        self.clock_s.fetch_add(dt, Ordering::Relaxed) + dt
    }

    /// Exports the positive cache as a sorted list of entries — the
    /// campaign journal checkpoints this so a resumed run starts with
    /// the same cache warmth (a cache hit costs zero queries, so cache
    /// state is load-bearing for byte-identical resume).
    pub fn export_cache(&self) -> Vec<((DomainName, RecordType), CacheEntry)> {
        let cache = self.cache.lock();
        let mut entries: Vec<_> = cache.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Imports cache entries (from [`export_cache`]), replacing any
    /// existing entry under the same key. Entries whose expiry is not
    /// strictly after the resolver's current virtual time are dropped:
    /// a checkpoint restored at time `t` must not revive warmth the
    /// uninterrupted run would already have evicted.
    ///
    /// [`export_cache`]: StubResolver::export_cache
    pub fn import_cache(&self, entries: Vec<((DomainName, RecordType), CacheEntry)>) {
        let now = self.now_s();
        let mut cache = self.cache.lock();
        for (key, entry) in entries {
            if entry.expires_at_s > now {
                cache.insert(key, entry);
            }
        }
    }

    /// Inserts a positive entry expiring `ttl` seconds from now. A zero
    /// TTL is uncacheable and skipped outright, so no run ever exports
    /// an entry another run would have to evict on sight.
    fn cache_insert(&self, key: (DomainName, RecordType), records: Vec<ResourceRecord>, ttl: u32) {
        if ttl == 0 {
            return;
        }
        let expires_at_s = self.now_s().saturating_add(u64::from(ttl));
        self.cache.lock().insert(key, CacheEntry { expires_at_s, records });
    }

    /// Records a negative outcome (when negative caching is on).
    fn neg_insert(&self, key: (DomainName, RecordType), kind: NegativeKind, ttl: u32) {
        if !self.negative_caching.load(Ordering::Relaxed) || ttl == 0 {
            return;
        }
        let expires_at_s = self.now_s().saturating_add(u64::from(ttl));
        self.neg_cache.lock().insert(key, (expires_at_s, kind));
    }

    /// An unexpired negative entry for `key`, if negative caching is on.
    fn neg_lookup(&self, key: &(DomainName, RecordType)) -> Option<NegativeKind> {
        if !self.negative_caching.load(Ordering::Relaxed) {
            return None;
        }
        let now = self.now_s();
        let mut neg = self.neg_cache.lock();
        match neg.get(key) {
            Some(&(expires, kind)) if expires > now => Some(kind),
            Some(_) => {
                neg.remove(key);
                None
            }
            None => None,
        }
    }

    /// Resolves `name`/`rtype` iteratively from the root.
    ///
    /// # Errors
    ///
    /// See [`ResolveError`]. A NODATA outcome is a success with an empty
    /// record list.
    pub fn resolve(
        &self,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<ResolveResult, ResolveError> {
        self.resolve_inner(name, rtype, 0)
    }

    /// Resolves a hostname to its IPv4 addresses.
    ///
    /// # Errors
    ///
    /// See [`ResolveError`].
    pub fn resolve_a(&self, name: &DomainName) -> Result<Vec<Ipv4Addr>, ResolveError> {
        Ok(self.resolve(name, RecordType::A)?.addresses())
    }

    fn resolve_inner(
        &self,
        name: &DomainName,
        rtype: RecordType,
        depth: usize,
    ) -> Result<ResolveResult, ResolveError> {
        if depth > MAX_GLUELESS_DEPTH {
            return Err(ResolveError::TooManyReferrals(name.clone()));
        }
        let key = (name.clone(), rtype);
        {
            let now = self.now_s();
            let mut cache = self.cache.lock();
            match cache.get(&key) {
                Some(e) if e.expires_at_s > now => {
                    return Ok(ResolveResult {
                        records: e.records.clone(),
                        elapsed_ms: 0,
                        queries: 0,
                    });
                }
                Some(_) => {
                    cache.remove(&key);
                }
                None => {}
            }
        }
        match self.neg_lookup(&key) {
            Some(NegativeKind::NxDomain) => return Err(ResolveError::NxDomain(name.clone())),
            Some(NegativeKind::Unreachable) => {
                return Err(ResolveError::Unreachable(name.clone()));
            }
            None => {}
        }

        let mut servers: Vec<Ipv4Addr> = self.roots.clone();
        let mut elapsed_ms = 0u32;
        let mut queries = 0u32;
        let mut chased = 0usize;
        let mut qname = name.clone();
        // Depth of the zone cut the current server set is authoritative
        // for. A referral only counts as progress if it names a strictly
        // deeper cut — a lame server's self-referral must not loop.
        let mut cut_level = 0usize;

        for _ in 0..MAX_REFERRALS {
            let mut progressed = false;
            let mut candidates = std::mem::take(&mut servers);
            candidates.dedup();
            for dst in &candidates {
                let q = Message::query(self.fresh_id(), qname.clone(), rtype);
                let out = self.network.deliver(*dst, &q);
                elapsed_ms = elapsed_ms.saturating_add(out.elapsed_ms());
                queries += 1;
                let Some(reply) = out.reply() else { continue };
                if reply.aa && reply.rcode == Rcode::NxDomain {
                    self.neg_insert(
                        (qname.clone(), rtype),
                        NegativeKind::NxDomain,
                        negative_ttl(reply),
                    );
                    return Err(ResolveError::NxDomain(qname));
                }
                if reply.is_authoritative_answer() {
                    // Chase at most a few CNAME hops.
                    if rtype != RecordType::Cname {
                        if let Some(RecordData::Cname(target)) =
                            reply.answers.first().map(|r| &r.data)
                        {
                            if chased < MAX_CNAME_CHASE {
                                chased += 1;
                                qname = target.clone();
                                servers = self.roots.clone();
                                cut_level = 0;
                                progressed = true;
                                break;
                            }
                        }
                    }
                    let records = reply.answers.clone();
                    // Positive answers live for their smallest record
                    // TTL; an authoritative NODATA lives for the SOA
                    // negative-caching minimum (RFC 2308).
                    let ttl =
                        records.iter().map(|r| r.ttl).min().unwrap_or_else(|| negative_ttl(reply));
                    self.cache_insert((qname.clone(), rtype), records.clone(), ttl);
                    return Ok(ResolveResult { records, elapsed_ms, queries });
                }
                if reply.is_referral() {
                    let Some(cut) = deepest_cut(reply, &qname) else { continue };
                    if cut.level() <= cut_level {
                        // Sideways/upward referral: this server is not
                        // helping; ask the next one.
                        continue;
                    }
                    let next = self.referral_targets(reply, depth, &mut elapsed_ms, &mut queries);
                    if !next.is_empty() {
                        servers = next;
                        cut_level = cut.level();
                        progressed = true;
                        break;
                    }
                }
                // REFUSED/SERVFAIL/non-AA junk: try the next candidate.
            }
            if !progressed {
                self.neg_insert(
                    (qname.clone(), rtype),
                    NegativeKind::Unreachable,
                    SERVFAIL_NEGATIVE_TTL_S,
                );
                return Err(ResolveError::Unreachable(qname));
            }
        }
        Err(ResolveError::TooManyReferrals(qname))
    }

    /// Extracts the next-hop addresses from a referral: glue where present,
    /// glueless resolution otherwise.
    fn referral_targets(
        &self,
        reply: &Message,
        depth: usize,
        elapsed_ms: &mut u32,
        queries: &mut u32,
    ) -> Vec<Ipv4Addr> {
        let mut next = Vec::new();
        for target in reply.authority_ns_targets() {
            let glue: Vec<Ipv4Addr> = reply
                .additional
                .iter()
                .filter(|rr| rr.name == *target)
                .filter_map(|rr| rr.data.as_a())
                .collect();
            if glue.is_empty() {
                if let Ok(r) = self.resolve_inner(target, RecordType::A, depth + 1) {
                    *elapsed_ms = elapsed_ms.saturating_add(r.elapsed_ms);
                    *queries += r.queries;
                    next.extend(r.addresses());
                }
            } else {
                next.extend(glue);
            }
        }
        next
    }
}

/// The RFC 2308 negative TTL of an authoritative reply: the minimum of
/// the authority SOA's record TTL and its `minimum` field, falling back
/// to a conventional hour when the reply carries no SOA.
fn negative_ttl(reply: &Message) -> u32 {
    reply
        .authority
        .iter()
        .find_map(|rr| rr.data.as_soa().map(|soa| rr.ttl.min(soa.minimum)))
        .unwrap_or(DEFAULT_NEGATIVE_TTL_S)
}

/// The deepest authority-section NS owner enclosing `qname` — the zone
/// cut a referral points at.
fn deepest_cut(reply: &Message, qname: &DomainName) -> Option<DomainName> {
    reply
        .authority
        .iter()
        .filter(|rr| rr.rtype() == RecordType::Ns && qname.is_within(&rr.name))
        .map(|rr| rr.name.clone())
        .max_by_key(DomainName::level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuthoritativeServer, ServerBehavior};
    use govdns_model::Zone;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    /// Builds a three-level hierarchy: root → zz → gov.zz, with a web host
    /// inside gov.zz and a glueless out-of-bailiwick nameserver case.
    fn test_network() -> SimNetwork {
        let mut net = SimNetwork::new(5);

        let mut root = Zone::new(DomainName::root());
        root.add_ns(DomainName::root(), n("a.root.example"));
        root.add_glue(n("a.root.example"), Ipv4Addr::new(10, 0, 0, 1));
        root.add_ns(n("zz"), n("ns1.nic.zz"));
        root.add_glue(n("ns1.nic.zz"), Ipv4Addr::new(10, 1, 0, 1));
        root.add_ns(n("example"), n("ns1.example"));
        root.add_glue(n("ns1.example"), Ipv4Addr::new(10, 3, 0, 1));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), ServerBehavior::Responsive)
                .with_zone(root),
        );

        let mut tld = Zone::new(n("zz"));
        tld.add_ns(n("zz"), n("ns1.nic.zz"));
        tld.add_a(n("ns1.nic.zz"), Ipv4Addr::new(10, 1, 0, 1));
        // Delegation with glue.
        tld.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        tld.add_glue(n("ns1.gov.zz"), Ipv4Addr::new(10, 2, 0, 1));
        // Glueless delegation to an out-of-bailiwick server name.
        tld.add_ns(n("glueless.zz"), n("ns1.example"));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 1, 0, 1), ServerBehavior::Responsive)
                .with_zone(tld),
        );

        let mut gov = Zone::new(n("gov.zz"));
        gov.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        gov.add_a(n("ns1.gov.zz"), Ipv4Addr::new(10, 2, 0, 1));
        gov.add_a(n("www.gov.zz"), Ipv4Addr::new(10, 2, 0, 80));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 2, 0, 1), ServerBehavior::Responsive)
                .with_zone(gov),
        );

        let mut example = Zone::new(n("example"));
        example.add_ns(n("example"), n("ns1.example"));
        example.add_a(n("ns1.example"), Ipv4Addr::new(10, 3, 0, 1));
        let mut glueless = Zone::new(n("glueless.zz"));
        glueless.add_ns(n("glueless.zz"), n("ns1.example"));
        glueless.add_a(n("www.glueless.zz"), Ipv4Addr::new(10, 3, 0, 80));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 3, 0, 1), ServerBehavior::Responsive)
                .with_zone(example)
                .with_zone(glueless),
        );

        net
    }

    fn resolver(net: &SimNetwork) -> StubResolver<'_> {
        StubResolver::new(net, vec![Ipv4Addr::new(10, 0, 0, 1)])
    }

    #[test]
    fn resolves_through_two_referrals() {
        let net = test_network();
        let r = resolver(&net);
        let addrs = r.resolve_a(&n("www.gov.zz")).unwrap();
        assert_eq!(addrs, vec![Ipv4Addr::new(10, 2, 0, 80)]);
    }

    #[test]
    fn glueless_delegation_needs_a_side_resolution() {
        let net = test_network();
        let r = resolver(&net);
        let addrs = r.resolve_a(&n("www.glueless.zz")).unwrap();
        assert_eq!(addrs, vec![Ipv4Addr::new(10, 3, 0, 80)]);
    }

    #[test]
    fn nxdomain_is_reported() {
        let net = test_network();
        let r = resolver(&net);
        assert!(matches!(r.resolve_a(&n("missing.gov.zz")), Err(ResolveError::NxDomain(_))));
    }

    #[test]
    fn cache_short_circuits_repeat_queries() {
        let net = test_network();
        let r = resolver(&net);
        let first = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(first.queries > 0);
        let second = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert_eq!(second.queries, 0);
        assert_eq!(second.records, first.records);
    }

    #[test]
    fn exported_cache_restores_warmth_in_a_fresh_resolver() {
        let net = test_network();
        let r = resolver(&net);
        r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        let exported = r.export_cache();
        assert!(!exported.is_empty());
        assert_eq!(exported, r.export_cache(), "export order is stable");

        let fresh = resolver(&net);
        fresh.import_cache(exported);
        let hit = fresh.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert_eq!(hit.queries, 0, "imported cache serves without queries");
        assert_eq!(hit.addresses(), vec![Ipv4Addr::new(10, 2, 0, 80)]);
    }

    #[test]
    fn cache_entries_expire_on_the_virtual_clock() {
        let net = test_network();
        let r = resolver(&net);
        let warm = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(warm.queries > 0);
        // Zone records carry the 3600 s default TTL; just inside the
        // window the cache still serves, at the boundary it must not.
        r.set_clock_s(3599);
        assert_eq!(r.resolve(&n("www.gov.zz"), RecordType::A).unwrap().queries, 0);
        r.set_clock_s(3600);
        let refreshed = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(refreshed.queries > 0, "expired entry must be re-resolved");
        assert_eq!(refreshed.addresses(), vec![Ipv4Addr::new(10, 2, 0, 80)]);
    }

    #[test]
    fn exported_entries_carry_ttl_derived_expiry() {
        let net = test_network();
        let r = resolver(&net);
        r.set_clock_s(100);
        r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        let exported = r.export_cache();
        let (_, entry) = exported
            .iter()
            .find(|((name, rt), _)| *name == n("www.gov.zz") && *rt == RecordType::A)
            .expect("answer cached");
        assert_eq!(entry.expires_at_s, 100 + 3600, "expiry = insert time + min record TTL");
    }

    #[test]
    fn import_drops_entries_already_expired_at_the_restored_clock() {
        let net = test_network();
        let r = resolver(&net);
        r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        let exported = r.export_cache();
        assert!(!exported.is_empty());

        let fresh = resolver(&net);
        fresh.set_clock_s(4000); // past every 3600 s expiry
        fresh.import_cache(exported.clone());
        assert!(fresh.export_cache().is_empty(), "stale warmth must not be revived");
        let miss = fresh.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(miss.queries > 0);

        let in_window = resolver(&net);
        in_window.set_clock_s(1000);
        in_window.import_cache(exported);
        assert_eq!(in_window.resolve(&n("www.gov.zz"), RecordType::A).unwrap().queries, 0);
    }

    #[test]
    fn advance_clock_accumulates() {
        let net = test_network();
        let r = resolver(&net);
        assert_eq!(r.now_s(), 0);
        assert_eq!(r.advance_clock_s(90), 90);
        assert_eq!(r.advance_clock_s(10), 100);
        assert_eq!(r.now_s(), 100);
    }

    #[test]
    fn negative_caching_is_opt_in() {
        let net = test_network();
        // Default: NXDOMAIN is re-queried every time (campaign behavior).
        let r = resolver(&net);
        let q1 = r.resolve(&n("missing.gov.zz"), RecordType::A);
        assert!(matches!(q1, Err(ResolveError::NxDomain(_))));
        let before = net.stats().queries_sent;
        let _ = r.resolve(&n("missing.gov.zz"), RecordType::A);
        assert!(net.stats().queries_sent > before, "no negative cache by default");

        // Opted in: the second lookup is served from the negative cache.
        let nc = StubResolver::new(&net, vec![Ipv4Addr::new(10, 0, 0, 1)]).with_negative_cache();
        let _ = nc.resolve(&n("missing.gov.zz"), RecordType::A);
        let before = net.stats().queries_sent;
        assert!(matches!(
            nc.resolve(&n("missing.gov.zz"), RecordType::A),
            Err(ResolveError::NxDomain(_))
        ));
        assert_eq!(net.stats().queries_sent, before, "cached NXDOMAIN costs no query");

        // The negative entry expires with the SOA minimum (3600 s).
        nc.set_clock_s(3600);
        let _ = nc.resolve(&n("missing.gov.zz"), RecordType::A);
        assert!(net.stats().queries_sent > before, "expired negative entry re-queries");
    }

    #[test]
    fn resolution_failures_are_held_briefly_when_negative_caching() {
        let net = SimNetwork::new(1);
        let r = StubResolver::new(&net, vec![Ipv4Addr::new(10, 9, 9, 9)]).with_negative_cache();
        assert!(matches!(r.resolve_a(&n("www.gov.zz")), Err(ResolveError::Unreachable(_))));
        let before = net.stats().queries_sent;
        assert!(matches!(r.resolve_a(&n("www.gov.zz")), Err(ResolveError::Unreachable(_))));
        assert_eq!(net.stats().queries_sent, before, "failure held in the SERVFAIL window");
        r.set_clock_s(30);
        let _ = r.resolve_a(&n("www.gov.zz"));
        assert!(net.stats().queries_sent > before, "past the hold the failure re-queries");
    }

    #[test]
    fn unreachable_when_all_roots_dead() {
        let net = SimNetwork::new(1);
        let r = StubResolver::new(&net, vec![Ipv4Addr::new(10, 9, 9, 9)]);
        assert!(matches!(r.resolve_a(&n("www.gov.zz")), Err(ResolveError::Unreachable(_))));
    }

    #[test]
    fn elapsed_time_accumulates() {
        let net = test_network();
        let r = resolver(&net);
        let res = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(res.elapsed_ms >= net.latency().base_ms * res.queries);
    }
}
