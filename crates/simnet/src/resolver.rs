use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU16, Ordering};

use parking_lot::Mutex;

use govdns_model::{DomainName, Message, Rcode, RecordData, RecordType, ResourceRecord};

use crate::SimNetwork;

const MAX_REFERRALS: usize = 24;
const MAX_GLUELESS_DEPTH: usize = 6;
const MAX_CNAME_CHASE: usize = 4;

/// Why a resolution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResolveError {
    /// The name authoritatively does not exist.
    NxDomain(DomainName),
    /// Every candidate server timed out or answered uselessly.
    Unreachable(DomainName),
    /// Referral chain exceeded the loop budget.
    TooManyReferrals(DomainName),
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResolveError::NxDomain(n) => write!(f, "name {n} does not exist"),
            ResolveError::Unreachable(n) => write!(f, "no nameserver reachable for {n}"),
            ResolveError::TooManyReferrals(n) => {
                write!(f, "referral loop while resolving {n}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// A successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveResult {
    /// Answer records (possibly empty for NODATA).
    pub records: Vec<ResourceRecord>,
    /// Total time the resolution took, milliseconds of simulated waiting.
    pub elapsed_ms: u32,
    /// Number of queries the resolution spent.
    pub queries: u32,
}

impl ResolveResult {
    /// The IPv4 addresses among the answers.
    pub fn addresses(&self) -> Vec<Ipv4Addr> {
        self.records.iter().filter_map(|r| r.data.as_a()).collect()
    }
}

/// An iterative resolver walking the simulated DNS from the root.
///
/// This plays the role of the study's measurement-host resolver: locating
/// the authoritative servers of parent zones and resolving nameserver
/// hostnames to IPv4 addresses. It keeps a positive cache, as the real
/// pipeline relied on its resolver's cache across 147k domains.
#[derive(Debug)]
pub struct StubResolver<'net> {
    network: &'net SimNetwork,
    roots: Vec<Ipv4Addr>,
    cache: Mutex<HashMap<(DomainName, RecordType), Vec<ResourceRecord>>>,
    next_id: AtomicU16,
}

impl<'net> StubResolver<'net> {
    /// Creates a resolver with the given root-server hints.
    ///
    /// # Panics
    ///
    /// Panics if `roots` is empty.
    pub fn new(network: &'net SimNetwork, roots: Vec<Ipv4Addr>) -> Self {
        assert!(!roots.is_empty(), "a resolver needs at least one root hint");
        StubResolver {
            network,
            roots,
            cache: Mutex::new(HashMap::new()),
            next_id: AtomicU16::new(1),
        }
    }

    fn fresh_id(&self) -> u16 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured root hints.
    pub fn roots(&self) -> &[Ipv4Addr] {
        &self.roots
    }

    /// Exports the positive cache as a sorted list of entries — the
    /// campaign journal checkpoints this so a resumed run starts with
    /// the same cache warmth (a cache hit costs zero queries, so cache
    /// state is load-bearing for byte-identical resume).
    pub fn export_cache(&self) -> Vec<((DomainName, RecordType), Vec<ResourceRecord>)> {
        let cache = self.cache.lock();
        let mut entries: Vec<_> = cache.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Imports cache entries (from [`export_cache`]), replacing any
    /// existing entry under the same key.
    ///
    /// [`export_cache`]: StubResolver::export_cache
    pub fn import_cache(&self, entries: Vec<((DomainName, RecordType), Vec<ResourceRecord>)>) {
        let mut cache = self.cache.lock();
        for (key, records) in entries {
            cache.insert(key, records);
        }
    }

    /// Resolves `name`/`rtype` iteratively from the root.
    ///
    /// # Errors
    ///
    /// See [`ResolveError`]. A NODATA outcome is a success with an empty
    /// record list.
    pub fn resolve(
        &self,
        name: &DomainName,
        rtype: RecordType,
    ) -> Result<ResolveResult, ResolveError> {
        self.resolve_inner(name, rtype, 0)
    }

    /// Resolves a hostname to its IPv4 addresses.
    ///
    /// # Errors
    ///
    /// See [`ResolveError`].
    pub fn resolve_a(&self, name: &DomainName) -> Result<Vec<Ipv4Addr>, ResolveError> {
        Ok(self.resolve(name, RecordType::A)?.addresses())
    }

    fn resolve_inner(
        &self,
        name: &DomainName,
        rtype: RecordType,
        depth: usize,
    ) -> Result<ResolveResult, ResolveError> {
        if depth > MAX_GLUELESS_DEPTH {
            return Err(ResolveError::TooManyReferrals(name.clone()));
        }
        if let Some(records) = self.cache.lock().get(&(name.clone(), rtype)) {
            return Ok(ResolveResult { records: records.clone(), elapsed_ms: 0, queries: 0 });
        }

        let mut servers: Vec<Ipv4Addr> = self.roots.clone();
        let mut elapsed_ms = 0u32;
        let mut queries = 0u32;
        let mut chased = 0usize;
        let mut qname = name.clone();
        // Depth of the zone cut the current server set is authoritative
        // for. A referral only counts as progress if it names a strictly
        // deeper cut — a lame server's self-referral must not loop.
        let mut cut_level = 0usize;

        for _ in 0..MAX_REFERRALS {
            let mut progressed = false;
            let mut candidates = std::mem::take(&mut servers);
            candidates.dedup();
            for dst in &candidates {
                let q = Message::query(self.fresh_id(), qname.clone(), rtype);
                let out = self.network.deliver(*dst, &q);
                elapsed_ms = elapsed_ms.saturating_add(out.elapsed_ms());
                queries += 1;
                let Some(reply) = out.reply() else { continue };
                if reply.aa && reply.rcode == Rcode::NxDomain {
                    return Err(ResolveError::NxDomain(qname));
                }
                if reply.is_authoritative_answer() {
                    // Chase at most a few CNAME hops.
                    if rtype != RecordType::Cname {
                        if let Some(RecordData::Cname(target)) =
                            reply.answers.first().map(|r| &r.data)
                        {
                            if chased < MAX_CNAME_CHASE {
                                chased += 1;
                                qname = target.clone();
                                servers = self.roots.clone();
                                cut_level = 0;
                                progressed = true;
                                break;
                            }
                        }
                    }
                    let records = reply.answers.clone();
                    self.cache.lock().insert((qname.clone(), rtype), records.clone());
                    return Ok(ResolveResult { records, elapsed_ms, queries });
                }
                if reply.is_referral() {
                    let Some(cut) = deepest_cut(reply, &qname) else { continue };
                    if cut.level() <= cut_level {
                        // Sideways/upward referral: this server is not
                        // helping; ask the next one.
                        continue;
                    }
                    let next = self.referral_targets(reply, depth, &mut elapsed_ms, &mut queries);
                    if !next.is_empty() {
                        servers = next;
                        cut_level = cut.level();
                        progressed = true;
                        break;
                    }
                }
                // REFUSED/SERVFAIL/non-AA junk: try the next candidate.
            }
            if !progressed {
                return Err(ResolveError::Unreachable(qname));
            }
        }
        Err(ResolveError::TooManyReferrals(qname))
    }

    /// Extracts the next-hop addresses from a referral: glue where present,
    /// glueless resolution otherwise.
    fn referral_targets(
        &self,
        reply: &Message,
        depth: usize,
        elapsed_ms: &mut u32,
        queries: &mut u32,
    ) -> Vec<Ipv4Addr> {
        let mut next = Vec::new();
        for target in reply.authority_ns_targets() {
            let glue: Vec<Ipv4Addr> = reply
                .additional
                .iter()
                .filter(|rr| rr.name == *target)
                .filter_map(|rr| rr.data.as_a())
                .collect();
            if glue.is_empty() {
                if let Ok(r) = self.resolve_inner(target, RecordType::A, depth + 1) {
                    *elapsed_ms = elapsed_ms.saturating_add(r.elapsed_ms);
                    *queries += r.queries;
                    next.extend(r.addresses());
                }
            } else {
                next.extend(glue);
            }
        }
        next
    }
}

/// The deepest authority-section NS owner enclosing `qname` — the zone
/// cut a referral points at.
fn deepest_cut(reply: &Message, qname: &DomainName) -> Option<DomainName> {
    reply
        .authority
        .iter()
        .filter(|rr| rr.rtype() == RecordType::Ns && qname.is_within(&rr.name))
        .map(|rr| rr.name.clone())
        .max_by_key(DomainName::level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AuthoritativeServer, ServerBehavior};
    use govdns_model::Zone;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    /// Builds a three-level hierarchy: root → zz → gov.zz, with a web host
    /// inside gov.zz and a glueless out-of-bailiwick nameserver case.
    fn test_network() -> SimNetwork {
        let mut net = SimNetwork::new(5);

        let mut root = Zone::new(DomainName::root());
        root.add_ns(DomainName::root(), n("a.root.example"));
        root.add_glue(n("a.root.example"), Ipv4Addr::new(10, 0, 0, 1));
        root.add_ns(n("zz"), n("ns1.nic.zz"));
        root.add_glue(n("ns1.nic.zz"), Ipv4Addr::new(10, 1, 0, 1));
        root.add_ns(n("example"), n("ns1.example"));
        root.add_glue(n("ns1.example"), Ipv4Addr::new(10, 3, 0, 1));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 0, 0, 1), ServerBehavior::Responsive)
                .with_zone(root),
        );

        let mut tld = Zone::new(n("zz"));
        tld.add_ns(n("zz"), n("ns1.nic.zz"));
        tld.add_a(n("ns1.nic.zz"), Ipv4Addr::new(10, 1, 0, 1));
        // Delegation with glue.
        tld.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        tld.add_glue(n("ns1.gov.zz"), Ipv4Addr::new(10, 2, 0, 1));
        // Glueless delegation to an out-of-bailiwick server name.
        tld.add_ns(n("glueless.zz"), n("ns1.example"));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 1, 0, 1), ServerBehavior::Responsive)
                .with_zone(tld),
        );

        let mut gov = Zone::new(n("gov.zz"));
        gov.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        gov.add_a(n("ns1.gov.zz"), Ipv4Addr::new(10, 2, 0, 1));
        gov.add_a(n("www.gov.zz"), Ipv4Addr::new(10, 2, 0, 80));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 2, 0, 1), ServerBehavior::Responsive)
                .with_zone(gov),
        );

        let mut example = Zone::new(n("example"));
        example.add_ns(n("example"), n("ns1.example"));
        example.add_a(n("ns1.example"), Ipv4Addr::new(10, 3, 0, 1));
        let mut glueless = Zone::new(n("glueless.zz"));
        glueless.add_ns(n("glueless.zz"), n("ns1.example"));
        glueless.add_a(n("www.glueless.zz"), Ipv4Addr::new(10, 3, 0, 80));
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(10, 3, 0, 1), ServerBehavior::Responsive)
                .with_zone(example)
                .with_zone(glueless),
        );

        net
    }

    fn resolver(net: &SimNetwork) -> StubResolver<'_> {
        StubResolver::new(net, vec![Ipv4Addr::new(10, 0, 0, 1)])
    }

    #[test]
    fn resolves_through_two_referrals() {
        let net = test_network();
        let r = resolver(&net);
        let addrs = r.resolve_a(&n("www.gov.zz")).unwrap();
        assert_eq!(addrs, vec![Ipv4Addr::new(10, 2, 0, 80)]);
    }

    #[test]
    fn glueless_delegation_needs_a_side_resolution() {
        let net = test_network();
        let r = resolver(&net);
        let addrs = r.resolve_a(&n("www.glueless.zz")).unwrap();
        assert_eq!(addrs, vec![Ipv4Addr::new(10, 3, 0, 80)]);
    }

    #[test]
    fn nxdomain_is_reported() {
        let net = test_network();
        let r = resolver(&net);
        assert!(matches!(r.resolve_a(&n("missing.gov.zz")), Err(ResolveError::NxDomain(_))));
    }

    #[test]
    fn cache_short_circuits_repeat_queries() {
        let net = test_network();
        let r = resolver(&net);
        let first = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(first.queries > 0);
        let second = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert_eq!(second.queries, 0);
        assert_eq!(second.records, first.records);
    }

    #[test]
    fn exported_cache_restores_warmth_in_a_fresh_resolver() {
        let net = test_network();
        let r = resolver(&net);
        r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        let exported = r.export_cache();
        assert!(!exported.is_empty());
        assert_eq!(exported, r.export_cache(), "export order is stable");

        let fresh = resolver(&net);
        fresh.import_cache(exported);
        let hit = fresh.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert_eq!(hit.queries, 0, "imported cache serves without queries");
        assert_eq!(hit.addresses(), vec![Ipv4Addr::new(10, 2, 0, 80)]);
    }

    #[test]
    fn unreachable_when_all_roots_dead() {
        let net = SimNetwork::new(1);
        let r = StubResolver::new(&net, vec![Ipv4Addr::new(10, 9, 9, 9)]);
        assert!(matches!(r.resolve_a(&n("www.gov.zz")), Err(ResolveError::Unreachable(_))));
    }

    #[test]
    fn elapsed_time_accumulates() {
        let net = test_network();
        let r = resolver(&net);
        let res = r.resolve(&n("www.gov.zz"), RecordType::A).unwrap();
        assert!(res.elapsed_ms >= net.latency().base_ms * res.queries);
    }
}
