use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// A deterministic per-destination latency model.
///
/// Latency is `base + spread(dst)` where the spread is a stable hash of the
/// destination address — so repeated queries to the same server observe the
/// same round-trip time, while the population of servers spans a realistic
/// span. The measurement pipeline sums these to report per-domain probe
/// cost; the paper notes defective delegations inflate resolution latency,
/// and this model makes that observable in the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Minimum round-trip time, milliseconds.
    pub base_ms: u32,
    /// Maximum extra per-destination delay, milliseconds.
    pub spread_ms: u32,
    /// Time a querier waits before declaring a timeout, milliseconds.
    pub timeout_ms: u32,
}

impl LatencyModel {
    /// A model with typical wide-area parameters (10–250 ms RTT, 3 s
    /// timeout).
    pub fn wide_area() -> Self {
        LatencyModel { base_ms: 10, spread_ms: 240, timeout_ms: 3000 }
    }

    /// Round-trip time to `dst`, milliseconds. Deterministic per address.
    pub fn rtt_ms(&self, dst: Ipv4Addr) -> u32 {
        if self.spread_ms == 0 {
            return self.base_ms;
        }
        self.base_ms + ((crate::addr::mix(u64::from(u32::from(dst))) as u32) % self.spread_ms)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::wide_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_destination() {
        let m = LatencyModel::wide_area();
        let dst = Ipv4Addr::new(203, 0, 113, 1);
        assert_eq!(m.rtt_ms(dst), m.rtt_ms(dst));
    }

    #[test]
    fn stays_within_bounds() {
        let m = LatencyModel::wide_area();
        for i in 0..1000u32 {
            let rtt = m.rtt_ms(Ipv4Addr::from(i * 7919));
            assert!(rtt >= m.base_ms && rtt < m.base_ms + m.spread_ms);
        }
    }

    #[test]
    fn varies_across_destinations() {
        let m = LatencyModel::wide_area();
        let a = m.rtt_ms(Ipv4Addr::new(192, 0, 2, 1));
        let b = m.rtt_ms(Ipv4Addr::new(198, 51, 100, 1));
        let c = m.rtt_ms(Ipv4Addr::new(203, 0, 113, 1));
        assert!(a != b || b != c, "spread should differentiate destinations");
    }

    #[test]
    fn zero_spread_is_constant() {
        let m = LatencyModel { base_ms: 5, spread_ms: 0, timeout_ms: 100 };
        assert_eq!(m.rtt_ms(Ipv4Addr::new(1, 2, 3, 4)), 5);
    }
}
