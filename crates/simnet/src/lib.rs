//! # govdns-simnet
//!
//! A deterministic, in-memory internet of authoritative DNS servers — the
//! substrate the study's active measurements run against.
//!
//! The paper probed the real Internet from a university vantage point; this
//! crate substitutes a simulated one that exhibits every behaviour the
//! paper's pipeline must cope with:
//!
//! * [`ServerBehavior::Responsive`] servers answering from real [`Zone`]s
//!   with authoritative answers and referrals,
//! * [`ServerBehavior::Unresponsive`] hosts (query timeouts — the raw
//!   material of *fully* and *partially* defective delegations),
//! * [`ServerBehavior::Lame`] servers that are reachable but not
//!   authoritative (REFUSED / SERVFAIL / upward referrals),
//! * [`ServerBehavior::Parking`] services that answer *everything* and
//!   redirect traffic to themselves (the dangling-NS hijack scenario of
//!   §IV-D),
//! * the relative-label truncation bug (`ns` instead of `ns.example.com`)
//!   that the paper traces to trailing-dot typos in zone files.
//!
//! [`SimNetwork`] routes queries by IPv4 address with a latency model,
//! probabilistic loss, and wire-format byte accounting. [`StubResolver`]
//! provides iterative resolution from the simulated root, which the
//! measurement client uses to locate parent-zone nameservers.
//!
//! The [`AsnDb`] maps the simulated address plan to autonomous systems,
//! standing in for MaxMind's GeoIP2 ASN database in the diversity analysis
//! (Table I).
//!
//! [`Zone`]: govdns_model::Zone

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod asn;
mod fault;
mod latency;
mod network;
mod resolver;
mod server;

pub use addr::{dst_shard, prefix24, Prefix24, DST_SHARDS};
pub use asn::{Asn, AsnDb};
pub use fault::{
    ChaosProfile, FaultDecision, FaultKind, FaultPlan, FaultProfile, FaultRule, FaultScope,
    FaultStats,
};
pub use latency::LatencyModel;
pub use network::{DeliveryOutcome, DeliveryTrace, SimNetwork, TrafficStats};
pub use resolver::{CacheEntry, ResolveError, ResolveResult, StubResolver};
pub use server::{AuthoritativeServer, LameMode, ServerBehavior};
