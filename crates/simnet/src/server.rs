use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use govdns_model::{
    DomainName, Message, Rcode, RecordData, RecordType, ResourceRecord, RrSet, Zone, ZoneLookup,
};

/// How a lame (reachable but non-authoritative) server misbehaves.
///
/// The paper's *defective delegations* (§IV-C) cover servers that exist but
/// "do not answer queries for that zone"; these are the concrete ways that
/// happens in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LameMode {
    /// Replies `REFUSED` — the classic lame response.
    Refused,
    /// Replies `SERVFAIL`.
    ServFail,
    /// Replies with a non-authoritative referral to the root ("upward
    /// referral"), an infamous BIND misconfiguration symptom.
    UpwardReferral,
    /// Replies `NOERROR` with no data and no `aa` bit.
    EmptyNonAuth,
}

/// What a simulated authoritative server does with queries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServerBehavior {
    /// Answers correctly from its configured zones.
    Responsive,
    /// Answers from its zones, but NS rdata is truncated to the first
    /// label — the trailing-dot zone-file typo the paper observes (`ns`
    /// leaking instead of `ns.example.com`).
    RelativeNameBug,
    /// Never replies; queries time out. Stale NS records pointing at
    /// decommissioned hosts look exactly like this.
    Unresponsive,
    /// Reachable but not serving the queried zones.
    Lame(LameMode),
    /// A parking service: authoritatively answers *any* question,
    /// directing traffic to itself — the §IV-D dangling-NS hijack
    /// scenario, where an expired provider domain is re-registered.
    Parking {
        /// Address every A query is answered with.
        web_ip: Ipv4Addr,
        /// Nameserver names every NS query is answered with.
        ns_names: Vec<DomainName>,
    },
}

/// A simulated authoritative nameserver bound to one IPv4 address.
///
/// Zones are shared `Arc`s: a third-party provider's server farm hosts the
/// same customer zone on every replica, and the generated worlds contain
/// providers serving tens of thousands of zones. An origin index keeps
/// per-query zone selection at `O(qname depth)`.
///
/// ```
/// use govdns_simnet::{AuthoritativeServer, ServerBehavior};
/// use govdns_model::{Zone, Message, RecordType};
///
/// let mut zone = Zone::new("gov.zz".parse()?);
/// zone.add_ns("gov.zz".parse()?, "ns1.gov.zz".parse()?);
/// let server = AuthoritativeServer::new("192.0.2.1".parse().unwrap(), ServerBehavior::Responsive)
///     .with_zone(zone);
///
/// let q = Message::query(1, "gov.zz".parse()?, RecordType::Ns);
/// let r = server.handle(&q).expect("responsive server replies");
/// assert!(r.is_authoritative_answer());
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct AuthoritativeServer {
    addr: Ipv4Addr,
    behavior: ServerBehavior,
    zones: Vec<Arc<Zone>>,
    by_origin: HashMap<DomainName, usize>,
}

impl AuthoritativeServer {
    /// Creates a server with no zones.
    pub fn new(addr: Ipv4Addr, behavior: ServerBehavior) -> Self {
        AuthoritativeServer { addr, behavior, zones: Vec::new(), by_origin: HashMap::new() }
    }

    /// Adds a zone (builder style).
    #[must_use]
    pub fn with_zone(mut self, zone: Zone) -> Self {
        self.add_zone(Arc::new(zone));
        self
    }

    /// Adds a (shared) zone the server is authoritative for. A later zone
    /// with the same origin replaces the earlier one in the index.
    pub fn add_zone(&mut self, zone: Arc<Zone>) {
        let origin = zone.origin().clone();
        self.zones.push(zone);
        self.by_origin.insert(origin, self.zones.len() - 1);
    }

    /// The server's address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addr
    }

    /// The configured behavior.
    pub fn behavior(&self) -> &ServerBehavior {
        &self.behavior
    }

    /// The zones served (meaningful for responsive behaviors).
    pub fn zones(&self) -> &[Arc<Zone>] {
        &self.zones
    }

    /// Handles a query. `None` models a timeout (no packet ever returns).
    pub fn handle(&self, query: &Message) -> Option<Message> {
        match &self.behavior {
            ServerBehavior::Unresponsive => None,
            ServerBehavior::Lame(mode) => Some(self.lame_response(query, *mode)),
            ServerBehavior::Parking { web_ip, ns_names } => {
                Some(self.parking_response(query, *web_ip, ns_names))
            }
            ServerBehavior::Responsive => Some(self.zone_response(query, false)),
            ServerBehavior::RelativeNameBug => Some(self.zone_response(query, true)),
        }
    }

    fn lame_response(&self, query: &Message, mode: LameMode) -> Message {
        match mode {
            LameMode::Refused => query.response().with_rcode(Rcode::Refused),
            LameMode::ServFail => query.response().with_rcode(Rcode::ServFail),
            LameMode::EmptyNonAuth => query.response(),
            LameMode::UpwardReferral => {
                let mut roots = RrSet::new(DomainName::root(), RecordType::Ns, 86_400);
                roots.push(RecordData::Ns("a.root-servers.example".parse().expect("static name")));
                query.response().with_authority(&roots)
            }
        }
    }

    fn parking_response(
        &self,
        query: &Message,
        web_ip: Ipv4Addr,
        ns_names: &[DomainName],
    ) -> Message {
        let q = &query.question;
        let mut r = query.response().authoritative();
        match q.rtype {
            RecordType::Ns => {
                for ns in ns_names {
                    r.answers.push(ResourceRecord::new(
                        q.name.clone(),
                        300,
                        RecordData::Ns(ns.clone()),
                    ));
                }
            }
            RecordType::Aaaa
            | RecordType::Txt
            | RecordType::Soa
            | RecordType::Ptr
            | RecordType::Cname => {
                // Parking services typically answer A for anything and
                // NODATA elsewhere; keep the authoritative bit either way.
            }
            RecordType::A => {
                r.answers.push(ResourceRecord::new(q.name.clone(), 300, RecordData::A(web_ip)));
            }
        }
        r
    }

    /// Picks the zone with the longest origin enclosing `name`.
    fn best_zone(&self, name: &DomainName) -> Option<&Zone> {
        for anc in name.ancestors() {
            if let Some(&idx) = self.by_origin.get(&anc) {
                return Some(&self.zones[idx]);
            }
        }
        None
    }

    fn zone_response(&self, query: &Message, relative_bug: bool) -> Message {
        let q = &query.question;
        let Some(zone) = self.best_zone(&q.name) else {
            // Reachable, but not authoritative for anything enclosing the
            // qname: exactly what a lame delegation target does.
            return query.response().with_rcode(Rcode::Refused);
        };
        match zone.lookup(&q.name, q.rtype) {
            ZoneLookup::Answer(set) => {
                let mut r = query.response().authoritative().with_answer(&set);
                if relative_bug {
                    mangle_ns_targets(&mut r);
                }
                // Attach in-bailiwick glue for NS answers so clients can
                // chase targets without extra round trips.
                if set.rtype() == RecordType::Ns {
                    for target in set.ns_targets() {
                        if let Some(a) = zone.rrset(target, RecordType::A) {
                            for rr in a.to_records() {
                                r = r.with_additional(rr);
                            }
                        }
                    }
                }
                r
            }
            ZoneLookup::Referral { ns, glue, .. } => {
                let mut r = query.response().with_authority(&ns);
                for (name, addr) in glue {
                    r = r.with_additional(ResourceRecord::new(name, ns.ttl(), RecordData::A(addr)));
                }
                if relative_bug {
                    mangle_ns_targets(&mut r);
                }
                r
            }
            ZoneLookup::NoData => {
                let mut r = query.response().authoritative();
                if let Some(soa) = zone.rrset(zone.origin(), RecordType::Soa) {
                    r = r.with_authority(soa);
                }
                r
            }
            ZoneLookup::NxDomain => {
                let mut r = query.response().authoritative().with_rcode(Rcode::NxDomain);
                if let Some(soa) = zone.rrset(zone.origin(), RecordType::Soa) {
                    r = r.with_authority(soa);
                }
                r
            }
            ZoneLookup::OutOfZone => query.response().with_rcode(Rcode::Refused),
        }
    }
}

/// Truncates every NS target in the message to its leading label,
/// reproducing the relative-name zone-file typo.
fn mangle_ns_targets(msg: &mut Message) {
    for rr in msg.answers.iter_mut().chain(msg.authority.iter_mut()) {
        if let RecordData::Ns(target) = &rr.data {
            if target.level() > 1 {
                let first = target.labels()[0].as_str().to_owned();
                rr.data =
                    RecordData::Ns(first.parse().expect("a single valid label parses as a name"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::Soa;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn gov_zone() -> Zone {
        let mut z = Zone::new(n("gov.zz"));
        z.set_soa(Soa::new(n("ns1.gov.zz"), n("hostmaster.gov.zz")));
        z.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        z.add_a(n("ns1.gov.zz"), Ipv4Addr::new(192, 0, 2, 1));
        z.add_ns(n("portal.gov.zz"), n("ns1.portal.gov.zz"));
        z.add_glue(n("ns1.portal.gov.zz"), Ipv4Addr::new(198, 51, 100, 1));
        z
    }

    fn responsive() -> AuthoritativeServer {
        AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
            .with_zone(gov_zone())
    }

    #[test]
    fn answers_apex_ns_with_glue() {
        let r = responsive().handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).unwrap();
        assert!(r.is_authoritative_answer());
        assert_eq!(r.answer_ns_targets(), vec![&n("ns1.gov.zz")]);
        assert_eq!(r.additional.len(), 1);
    }

    #[test]
    fn referral_below_cut_carries_glue() {
        let r =
            responsive().handle(&Message::query(1, n("portal.gov.zz"), RecordType::Ns)).unwrap();
        assert!(r.is_referral());
        assert_eq!(r.authority_ns_targets(), vec![&n("ns1.portal.gov.zz")]);
        assert_eq!(r.additional[0].data.as_a(), Some(Ipv4Addr::new(198, 51, 100, 1)));
    }

    #[test]
    fn nxdomain_carries_soa() {
        let r = responsive().handle(&Message::query(1, n("absent.gov.zz"), RecordType::A)).unwrap();
        assert_eq!(r.rcode, Rcode::NxDomain);
        assert!(r.aa);
        assert_eq!(r.authority.len(), 1);
        assert_eq!(r.authority[0].rtype(), RecordType::Soa);
    }

    #[test]
    fn off_zone_query_is_refused() {
        let r = responsive().handle(&Message::query(1, n("other.example"), RecordType::A)).unwrap();
        assert_eq!(r.rcode, Rcode::Refused);
    }

    #[test]
    fn unresponsive_times_out() {
        let s = AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 9), ServerBehavior::Unresponsive);
        assert!(s.handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).is_none());
    }

    #[test]
    fn lame_modes() {
        for (mode, want) in [
            (LameMode::Refused, Rcode::Refused),
            (LameMode::ServFail, Rcode::ServFail),
            (LameMode::EmptyNonAuth, Rcode::NoError),
        ] {
            let s =
                AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 9), ServerBehavior::Lame(mode));
            let r = s.handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).unwrap();
            assert_eq!(r.rcode, want);
            assert!(!r.is_authoritative_answer());
        }
        let s = AuthoritativeServer::new(
            Ipv4Addr::new(192, 0, 2, 9),
            ServerBehavior::Lame(LameMode::UpwardReferral),
        );
        let r = s.handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).unwrap();
        assert!(r.is_referral());
        assert_eq!(r.authority[0].name, DomainName::root());
    }

    #[test]
    fn parking_answers_everything_authoritatively() {
        let s = AuthoritativeServer::new(
            Ipv4Addr::new(203, 0, 113, 1),
            ServerBehavior::Parking {
                web_ip: Ipv4Addr::new(203, 0, 113, 80),
                ns_names: vec![n("ns1.parking.example"), n("ns2.parking.example")],
            },
        );
        let a = s.handle(&Message::query(1, n("whatever.gov.zz"), RecordType::A)).unwrap();
        assert!(a.is_authoritative_answer());
        assert_eq!(a.answers[0].data.as_a(), Some(Ipv4Addr::new(203, 0, 113, 80)));
        let ns = s.handle(&Message::query(2, n("whatever.gov.zz"), RecordType::Ns)).unwrap();
        assert_eq!(ns.answer_ns_targets().len(), 2);
    }

    #[test]
    fn relative_bug_truncates_ns_targets() {
        let s =
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::RelativeNameBug)
                .with_zone(gov_zone());
        let r = s.handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).unwrap();
        assert_eq!(r.answer_ns_targets(), vec![&n("ns1")]);
    }

    #[test]
    fn longest_origin_zone_wins() {
        let mut parent = Zone::new(n("zz"));
        parent.add_ns(n("zz"), n("ns1.zz"));
        parent.add_ns(n("gov.zz"), n("stale.example"));
        let s = AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
            .with_zone(parent)
            .with_zone(gov_zone());
        // Authoritative data from the child zone, not a referral from the
        // parent zone, because the server also serves the child.
        let r = s.handle(&Message::query(1, n("gov.zz"), RecordType::Ns)).unwrap();
        assert!(r.is_authoritative_answer());
        assert_eq!(r.answer_ns_targets(), vec![&n("ns1.gov.zz")]);
    }
}
