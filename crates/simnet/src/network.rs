use std::collections::HashMap;
use std::net::Ipv4Addr;

use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use govdns_model::{wire, Message, Rcode};
use govdns_telemetry::{Counter, Histogram, Registry};

use crate::{AuthoritativeServer, FaultKind, FaultPlan, FaultStats, LatencyModel};

/// Cached telemetry handles for the per-query hot path: interned once
/// at attach time so `deliver` touches bare atomics only.
#[derive(Debug)]
struct NetSink {
    queries: Counter,
    replies: Counter,
    timeouts: Counter,
    lost: Counter,
    rtt_ms: Histogram,
    query_bytes: Histogram,
    response_bytes: Histogram,
    fault_flap: Counter,
    fault_loss: Counter,
    fault_refused: Counter,
    fault_truncated: Counter,
    fault_delayed: Counter,
}

impl NetSink {
    fn new(registry: &Registry) -> Self {
        NetSink {
            queries: registry.counter("net.queries"),
            replies: registry.counter("net.replies"),
            timeouts: registry.counter("net.timeouts"),
            lost: registry.counter("net.lost"),
            rtt_ms: registry.histogram_latency_ms("net.rtt_ms"),
            query_bytes: registry.histogram_bytes("net.query_bytes"),
            response_bytes: registry.histogram_bytes("net.response_bytes"),
            fault_flap: registry.counter("fault.flap_timeouts"),
            fault_loss: registry.counter("fault.losses"),
            fault_refused: registry.counter("fault.refused"),
            fault_truncated: registry.counter("fault.truncated"),
            fault_delayed: registry.counter("fault.delayed"),
        }
    }

    fn count_fault(&self, kind: FaultKind) {
        match kind {
            FaultKind::Flap => self.fault_flap.inc(),
            FaultKind::Loss => self.fault_loss.inc(),
            FaultKind::Refused => self.fault_refused.inc(),
            FaultKind::Truncated => self.fault_truncated.inc(),
            FaultKind::Delayed => self.fault_delayed.inc(),
        }
    }
}

/// The result of sending one query into the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// A response arrived after `rtt_ms`.
    Reply {
        /// The response message.
        msg: Message,
        /// Observed round-trip time, milliseconds.
        rtt_ms: u32,
    },
    /// No response; the querier gave up after `waited_ms`.
    Timeout {
        /// Time wasted waiting, milliseconds.
        waited_ms: u32,
    },
}

impl DeliveryOutcome {
    /// The response, if one arrived.
    pub fn reply(&self) -> Option<&Message> {
        match self {
            DeliveryOutcome::Reply { msg, .. } => Some(msg),
            DeliveryOutcome::Timeout { .. } => None,
        }
    }

    /// Time the exchange cost the querier, milliseconds.
    pub fn elapsed_ms(&self) -> u32 {
        match self {
            DeliveryOutcome::Reply { rtt_ms, .. } => *rtt_ms,
            DeliveryOutcome::Timeout { waited_ms } => *waited_ms,
        }
    }
}

/// Aggregate traffic counters, kept in wire-format bytes so the simulated
/// measurement campaign's footprint is comparable to a real one (the
/// paper's ethics section is about exactly this load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Queries sent into the network.
    pub queries_sent: u64,
    /// Responses received.
    pub responses_received: u64,
    /// Exchanges that ended in a timeout.
    pub timeouts: u64,
    /// Query bytes on the wire.
    pub bytes_sent: u64,
    /// Response bytes on the wire.
    pub bytes_received: u64,
    /// Sum of round-trip/wait times, milliseconds.
    pub total_wait_ms: u64,
}

/// The simulated internet: a routing table from IPv4 addresses to
/// authoritative servers, plus latency, loss, and traffic accounting.
///
/// `SimNetwork` is `Sync`; the measurement runner queries it from many
/// threads at once, as the real campaign parallelized its lookups.
#[derive(Debug)]
pub struct SimNetwork {
    servers: HashMap<Ipv4Addr, AuthoritativeServer>,
    latency: LatencyModel,
    loss_rate: f64,
    rng: Mutex<SmallRng>,
    stats: Mutex<TrafficStats>,
    per_destination: Mutex<HashMap<Ipv4Addr, u64>>,
    telemetry: RwLock<Option<NetSink>>,
    faults: RwLock<Option<FaultPlan>>,
    fault_stats: Mutex<FaultStats>,
}

impl SimNetwork {
    /// Creates an empty network with no loss and wide-area latency.
    pub fn new(seed: u64) -> Self {
        SimNetwork {
            servers: HashMap::new(),
            latency: LatencyModel::default(),
            loss_rate: 0.0,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            stats: Mutex::new(TrafficStats::default()),
            per_destination: Mutex::new(HashMap::new()),
            telemetry: RwLock::new(None),
            faults: RwLock::new(None),
            fault_stats: Mutex::new(FaultStats::default()),
        }
    }

    /// Starts mirroring per-query traffic into `registry`: counters
    /// `net.{queries,replies,timeouts,lost}`, the `net.rtt_ms` latency
    /// histogram, and `net.{query,response}_bytes` size histograms.
    ///
    /// Takes `&self` because the runner only ever holds a shared
    /// reference to the network. Recording never touches the network
    /// RNG, so attaching telemetry cannot perturb simulated outcomes.
    pub fn attach_telemetry(&self, registry: &Registry) {
        *self.telemetry.write() = Some(NetSink::new(registry));
    }

    /// Installs a fault plan; every subsequent delivery consults it.
    /// `None` (or an empty plan) restores clean delivery.
    ///
    /// Takes `&self` for the same reason as [`attach_telemetry`]: by the
    /// time the runner decides to inject chaos it only holds a shared
    /// reference. Fault decisions never touch the network RNG, so a plan
    /// cannot perturb the baseline loss stream.
    ///
    /// [`attach_telemetry`]: SimNetwork::attach_telemetry
    pub fn install_faults(&self, plan: Option<FaultPlan>) {
        *self.faults.write() = plan.filter(|p| !p.is_empty());
    }

    /// Sets a fault plan (builder style); see [`install_faults`].
    ///
    /// [`install_faults`]: SimNetwork::install_faults
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.install_faults(Some(plan));
        self
    }

    /// A snapshot of the injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        *self.fault_stats.lock()
    }

    /// Sets the latency model (builder style).
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the packet-loss probability per exchange, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate {rate} outside [0,1]");
        self.loss_rate = rate;
        self
    }

    /// Registers a server at its address.
    ///
    /// # Panics
    ///
    /// Panics if the address is already taken — address plans are
    /// generated, so a collision is a construction bug.
    pub fn add_server(&mut self, server: AuthoritativeServer) {
        let addr = server.addr();
        let prev = self.servers.insert(addr, server);
        assert!(prev.is_none(), "duplicate server at {addr}");
    }

    /// The server bound to `addr`, if any.
    pub fn server(&self, addr: Ipv4Addr) -> Option<&AuthoritativeServer> {
        self.servers.get(&addr)
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Iterates over all registered servers.
    pub fn servers(&self) -> impl Iterator<Item = &AuthoritativeServer> {
        self.servers.values()
    }

    /// The configured latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Sends `query` to `dst` and waits for the outcome.
    ///
    /// Unrouted addresses and [`ServerBehavior::Unresponsive`] servers both
    /// produce a timeout — from the vantage point they are
    /// indistinguishable, which is exactly the ambiguity the paper's
    /// second-round retries exist to resolve.
    ///
    /// [`ServerBehavior::Unresponsive`]: crate::ServerBehavior::Unresponsive
    pub fn deliver(&self, dst: Ipv4Addr, query: &Message) -> DeliveryOutcome {
        self.deliver_attempt(dst, query, 0)
    }

    /// [`deliver`], with the client's cumulative attempt number for this
    /// `(dst, qname)` pair so the installed [`FaultPlan`] (if any) can
    /// model transient faults that recover under retry pressure.
    ///
    /// [`deliver`]: SimNetwork::deliver
    pub fn deliver_attempt(&self, dst: Ipv4Addr, query: &Message, attempt: u32) -> DeliveryOutcome {
        let qbytes = wire::encoded_len(query) as u64;
        {
            let mut stats = self.stats.lock();
            stats.queries_sent += 1;
            stats.bytes_sent += qbytes;
        }
        let dst_queries_so_far = {
            let mut map = self.per_destination.lock();
            let slot = map.entry(dst).or_insert(0);
            *slot += 1;
            *slot - 1
        };
        let lost = self.loss_rate > 0.0 && self.rng.lock().gen_bool(self.loss_rate);
        let fault = match &*self.faults.read() {
            Some(plan) => plan.decide(dst, &query.question.name, attempt, dst_queries_so_far),
            None => Default::default(),
        };
        let sink = self.telemetry.read();
        let count_fault = |kind: FaultKind| {
            self.fault_stats.lock().count(kind);
            if let Some(sink) = &*sink {
                sink.count_fault(kind);
            }
        };
        if fault.extra_delay_ms > 0 {
            count_fault(FaultKind::Delayed);
        }
        let reply = if lost || fault.drop.is_some() {
            if let Some(kind) = fault.drop {
                count_fault(kind);
            }
            None
        } else if fault.refuse && self.servers.contains_key(&dst) {
            count_fault(FaultKind::Refused);
            Some(query.response().with_rcode(Rcode::Refused))
        } else {
            let mut msg = self.servers.get(&dst).and_then(|s| s.handle(query));
            if fault.truncate {
                if let Some(msg) = &mut msg {
                    count_fault(FaultKind::Truncated);
                    msg.truncate();
                }
            }
            msg
        };
        if let Some(sink) = &*sink {
            sink.queries.inc();
            sink.query_bytes.record(qbytes as f64);
            if lost {
                sink.lost.inc();
            }
        }
        match reply {
            Some(msg) => {
                let rtt_ms = self.latency.rtt_ms(dst).saturating_add(fault.extra_delay_ms);
                let rbytes = wire::encoded_len(&msg) as u64;
                if let Some(sink) = &*sink {
                    sink.replies.inc();
                    sink.rtt_ms.record(f64::from(rtt_ms));
                    sink.response_bytes.record(rbytes as f64);
                }
                let mut stats = self.stats.lock();
                stats.responses_received += 1;
                stats.bytes_received += rbytes;
                stats.total_wait_ms += u64::from(rtt_ms);
                DeliveryOutcome::Reply { msg, rtt_ms }
            }
            None => {
                let waited_ms = self.latency.timeout_ms.saturating_add(fault.extra_delay_ms);
                if let Some(sink) = &*sink {
                    sink.timeouts.inc();
                    sink.rtt_ms.record(f64::from(waited_ms));
                }
                let mut stats = self.stats.lock();
                stats.timeouts += 1;
                stats.total_wait_ms += u64::from(waited_ms);
                DeliveryOutcome::Timeout { waited_ms }
            }
        }
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        *self.stats.lock()
    }

    /// Every destination's cumulative query count, sorted by address —
    /// the full accounting behind [`busiest_destinations`], exported in
    /// a stable order so a campaign journal can checkpoint it.
    ///
    /// [`busiest_destinations`]: SimNetwork::busiest_destinations
    pub fn per_destination_snapshot(&self) -> Vec<(Ipv4Addr, u64)> {
        let map = self.per_destination.lock();
        let mut all: Vec<(Ipv4Addr, u64)> = map.iter().map(|(&a, &c)| (a, c)).collect();
        all.sort_by_key(|&(a, _)| a);
        all
    }

    /// Overwrites the traffic, fault, and per-destination accounting
    /// with a checkpointed snapshot — the resume path of a journaled
    /// campaign. Overwrite (not add) semantics: the checkpoint already
    /// contains whatever this network accrued before it was taken, so a
    /// resumed run's own pre-probe traffic (seed selection, discovery)
    /// is deliberately replaced, not double-counted.
    ///
    /// Per-destination counts are load-bearing beyond reporting: the
    /// installed [`FaultPlan`]'s `RefusedBurst` rules key off them, so
    /// restoring them is what keeps a resumed run's fault stream
    /// identical to an uninterrupted one.
    pub fn restore_accounting(
        &self,
        stats: TrafficStats,
        faults: FaultStats,
        per_destination: Vec<(Ipv4Addr, u64)>,
    ) {
        *self.stats.lock() = stats;
        *self.fault_stats.lock() = faults;
        *self.per_destination.lock() = per_destination.into_iter().collect();
    }

    /// The `n` destinations that received the most queries — the load
    /// concentration the campaign's rate limiting exists to bound (§III-D
    /// ethics).
    pub fn busiest_destinations(&self, n: usize) -> Vec<(Ipv4Addr, u64)> {
        let map = self.per_destination.lock();
        let mut all: Vec<(Ipv4Addr, u64)> = map.iter().map(|(&a, &c)| (a, c)).collect();
        all.sort_by_key(|&(a, c)| (std::cmp::Reverse(c), a));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FaultProfile, FaultScope, ServerBehavior};
    use govdns_model::{DomainName, RecordType, Zone};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn network_with_one_zone() -> SimNetwork {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(7);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        net
    }

    #[test]
    fn routes_to_registered_server() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert!(out.reply().unwrap().is_authoritative_answer());
        assert!(out.elapsed_ms() >= net.latency().base_ms);
    }

    #[test]
    fn unrouted_address_times_out() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        assert!(out.reply().is_none());
        assert_eq!(out.elapsed_ms(), net.latency().timeout_ms);
    }

    #[test]
    fn accounting_tracks_bytes_and_counts() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        let s = net.stats();
        assert_eq!(s.queries_sent, 2);
        assert_eq!(s.responses_received, 1);
        assert_eq!(s.timeouts, 1);
        assert!(s.bytes_sent > 0 && s.bytes_received > s.bytes_sent / 2);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(7).with_loss_rate(1.0);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q).reply().is_none());
    }

    #[test]
    fn partial_loss_is_probabilistic() {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(42).with_loss_rate(0.5);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let replies = (0..200)
            .filter(|_| net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q).reply().is_some())
            .count();
        assert!((60..140).contains(&replies), "got {replies} replies out of 200");
    }

    #[test]
    #[should_panic(expected = "duplicate server")]
    fn rejects_address_collision() {
        let mut net = SimNetwork::new(1);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        net.add_server(AuthoritativeServer::new(a, ServerBehavior::Unresponsive));
        net.add_server(AuthoritativeServer::new(a, ServerBehavior::Unresponsive));
    }

    #[test]
    fn network_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SimNetwork>();
    }

    #[test]
    fn telemetry_mirrors_traffic_stats() {
        let net = network_with_one_zone();
        let registry = Registry::new();
        net.attach_telemetry(&registry);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net.queries"], 2);
        assert_eq!(snap.counters["net.replies"], 1);
        assert_eq!(snap.counters["net.timeouts"], 1);
        assert_eq!(snap.counters["net.lost"], 0);
        assert_eq!(snap.histograms["net.rtt_ms"].count, 2);
        assert_eq!(snap.histograms["net.query_bytes"].count, 2);
        assert_eq!(snap.histograms["net.response_bytes"].count, 1);
        let s = net.stats();
        assert_eq!(snap.counters["net.queries"], s.queries_sent);
        assert_eq!(snap.counters["net.replies"], s.responses_received);
    }

    #[test]
    fn telemetry_does_not_perturb_loss_outcomes() {
        let run = |attach: bool| {
            let mut zone = Zone::new(n("gov.zz"));
            zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
            let mut net = SimNetwork::new(42).with_loss_rate(0.5);
            net.add_server(
                AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                    .with_zone(zone),
            );
            if attach {
                net.attach_telemetry(&Registry::new());
            }
            let q = Message::query(1, n("gov.zz"), RecordType::Ns);
            (0..50)
                .map(|_| net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q).reply().is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn injected_flap_times_out_then_recovers() {
        let net = network_with_one_zone().with_faults(
            FaultPlan::new(1)
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 1.0, recover_after: 2 }),
        );
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver_attempt(dst, &q, 0).reply().is_none());
        assert!(net.deliver_attempt(dst, &q, 1).reply().is_none());
        let recovered = net.deliver_attempt(dst, &q, 2);
        assert!(recovered.reply().unwrap().is_authoritative_answer());
        assert_eq!(net.fault_stats().flap_timeouts, 2);
    }

    #[test]
    fn injected_refusal_needs_a_server_on_path() {
        let net = network_with_one_zone().with_faults(FaultPlan::new(1).with_rule(
            FaultScope::All,
            FaultProfile::RefusedBurst { after_queries: 0, rate: 1.0, recover_after: 99 },
        ));
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert_eq!(out.reply().unwrap().rcode, govdns_model::Rcode::Refused);
        // An unrouted address still times out: there is no limiter there.
        assert!(net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q).reply().is_none());
        assert_eq!(net.fault_stats().refused, 1);
    }

    #[test]
    fn injected_truncation_strips_sections_and_sets_tc() {
        let net =
            network_with_one_zone().with_faults(FaultPlan::new(1).with_rule(
                FaultScope::All,
                FaultProfile::Truncation { rate: 1.0, recover_after: 1 },
            ));
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let msg = net.deliver_attempt(dst, &q, 0).reply().unwrap().clone();
        assert!(msg.tc && msg.answers.is_empty());
        assert!(!msg.is_authoritative_answer());
        let retry = net.deliver_attempt(dst, &q, 1).reply().unwrap().clone();
        assert!(retry.is_authoritative_answer(), "retry gets the full answer");
    }

    #[test]
    fn fault_counters_mirror_into_telemetry() {
        let net = network_with_one_zone().with_faults(
            FaultPlan::new(1)
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 1.0, recover_after: 1 })
                .with_rule(
                    FaultScope::All,
                    FaultProfile::LatencySpike { rate: 1.0, extra_ms: 500 },
                ),
        );
        let registry = Registry::new();
        net.attach_telemetry(&registry);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert!(out.reply().is_none());
        assert!(out.elapsed_ms() >= net.latency().timeout_ms + 500, "spike delays the wait");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["fault.flap_timeouts"], 1);
        assert_eq!(snap.counters["fault.delayed"], 1);
        assert_eq!(snap.counters["fault.refused"], 0);
        assert_eq!(net.fault_stats().flap_timeouts, 1);
    }

    #[test]
    fn install_faults_swaps_plans_at_runtime() {
        let net = network_with_one_zone();
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver(dst, &q).reply().is_some());
        net.install_faults(Some(
            FaultPlan::new(1)
                .with_rule(FaultScope::Server(dst), FaultProfile::PacketLoss { rate: 1.0 }),
        ));
        assert!(net.deliver(dst, &q).reply().is_none());
        net.install_faults(None);
        assert!(net.deliver(dst, &q).reply().is_some());
    }

    #[test]
    fn accounting_snapshot_round_trips_through_restore() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        for _ in 0..3 {
            net.deliver(a, &q);
        }
        net.deliver(Ipv4Addr::new(203, 0, 113, 5), &q);
        let (stats, faults, per_dst) =
            (net.stats(), net.fault_stats(), net.per_destination_snapshot());
        assert_eq!(per_dst.iter().find(|&&(d, _)| d == a).unwrap().1, 3);

        // A fresh network with its own pre-restore traffic: restore
        // overwrites, so the checkpointed state wins exactly.
        let other = network_with_one_zone();
        other.deliver(a, &q);
        other.restore_accounting(stats, faults, per_dst.clone());
        assert_eq!(other.stats(), stats);
        assert_eq!(other.per_destination_snapshot(), per_dst);
        assert_eq!(other.busiest_destinations(1), vec![(a, 3)]);
    }

    #[test]
    fn busiest_destinations_orders_and_breaks_ties() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(203, 0, 113, 5);
        let c = Ipv4Addr::new(198, 51, 100, 9);
        // a: 3 queries, b: 1, c: 1 — b and c tie, lower address first.
        for _ in 0..3 {
            net.deliver(a, &q);
        }
        net.deliver(b, &q);
        net.deliver(c, &q);

        let top = net.busiest_destinations(3);
        assert_eq!(top, vec![(a, 3), (c, 1), (b, 1)]);

        // n larger than the number of destinations truncates gracefully.
        assert_eq!(net.busiest_destinations(10).len(), 3);
        // n smaller keeps only the busiest.
        assert_eq!(net.busiest_destinations(1), vec![(a, 3)]);
        assert!(net.busiest_destinations(0).is_empty());
    }
}
