use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use govdns_model::{wire, Message, Rcode};
use govdns_telemetry::{Counter, Histogram, Registry};

use crate::addr::{dst_shard, mix, DST_SHARDS};
use crate::{AuthoritativeServer, FaultDecision, FaultKind, FaultPlan, FaultStats, LatencyModel};

/// Cached telemetry handles for the per-query hot path: interned once
/// at attach time so `deliver` touches bare atomics only.
#[derive(Debug)]
struct NetSink {
    queries: Counter,
    replies: Counter,
    timeouts: Counter,
    lost: Counter,
    rtt_ms: Histogram,
    query_bytes: Histogram,
    response_bytes: Histogram,
    fault_flap: Counter,
    fault_loss: Counter,
    fault_refused: Counter,
    fault_truncated: Counter,
    fault_delayed: Counter,
    fault_outages: Counter,
}

impl NetSink {
    fn new(registry: &Registry) -> Self {
        NetSink {
            queries: registry.counter("net.queries"),
            replies: registry.counter("net.replies"),
            timeouts: registry.counter("net.timeouts"),
            lost: registry.counter("net.lost"),
            rtt_ms: registry.histogram_latency_ms("net.rtt_ms"),
            query_bytes: registry.histogram_bytes("net.query_bytes"),
            response_bytes: registry.histogram_bytes("net.response_bytes"),
            fault_flap: registry.counter("fault.flap_timeouts"),
            fault_loss: registry.counter("fault.losses"),
            fault_refused: registry.counter("fault.refused"),
            fault_truncated: registry.counter("fault.truncated"),
            fault_delayed: registry.counter("fault.delayed"),
            fault_outages: registry.counter("fault.outages"),
        }
    }

    fn count_fault(&self, kind: FaultKind) {
        match kind {
            FaultKind::Flap => self.fault_flap.inc(),
            FaultKind::Loss => self.fault_loss.inc(),
            FaultKind::Refused => self.fault_refused.inc(),
            FaultKind::Truncated => self.fault_truncated.inc(),
            FaultKind::Delayed => self.fault_delayed.inc(),
            FaultKind::Outage => self.fault_outages.inc(),
        }
    }
}

/// The result of sending one query into the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// A response arrived after `rtt_ms`.
    Reply {
        /// The response message.
        msg: Message,
        /// Observed round-trip time, milliseconds.
        rtt_ms: u32,
    },
    /// No response; the querier gave up after `waited_ms`.
    Timeout {
        /// Time wasted waiting, milliseconds.
        waited_ms: u32,
    },
}

impl DeliveryOutcome {
    /// The response, if one arrived.
    pub fn reply(&self) -> Option<&Message> {
        match self {
            DeliveryOutcome::Reply { msg, .. } => Some(msg),
            DeliveryOutcome::Timeout { .. } => None,
        }
    }

    /// Time the exchange cost the querier, milliseconds.
    pub fn elapsed_ms(&self) -> u32 {
        match self {
            DeliveryOutcome::Reply { rtt_ms, .. } => *rtt_ms,
            DeliveryOutcome::Timeout { waited_ms } => *waited_ms,
        }
    }
}

/// What the chaos and loss layers decided about one delivery attempt —
/// the per-query verdict a flight recorder wants alongside the
/// [`DeliveryOutcome`]. Returned by
/// [`SimNetwork::deliver_attempt_traced`]; plain data, no accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeliveryTrace {
    /// The fault plan's verdict (all-clean when no plan is installed).
    pub fault: FaultDecision,
    /// Whether baseline (world-level) packet loss swallowed the query.
    pub lost: bool,
}

impl DeliveryTrace {
    /// A stable label for the verdict that changed this delivery, if
    /// any: the drop kind, `refused`, `truncated`, `delayed`, or
    /// `baseline_loss`. Precedence mirrors the delivery path.
    pub fn verdict(&self) -> Option<&'static str> {
        if let Some(kind) = self.fault.drop {
            return Some(match kind {
                FaultKind::Flap => "flap",
                FaultKind::Loss => "loss",
                FaultKind::Refused => "refused",
                FaultKind::Truncated => "truncated",
                FaultKind::Delayed => "delayed",
                FaultKind::Outage => "outage",
            });
        }
        if self.lost {
            return Some("baseline_loss");
        }
        if self.fault.refuse {
            return Some("refused");
        }
        if self.fault.truncate {
            return Some("truncated");
        }
        if self.fault.extra_delay_ms > 0 {
            return Some("delayed");
        }
        None
    }
}

/// Aggregate traffic counters, kept in wire-format bytes so the simulated
/// measurement campaign's footprint is comparable to a real one (the
/// paper's ethics section is about exactly this load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficStats {
    /// Queries sent into the network.
    pub queries_sent: u64,
    /// Responses received.
    pub responses_received: u64,
    /// Exchanges that ended in a timeout.
    pub timeouts: u64,
    /// Query bytes on the wire.
    pub bytes_sent: u64,
    /// Response bytes on the wire.
    pub bytes_received: u64,
    /// Sum of round-trip/wait times, milliseconds.
    pub total_wait_ms: u64,
}

/// [`TrafficStats`] as independent atomics: the hot path increments
/// bare counters instead of serializing every worker on one mutex.
/// Cross-field consistency is only needed at snapshot time, after the
/// probing workers have drained — which is when `stats()` is read.
#[derive(Debug, Default)]
struct AtomicTraffic {
    queries_sent: AtomicU64,
    responses_received: AtomicU64,
    timeouts: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    total_wait_ms: AtomicU64,
}

impl AtomicTraffic {
    fn snapshot(&self) -> TrafficStats {
        TrafficStats {
            queries_sent: self.queries_sent.load(Ordering::Relaxed),
            responses_received: self.responses_received.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            total_wait_ms: self.total_wait_ms.load(Ordering::Relaxed),
        }
    }

    fn restore(&self, stats: TrafficStats) {
        self.queries_sent.store(stats.queries_sent, Ordering::Relaxed);
        self.responses_received.store(stats.responses_received, Ordering::Relaxed);
        self.timeouts.store(stats.timeouts, Ordering::Relaxed);
        self.bytes_sent.store(stats.bytes_sent, Ordering::Relaxed);
        self.bytes_received.store(stats.bytes_received, Ordering::Relaxed);
        self.total_wait_ms.store(stats.total_wait_ms, Ordering::Relaxed);
    }
}

/// [`FaultStats`] as independent atomics, same rationale as
/// [`AtomicTraffic`].
#[derive(Debug, Default)]
struct AtomicFaults {
    flap_timeouts: AtomicU64,
    losses: AtomicU64,
    refused: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    outages: AtomicU64,
}

impl AtomicFaults {
    fn count(&self, kind: FaultKind) {
        match kind {
            FaultKind::Flap => &self.flap_timeouts,
            FaultKind::Loss => &self.losses,
            FaultKind::Refused => &self.refused,
            FaultKind::Truncated => &self.truncated,
            FaultKind::Delayed => &self.delayed,
            FaultKind::Outage => &self.outages,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> FaultStats {
        FaultStats {
            flap_timeouts: self.flap_timeouts.load(Ordering::Relaxed),
            losses: self.losses.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            outages: self.outages.load(Ordering::Relaxed),
        }
    }

    fn restore(&self, stats: FaultStats) {
        self.flap_timeouts.store(stats.flap_timeouts, Ordering::Relaxed);
        self.losses.store(stats.losses, Ordering::Relaxed);
        self.refused.store(stats.refused, Ordering::Relaxed);
        self.truncated.store(stats.truncated, Ordering::Relaxed);
        self.delayed.store(stats.delayed, Ordering::Relaxed);
        self.outages.store(stats.outages, Ordering::Relaxed);
    }
}

/// The per-destination query ordinals, sharded [`DST_SHARDS`] ways by
/// [`dst_shard`] so concurrent workers probing different destinations
/// rarely contend on the same lock. Every address maps to exactly one
/// shard, so its ordinal sequence is exactly what a single global table
/// would have produced — the property `RefusedBurst` fault decisions
/// and resumed campaigns depend on.
#[derive(Debug)]
struct ShardedCounts {
    shards: [Mutex<HashMap<Ipv4Addr, u64>>; DST_SHARDS],
}

impl ShardedCounts {
    fn new() -> Self {
        ShardedCounts { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    /// Post-increments `dst`'s query count, returning the pre-increment
    /// ordinal (how many queries the destination had absorbed before
    /// this one).
    fn next_ordinal(&self, dst: Ipv4Addr) -> u64 {
        let mut shard = self.shards[dst_shard(dst)].lock();
        let slot = shard.entry(dst).or_insert(0);
        *slot += 1;
        *slot - 1
    }

    /// Merges every shard, sorted by address — byte-stable export order.
    fn snapshot_sorted(&self) -> Vec<(Ipv4Addr, u64)> {
        let mut all: Vec<(Ipv4Addr, u64)> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter().map(|(&a, &c)| (a, c)));
        }
        all.sort_by_key(|&(a, _)| a);
        all
    }

    /// Overwrites the whole table, distributing entries to their shards.
    fn restore(&self, entries: Vec<(Ipv4Addr, u64)>) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        for (addr, count) in entries {
            self.shards[dst_shard(addr)].lock().insert(addr, count);
        }
    }
}

/// The simulated internet: a routing table from IPv4 addresses to
/// authoritative servers, plus latency, loss, and traffic accounting.
///
/// `SimNetwork` is `Sync`; the measurement runner queries it from many
/// threads at once, as the real campaign parallelized its lookups. The
/// per-query hot path is deliberately lock-light: traffic and fault
/// counters are bare atomics, per-destination ordinals live in a
/// sharded table, the telemetry/fault plans are read through one brief
/// `RwLock` access each, and packet loss is a pure hash — no global
/// mutex or shared RNG is touched between deliveries.
#[derive(Debug)]
pub struct SimNetwork {
    servers: HashMap<Ipv4Addr, AuthoritativeServer>,
    latency: LatencyModel,
    loss_rate: f64,
    /// Seed for the deterministic loss hash (see `loss_hits`).
    seed: u64,
    stats: AtomicTraffic,
    per_destination: ShardedCounts,
    telemetry: RwLock<Option<Arc<NetSink>>>,
    faults: RwLock<Option<Arc<FaultPlan>>>,
    fault_stats: AtomicFaults,
}

impl SimNetwork {
    /// Creates an empty network with no loss and wide-area latency.
    pub fn new(seed: u64) -> Self {
        SimNetwork {
            servers: HashMap::new(),
            latency: LatencyModel::default(),
            loss_rate: 0.0,
            seed,
            stats: AtomicTraffic::default(),
            per_destination: ShardedCounts::new(),
            telemetry: RwLock::new(None),
            faults: RwLock::new(None),
            fault_stats: AtomicFaults::default(),
        }
    }

    /// Starts mirroring per-query traffic into `registry`: counters
    /// `net.{queries,replies,timeouts,lost}`, the `net.rtt_ms` latency
    /// histogram, and `net.{query,response}_bytes` size histograms.
    ///
    /// Takes `&self` because the runner only ever holds a shared
    /// reference to the network. Recording never touches simulated
    /// outcomes, so attaching telemetry cannot perturb them.
    pub fn attach_telemetry(&self, registry: &Registry) {
        *self.telemetry.write() = Some(Arc::new(NetSink::new(registry)));
    }

    /// Installs a fault plan; every subsequent delivery consults it.
    /// `None` (or an empty plan) restores clean delivery.
    ///
    /// Takes `&self` for the same reason as [`attach_telemetry`]: by the
    /// time the runner decides to inject chaos it only holds a shared
    /// reference. Fault decisions are pure hashes, so a plan cannot
    /// perturb the baseline loss stream — and because deliveries only
    /// hold the plan lock long enough to clone an `Arc`, installing a
    /// plan never stalls in-flight traffic.
    ///
    /// [`attach_telemetry`]: SimNetwork::attach_telemetry
    pub fn install_faults(&self, plan: Option<FaultPlan>) {
        *self.faults.write() = plan.filter(|p| !p.is_empty()).map(Arc::new);
    }

    /// Sets a fault plan (builder style); see [`install_faults`].
    ///
    /// [`install_faults`]: SimNetwork::install_faults
    #[must_use]
    pub fn with_faults(self, plan: FaultPlan) -> Self {
        self.install_faults(Some(plan));
        self
    }

    /// A snapshot of the injected-fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats.snapshot()
    }

    /// Sets the latency model (builder style).
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the packet-loss probability per exchange, in `[0, 1]`.
    ///
    /// Loss is decided by a deterministic hash of
    /// `(seed, destination, qname, attempt)` — the same construction
    /// fault-plan packet loss uses — so each retry of an exchange is an
    /// independent draw, and the verdict for a given attempt does not
    /// depend on how many workers are probing or how their queries
    /// interleave.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1]`.
    #[must_use]
    pub fn with_loss_rate(mut self, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "loss rate {rate} outside [0,1]");
        self.loss_rate = rate;
        self
    }

    /// Registers a server at its address.
    ///
    /// # Panics
    ///
    /// Panics if the address is already taken — address plans are
    /// generated, so a collision is a construction bug.
    pub fn add_server(&mut self, server: AuthoritativeServer) {
        let addr = server.addr();
        let prev = self.servers.insert(addr, server);
        assert!(prev.is_none(), "duplicate server at {addr}");
    }

    /// The server bound to `addr`, if any.
    pub fn server(&self, addr: Ipv4Addr) -> Option<&AuthoritativeServer> {
        self.servers.get(&addr)
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Iterates over all registered servers.
    pub fn servers(&self) -> impl Iterator<Item = &AuthoritativeServer> {
        self.servers.values()
    }

    /// The configured latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Whether baseline packet loss drops this attempt: a pure
    /// SplitMix64 fold over `(seed, dst, qname-hash, attempt)`, mapped
    /// onto `[0, 1)` exactly like fault-plan rates.
    fn loss_hits(&self, dst: Ipv4Addr, qhash: u64, attempt: u32) -> bool {
        if self.loss_rate <= 0.0 {
            return false;
        }
        if self.loss_rate >= 1.0 {
            return true;
        }
        let mut h = self.seed;
        for s in [0x6c6f_7373, u64::from(u32::from(dst)), qhash, u64::from(attempt)] {
            h = mix(h ^ s);
        }
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < self.loss_rate
    }

    /// Sends `query` to `dst` and waits for the outcome.
    ///
    /// Unrouted addresses and [`ServerBehavior::Unresponsive`] servers both
    /// produce a timeout — from the vantage point they are
    /// indistinguishable, which is exactly the ambiguity the paper's
    /// second-round retries exist to resolve.
    ///
    /// [`ServerBehavior::Unresponsive`]: crate::ServerBehavior::Unresponsive
    pub fn deliver(&self, dst: Ipv4Addr, query: &Message) -> DeliveryOutcome {
        self.deliver_attempt(dst, query, 0)
    }

    /// [`deliver`], with the client's cumulative attempt number for this
    /// `(dst, qname)` pair so the installed [`FaultPlan`] (if any) can
    /// model transient faults that recover under retry pressure.
    ///
    /// [`deliver`]: SimNetwork::deliver
    pub fn deliver_attempt(&self, dst: Ipv4Addr, query: &Message, attempt: u32) -> DeliveryOutcome {
        self.deliver_attempt_traced(dst, query, attempt).0
    }

    /// [`deliver_attempt`], additionally reporting what the fault and
    /// loss layers decided — the flight recorder's view of the attempt.
    /// This *is* the delivery path (`deliver_attempt` delegates here),
    /// so tracing can never observe different accounting than an
    /// untraced run.
    ///
    /// [`deliver_attempt`]: SimNetwork::deliver_attempt
    pub fn deliver_attempt_traced(
        &self,
        dst: Ipv4Addr,
        query: &Message,
        attempt: u32,
    ) -> (DeliveryOutcome, DeliveryTrace) {
        let qbytes = wire::encoded_len(query) as u64;
        self.stats.queries_sent.fetch_add(1, Ordering::Relaxed);
        self.stats.bytes_sent.fetch_add(qbytes, Ordering::Relaxed);
        let dst_queries_so_far = self.per_destination.next_ordinal(dst);
        // One name hash per delivery, shared by the loss and fault
        // decisions; one brief read-lock each to clone the Arc handles,
        // so neither `install_faults` nor `attach_telemetry` can stall
        // behind an in-flight delivery (or vice versa).
        let qhash = query.question.name.fnv64();
        let lost = self.loss_hits(dst, qhash, attempt);
        let plan = self.faults.read().clone();
        let fault = match &plan {
            Some(plan) => plan.decide_hashed(dst, qhash, attempt, dst_queries_so_far),
            None => Default::default(),
        };
        let sink = self.telemetry.read().clone();
        let count_fault = |kind: FaultKind| {
            self.fault_stats.count(kind);
            if let Some(sink) = &sink {
                sink.count_fault(kind);
            }
        };
        if fault.extra_delay_ms > 0 {
            count_fault(FaultKind::Delayed);
        }
        let reply = if lost || fault.drop.is_some() {
            if let Some(kind) = fault.drop {
                count_fault(kind);
            }
            None
        } else if fault.refuse && self.servers.contains_key(&dst) {
            count_fault(FaultKind::Refused);
            Some(query.response().with_rcode(Rcode::Refused))
        } else {
            let mut msg = self.servers.get(&dst).and_then(|s| s.handle(query));
            if fault.truncate {
                if let Some(msg) = &mut msg {
                    count_fault(FaultKind::Truncated);
                    msg.truncate();
                }
            }
            msg
        };
        if let Some(sink) = &sink {
            sink.queries.inc();
            sink.query_bytes.record(qbytes as f64);
            if lost {
                sink.lost.inc();
            }
        }
        let outcome = match reply {
            Some(msg) => {
                let rtt_ms = self.latency.rtt_ms(dst).saturating_add(fault.extra_delay_ms);
                let rbytes = wire::encoded_len(&msg) as u64;
                if let Some(sink) = &sink {
                    sink.replies.inc();
                    sink.rtt_ms.record(f64::from(rtt_ms));
                    sink.response_bytes.record(rbytes as f64);
                }
                self.stats.responses_received.fetch_add(1, Ordering::Relaxed);
                self.stats.bytes_received.fetch_add(rbytes, Ordering::Relaxed);
                self.stats.total_wait_ms.fetch_add(u64::from(rtt_ms), Ordering::Relaxed);
                DeliveryOutcome::Reply { msg, rtt_ms }
            }
            None => {
                let waited_ms = self.latency.timeout_ms.saturating_add(fault.extra_delay_ms);
                if let Some(sink) = &sink {
                    sink.timeouts.inc();
                    sink.rtt_ms.record(f64::from(waited_ms));
                }
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                self.stats.total_wait_ms.fetch_add(u64::from(waited_ms), Ordering::Relaxed);
                DeliveryOutcome::Timeout { waited_ms }
            }
        };
        (outcome, DeliveryTrace { fault, lost })
    }

    /// Delivers one query to a wave of independent destinations — the
    /// same-depth fan-out of a referral walk issued as a batch (the
    /// shape ZDNS-style scanners use to keep sockets full). Attempts
    /// are delivered through [`deliver_attempt_traced`] in input order,
    /// so per-destination ordinals — and therefore every fault-plan
    /// decision — match a sequential walk visiting the same
    /// destinations in the same order.
    ///
    /// [`deliver_attempt_traced`]: SimNetwork::deliver_attempt_traced
    pub fn deliver_batch(
        &self,
        query: &Message,
        attempts: &[(Ipv4Addr, u32)],
    ) -> Vec<(DeliveryOutcome, DeliveryTrace)> {
        attempts
            .iter()
            .map(|&(dst, attempt)| self.deliver_attempt_traced(dst, query, attempt))
            .collect()
    }

    /// A snapshot of the traffic counters.
    pub fn stats(&self) -> TrafficStats {
        self.stats.snapshot()
    }

    /// Every destination's cumulative query count, sorted by address —
    /// the full accounting behind [`busiest_destinations`], exported in
    /// a stable order so a campaign journal can checkpoint it.
    ///
    /// [`busiest_destinations`]: SimNetwork::busiest_destinations
    pub fn per_destination_snapshot(&self) -> Vec<(Ipv4Addr, u64)> {
        self.per_destination.snapshot_sorted()
    }

    /// Overwrites the traffic, fault, and per-destination accounting
    /// with a checkpointed snapshot — the resume path of a journaled
    /// campaign. Overwrite (not add) semantics: the checkpoint already
    /// contains whatever this network accrued before it was taken, so a
    /// resumed run's own pre-probe traffic (seed selection, discovery)
    /// is deliberately replaced, not double-counted.
    ///
    /// Per-destination counts are load-bearing beyond reporting: the
    /// installed [`FaultPlan`]'s `RefusedBurst` rules key off them, so
    /// restoring them is what keeps a resumed run's fault stream
    /// identical to an uninterrupted one.
    pub fn restore_accounting(
        &self,
        stats: TrafficStats,
        faults: FaultStats,
        per_destination: Vec<(Ipv4Addr, u64)>,
    ) {
        self.stats.restore(stats);
        self.fault_stats.restore(faults);
        self.per_destination.restore(per_destination);
    }

    /// The `n` destinations that received the most queries — the load
    /// concentration the campaign's rate limiting exists to bound (§III-D
    /// ethics).
    pub fn busiest_destinations(&self, n: usize) -> Vec<(Ipv4Addr, u64)> {
        let mut all = self.per_destination.snapshot_sorted();
        all.sort_by_key(|&(a, c)| (std::cmp::Reverse(c), a));
        all.truncate(n);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prefix24, FaultProfile, FaultScope, ServerBehavior};
    use govdns_model::{DomainName, RecordType, Zone};

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn network_with_one_zone() -> SimNetwork {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(7);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        net
    }

    #[test]
    fn routes_to_registered_server() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert!(out.reply().unwrap().is_authoritative_answer());
        assert!(out.elapsed_ms() >= net.latency().base_ms);
    }

    #[test]
    fn unrouted_address_times_out() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        assert!(out.reply().is_none());
        assert_eq!(out.elapsed_ms(), net.latency().timeout_ms);
    }

    #[test]
    fn accounting_tracks_bytes_and_counts() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        let s = net.stats();
        assert_eq!(s.queries_sent, 2);
        assert_eq!(s.responses_received, 1);
        assert_eq!(s.timeouts, 1);
        assert!(s.bytes_sent > 0 && s.bytes_received > s.bytes_sent / 2);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(7).with_loss_rate(1.0);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q).reply().is_none());
    }

    #[test]
    fn partial_loss_is_probabilistic() {
        let mut zone = Zone::new(n("gov.zz"));
        zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        let mut net = SimNetwork::new(42).with_loss_rate(0.5);
        net.add_server(
            AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                .with_zone(zone),
        );
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        // Each attempt is an independent hash draw; a fixed (dst, qname)
        // pair across varying attempts must land near the rate.
        let replies = (0..200)
            .filter(|&i| net.deliver_attempt(Ipv4Addr::new(192, 0, 2, 1), &q, i).reply().is_some())
            .count();
        assert!((60..140).contains(&replies), "got {replies} replies out of 200");
    }

    #[test]
    fn loss_verdicts_are_per_attempt_and_order_free() {
        let dst = Ipv4Addr::new(192, 0, 2, 9);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let routed = || {
            let mut zone = Zone::new(n("gov.zz"));
            zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
            let mut net = SimNetwork::new(11).with_loss_rate(0.5);
            net.add_server(
                AuthoritativeServer::new(dst, ServerBehavior::Responsive).with_zone(zone.clone()),
            );
            net
        };
        // Deliver the same 64 attempts forward and backward: the verdict
        // for a given attempt number must not depend on delivery order,
        // because there is no shared RNG consuming draws in sequence.
        let fwd_net = routed();
        let fwd: Vec<bool> =
            (0..64).map(|i| fwd_net.deliver_attempt(dst, &q, i).reply().is_some()).collect();
        let bwd_net = routed();
        let mut bwd: Vec<bool> =
            (0..64).rev().map(|i| bwd_net.deliver_attempt(dst, &q, i).reply().is_some()).collect();
        bwd.reverse();
        assert_eq!(fwd, bwd, "loss verdicts depend only on (seed, dst, qname, attempt)");
        assert!(fwd.iter().any(|&r| r) && fwd.iter().any(|&r| !r), "0.5 loss mixes outcomes");
    }

    #[test]
    #[should_panic(expected = "duplicate server")]
    fn rejects_address_collision() {
        let mut net = SimNetwork::new(1);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        net.add_server(AuthoritativeServer::new(a, ServerBehavior::Unresponsive));
        net.add_server(AuthoritativeServer::new(a, ServerBehavior::Unresponsive));
    }

    #[test]
    fn network_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<SimNetwork>();
    }

    #[test]
    fn telemetry_mirrors_traffic_stats() {
        let net = network_with_one_zone();
        let registry = Registry::new();
        net.attach_telemetry(&registry);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["net.queries"], 2);
        assert_eq!(snap.counters["net.replies"], 1);
        assert_eq!(snap.counters["net.timeouts"], 1);
        assert_eq!(snap.counters["net.lost"], 0);
        assert_eq!(snap.histograms["net.rtt_ms"].count, 2);
        assert_eq!(snap.histograms["net.query_bytes"].count, 2);
        assert_eq!(snap.histograms["net.response_bytes"].count, 1);
        let s = net.stats();
        assert_eq!(snap.counters["net.queries"], s.queries_sent);
        assert_eq!(snap.counters["net.replies"], s.responses_received);
    }

    #[test]
    fn telemetry_does_not_perturb_loss_outcomes() {
        let run = |attach: bool| {
            let mut zone = Zone::new(n("gov.zz"));
            zone.add_ns(n("gov.zz"), n("ns1.gov.zz"));
            let mut net = SimNetwork::new(42).with_loss_rate(0.5);
            net.add_server(
                AuthoritativeServer::new(Ipv4Addr::new(192, 0, 2, 1), ServerBehavior::Responsive)
                    .with_zone(zone),
            );
            if attach {
                net.attach_telemetry(&Registry::new());
            }
            let q = Message::query(1, n("gov.zz"), RecordType::Ns);
            (0..50)
                .map(|i| net.deliver_attempt(Ipv4Addr::new(192, 0, 2, 1), &q, i).reply().is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn injected_flap_times_out_then_recovers() {
        let net = network_with_one_zone().with_faults(
            FaultPlan::new(1)
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 1.0, recover_after: 2 }),
        );
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver_attempt(dst, &q, 0).reply().is_none());
        assert!(net.deliver_attempt(dst, &q, 1).reply().is_none());
        let recovered = net.deliver_attempt(dst, &q, 2);
        assert!(recovered.reply().unwrap().is_authoritative_answer());
        assert_eq!(net.fault_stats().flap_timeouts, 2);
    }

    #[test]
    fn injected_refusal_needs_a_server_on_path() {
        let net = network_with_one_zone().with_faults(FaultPlan::new(1).with_rule(
            FaultScope::All,
            FaultProfile::RefusedBurst { after_queries: 0, rate: 1.0, recover_after: 99 },
        ));
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert_eq!(out.reply().unwrap().rcode, govdns_model::Rcode::Refused);
        // An unrouted address still times out: there is no limiter there.
        assert!(net.deliver(Ipv4Addr::new(203, 0, 113, 200), &q).reply().is_none());
        assert_eq!(net.fault_stats().refused, 1);
    }

    #[test]
    fn injected_truncation_strips_sections_and_sets_tc() {
        let net =
            network_with_one_zone().with_faults(FaultPlan::new(1).with_rule(
                FaultScope::All,
                FaultProfile::Truncation { rate: 1.0, recover_after: 1 },
            ));
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let msg = net.deliver_attempt(dst, &q, 0).reply().unwrap().clone();
        assert!(msg.tc && msg.answers.is_empty());
        assert!(!msg.is_authoritative_answer());
        let retry = net.deliver_attempt(dst, &q, 1).reply().unwrap().clone();
        assert!(retry.is_authoritative_answer(), "retry gets the full answer");
    }

    #[test]
    fn fault_counters_mirror_into_telemetry() {
        let net = network_with_one_zone().with_faults(
            FaultPlan::new(1)
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 1.0, recover_after: 1 })
                .with_rule(
                    FaultScope::All,
                    FaultProfile::LatencySpike { rate: 1.0, extra_ms: 500 },
                ),
        );
        let registry = Registry::new();
        net.attach_telemetry(&registry);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let out = net.deliver(Ipv4Addr::new(192, 0, 2, 1), &q);
        assert!(out.reply().is_none());
        assert!(out.elapsed_ms() >= net.latency().timeout_ms + 500, "spike delays the wait");
        let snap = registry.snapshot();
        assert_eq!(snap.counters["fault.flap_timeouts"], 1);
        assert_eq!(snap.counters["fault.delayed"], 1);
        assert_eq!(snap.counters["fault.refused"], 0);
        assert_eq!(net.fault_stats().flap_timeouts, 1);
    }

    #[test]
    fn blackholed_destination_times_out_and_counts_outages() {
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let net =
            network_with_one_zone().with_faults(FaultPlan::new(1).with_blackholed_addrs([dst]));
        let registry = Registry::new();
        net.attach_telemetry(&registry);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        for attempt in 0..3 {
            let (out, trace) = net.deliver_attempt_traced(dst, &q, attempt);
            assert!(out.reply().is_none(), "outage never recovers");
            assert_eq!(trace.verdict(), Some("outage"));
        }
        assert_eq!(net.fault_stats().outages, 3);
        assert_eq!(registry.snapshot().counters["fault.outages"], 3);
    }

    #[test]
    fn blackhole_only_plan_survives_install_filter() {
        let net = network_with_one_zone();
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        // A plan with no rules but a blackhole set is not "empty": the
        // install filter must keep it.
        net.install_faults(Some(FaultPlan::new(1).with_blackholed_prefixes([prefix24(dst)])));
        assert!(net.deliver(dst, &q).reply().is_none());
        net.install_faults(None);
        assert!(net.deliver(dst, &q).reply().is_some());
    }

    #[test]
    fn install_faults_swaps_plans_at_runtime() {
        let net = network_with_one_zone();
        let dst = Ipv4Addr::new(192, 0, 2, 1);
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        assert!(net.deliver(dst, &q).reply().is_some());
        net.install_faults(Some(
            FaultPlan::new(1)
                .with_rule(FaultScope::Server(dst), FaultProfile::PacketLoss { rate: 1.0 }),
        ));
        assert!(net.deliver(dst, &q).reply().is_none());
        net.install_faults(None);
        assert!(net.deliver(dst, &q).reply().is_some());
    }

    #[test]
    fn accounting_snapshot_round_trips_through_restore() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        for _ in 0..3 {
            net.deliver(a, &q);
        }
        net.deliver(Ipv4Addr::new(203, 0, 113, 5), &q);
        let (stats, faults, per_dst) =
            (net.stats(), net.fault_stats(), net.per_destination_snapshot());
        assert_eq!(per_dst.iter().find(|&&(d, _)| d == a).unwrap().1, 3);

        // A fresh network with its own pre-restore traffic: restore
        // overwrites, so the checkpointed state wins exactly.
        let other = network_with_one_zone();
        other.deliver(a, &q);
        other.restore_accounting(stats, faults, per_dst.clone());
        assert_eq!(other.stats(), stats);
        assert_eq!(other.per_destination_snapshot(), per_dst);
        assert_eq!(other.busiest_destinations(1), vec![(a, 3)]);
    }

    #[test]
    fn busiest_destinations_orders_and_breaks_ties() {
        let net = network_with_one_zone();
        let q = Message::query(1, n("gov.zz"), RecordType::Ns);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(203, 0, 113, 5);
        let c = Ipv4Addr::new(198, 51, 100, 9);
        // a: 3 queries, b: 1, c: 1 — b and c tie, lower address first.
        for _ in 0..3 {
            net.deliver(a, &q);
        }
        net.deliver(b, &q);
        net.deliver(c, &q);

        let top = net.busiest_destinations(3);
        assert_eq!(top, vec![(a, 3), (c, 1), (b, 1)]);

        // n larger than the number of destinations truncates gracefully.
        assert_eq!(net.busiest_destinations(10).len(), 3);
        // n smaller keeps only the busiest.
        assert_eq!(net.busiest_destinations(1), vec![(a, 3)]);
        assert!(net.busiest_destinations(0).is_empty());
    }
}
