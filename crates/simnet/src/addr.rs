use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// A /24 IPv4 prefix, the granularity the paper uses for its first
/// topological-diversity cut (Table I's |24ns| column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The prefix containing `addr`.
    pub fn of(addr: Ipv4Addr) -> Self {
        Prefix24(u32::from(addr) >> 8)
    }

    /// The network address of the prefix (`x.y.z.0`).
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The `i`-th host address in the prefix (`i` in `1..=254`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or 255 (network/broadcast).
    pub fn host(self, i: u8) -> Ipv4Addr {
        assert!((1..=254).contains(&i), "host index {i} out of range");
        Ipv4Addr::from((self.0 << 8) | u32::from(i))
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// Convenience wrapper for [`Prefix24::of`].
pub fn prefix24(addr: Ipv4Addr) -> Prefix24 {
    Prefix24::of(addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_first_three_octets() {
        let a = prefix24(Ipv4Addr::new(198, 51, 100, 1));
        let b = prefix24(Ipv4Addr::new(198, 51, 100, 254));
        let c = prefix24(Ipv4Addr::new(198, 51, 101, 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn network_and_host() {
        let p = prefix24(Ipv4Addr::new(10, 2, 3, 99));
        assert_eq!(p.network(), Ipv4Addr::new(10, 2, 3, 0));
        assert_eq!(p.host(7), Ipv4Addr::new(10, 2, 3, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_broadcast_host() {
        prefix24(Ipv4Addr::new(10, 0, 0, 0)).host(255);
    }

    #[test]
    fn display_is_cidr() {
        assert_eq!(prefix24(Ipv4Addr::new(203, 0, 113, 9)).to_string(), "203.0.113.0/24");
    }
}
