use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// A /24 IPv4 prefix, the granularity the paper uses for its first
/// topological-diversity cut (Table I's |24ns| column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix24(u32);

impl Prefix24 {
    /// The prefix containing `addr`.
    pub fn of(addr: Ipv4Addr) -> Self {
        Prefix24(u32::from(addr) >> 8)
    }

    /// The network address of the prefix (`x.y.z.0`).
    pub fn network(self) -> Ipv4Addr {
        Ipv4Addr::from(self.0 << 8)
    }

    /// The `i`-th host address in the prefix (`i` in `1..=254`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or 255 (network/broadcast).
    pub fn host(self, i: u8) -> Ipv4Addr {
        assert!((1..=254).contains(&i), "host index {i} out of range");
        Ipv4Addr::from((self.0 << 8) | u32::from(i))
    }
}

impl fmt::Display for Prefix24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/24", self.network())
    }
}

/// Convenience wrapper for [`Prefix24::of`].
pub fn prefix24(addr: Ipv4Addr) -> Prefix24 {
    Prefix24::of(addr)
}

/// Number of shards every per-destination table in the workspace splits
/// into — a power of two so the shard index is a mask, sized so eight
/// probe workers rarely collide on the same shard lock.
pub const DST_SHARDS: usize = 16;

/// Stable shard index for a destination address, in `0..DST_SHARDS`.
///
/// A pure SplitMix64 finalizer over the address: every table sharded by
/// destination (the network's per-destination query ordinals, the rate
/// limiter's ledger maps) uses this same function, so a given address
/// always lives in exactly one shard and per-destination ordinals stay
/// exact under concurrency.
pub fn dst_shard(addr: Ipv4Addr) -> usize {
    (mix(u64::from(u32::from(addr))) as usize) & (DST_SHARDS - 1)
}

/// SplitMix64 finalizer — the deterministic mixer behind fault
/// decisions, hash-based packet loss, and destination sharding.
pub(crate) fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_by_first_three_octets() {
        let a = prefix24(Ipv4Addr::new(198, 51, 100, 1));
        let b = prefix24(Ipv4Addr::new(198, 51, 100, 254));
        let c = prefix24(Ipv4Addr::new(198, 51, 101, 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn network_and_host() {
        let p = prefix24(Ipv4Addr::new(10, 2, 3, 99));
        assert_eq!(p.network(), Ipv4Addr::new(10, 2, 3, 0));
        assert_eq!(p.host(7), Ipv4Addr::new(10, 2, 3, 7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_broadcast_host() {
        prefix24(Ipv4Addr::new(10, 0, 0, 0)).host(255);
    }

    #[test]
    fn display_is_cidr() {
        assert_eq!(prefix24(Ipv4Addr::new(203, 0, 113, 9)).to_string(), "203.0.113.0/24");
    }

    #[test]
    fn dst_shard_is_stable_and_in_range() {
        for i in 0..1000u32 {
            let addr = Ipv4Addr::from(i.wrapping_mul(2_654_435_761));
            let s = dst_shard(addr);
            assert!(s < DST_SHARDS);
            assert_eq!(s, dst_shard(addr), "same address, same shard");
        }
    }

    #[test]
    fn dst_shard_spreads_addresses() {
        let mut seen = [false; DST_SHARDS];
        for i in 0..256u32 {
            seen[dst_shard(Ipv4Addr::from(0x0a00_0000 | i))] = true;
        }
        let hit = seen.iter().filter(|&&s| s).count();
        assert!(hit >= DST_SHARDS / 2, "256 addresses hit only {hit} shards");
    }
}
