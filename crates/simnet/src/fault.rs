//! Deterministic fault injection — the chaos layer of the simulated
//! internet.
//!
//! A real measurement campaign does not run against a network that is
//! merely *dead or alive*: nameservers flap, rate limiters emit REFUSED
//! bursts under query pressure, middleboxes truncate answers, and links
//! spike. The paper's Figure-1 protocol re-probes "transient-looking
//! failures" in a second round precisely because of this adversity. A
//! [`FaultPlan`] injects those behaviours into [`SimNetwork`] delivery
//! without touching the servers themselves, so the pipeline's retry and
//! round-2 machinery can be exercised — and regression-tested — under
//! realistic degradation.
//!
//! **Determinism.** Every fault decision is a pure function of the plan
//! seed, the rule, the destination address, a stable hash of the query
//! name, and the *attempt number* the client reports. No shared RNG is
//! consulted, so outcomes are independent of thread interleaving: two
//! campaigns with the same world seed, the same plan, and one worker
//! produce byte-identical datasets (the chaos CI gate diffs exactly
//! this).
//!
//! [`SimNetwork`]: crate::SimNetwork

use std::collections::BTreeSet;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::addr::mix;
use crate::{prefix24, Prefix24};

/// The kind of fault that fired on a delivery, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A flapping server swallowed the query (transient timeout).
    Flap,
    /// The packet was lost on a lossy prefix.
    Loss,
    /// A rate limiter refused the query (REFUSED burst).
    Refused,
    /// The response came back truncated.
    Truncated,
    /// The exchange was delayed by a latency spike.
    Delayed,
    /// The destination is blackholed by a counterfactual outage
    /// scenario: every query to it is swallowed, unconditionally and
    /// forever (no recovery across attempts or rounds).
    Outage,
}

/// What the fault layer decided for one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDecision {
    /// Swallow the query: the client observes a timeout.
    pub drop: Option<FaultKind>,
    /// Replace the server's answer with REFUSED.
    pub refuse: bool,
    /// Strip the response sections and set the `tc` bit.
    pub truncate: bool,
    /// Extra round-trip delay, milliseconds (latency spikes compose).
    pub extra_delay_ms: u32,
}

impl FaultDecision {
    /// Whether any fault fired at all.
    pub fn is_clean(&self) -> bool {
        self.drop.is_none() && !self.refuse && !self.truncate && self.extra_delay_ms == 0
    }
}

/// Which deliveries a [`FaultRule`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultScope {
    /// Every destination.
    All,
    /// One server address.
    Server(Ipv4Addr),
    /// Every address in one /24.
    Prefix(Prefix24),
}

impl FaultScope {
    fn matches(self, dst: Ipv4Addr) -> bool {
        match self {
            FaultScope::All => true,
            FaultScope::Server(a) => a == dst,
            FaultScope::Prefix(p) => prefix24(dst) == p,
        }
    }
}

/// One composable fault behaviour.
///
/// Rates are probabilities in `[0, 1]`, resolved deterministically per
/// `(destination, query name)` pair — a "20 % flap rate" means a fifth
/// of the pairs flap on *every* run with the same seed, not that each
/// packet flips a coin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// Per-server flapping: an affected `(server, qname)` pair times out
    /// until the client has burned `recover_after` attempts on it, then
    /// the server answers normally — the transient failure the paper's
    /// second round exists to recover.
    Flap {
        /// Share of `(destination, qname)` pairs that flap.
        rate: f64,
        /// Attempts (across rounds) before the pair recovers.
        recover_after: u32,
    },
    /// Packet loss: each attempt is lost independently, so retries can
    /// punch through.
    PacketLoss {
        /// Per-attempt loss probability.
        rate: f64,
    },
    /// REFUSED bursts under QPS pressure: once a destination has
    /// absorbed `after_queries` queries, an affected pair is refused
    /// until `recover_after` attempts have backed off.
    RefusedBurst {
        /// Queries a destination absorbs before its limiter engages.
        after_queries: u64,
        /// Share of pairs refused once the limiter is engaged.
        rate: f64,
        /// Attempts before the limiter forgives the pair.
        recover_after: u32,
    },
    /// Truncated answers: affected pairs get their response sections
    /// stripped and the `tc` bit set until `recover_after` attempts.
    Truncation {
        /// Share of pairs truncated.
        rate: f64,
        /// Attempts before the path delivers a full answer.
        recover_after: u32,
    },
    /// Latency spikes: affected attempts take `extra_ms` longer.
    LatencySpike {
        /// Per-attempt spike probability.
        rate: f64,
        /// Added delay, milliseconds.
        extra_ms: u32,
    },
}

/// A scoped fault behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRule {
    /// Which deliveries the profile applies to.
    pub scope: FaultScope,
    /// The behaviour.
    pub profile: FaultProfile,
}

/// Aggregate injected-fault counters, mirrored into telemetry as
/// `fault.*` when the network has a registry attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Queries swallowed by flapping servers.
    pub flap_timeouts: u64,
    /// Queries lost to injected packet loss.
    pub losses: u64,
    /// Queries answered REFUSED by the injected rate limiter.
    pub refused: u64,
    /// Responses truncated.
    pub truncated: u64,
    /// Deliveries delayed by a latency spike.
    pub delayed: u64,
    /// Queries swallowed by a blackholed (counterfactual-outage)
    /// destination.
    pub outages: u64,
}

impl FaultStats {
    /// Total outcome-changing faults (delays excluded).
    pub fn injected(&self) -> u64 {
        self.flap_timeouts + self.losses + self.refused + self.truncated + self.outages
    }
}

/// A seeded, composable set of fault rules the network consults on
/// every delivery.
///
/// ```
/// use govdns_simnet::{FaultPlan, FaultProfile, FaultScope};
///
/// let plan = FaultPlan::new(7)
///     .with_rule(FaultScope::All, FaultProfile::Flap { rate: 0.2, recover_after: 2 })
///     .with_rule(FaultScope::All, FaultProfile::LatencySpike { rate: 0.1, extra_ms: 400 });
/// let qname: govdns_model::DomainName = "portal.gov.zz".parse()?;
/// let first = plan.decide("192.0.2.1".parse().unwrap(), &qname, 0, 0);
/// let again = plan.decide("192.0.2.1".parse().unwrap(), &qname, 0, 0);
/// assert_eq!(first, again, "decisions are deterministic");
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Counterfactual-outage layer: addresses that are hard-failed.
    ///
    /// Checked *before* the probabilistic rules, and independent of
    /// them: adding a blackhole set never changes the rule indices,
    /// salts, or decisions for destinations outside the set.
    blackhole_addrs: BTreeSet<Ipv4Addr>,
    /// Counterfactual-outage layer: whole /24s that are hard-failed.
    blackhole_prefixes: BTreeSet<Prefix24>,
    /// Partial-outage layer: addresses degraded (not erased) by a
    /// counterfactual scenario. Each delivery attempt to a degraded
    /// destination is dropped with probability `degrade_ppm / 1e6`,
    /// decided by the same pure-hash scheme as the probabilistic rules
    /// but under a salt domain no rule uses — so, like the blackhole
    /// layer, degrading a set never perturbs a decision outside it.
    degraded_addrs: BTreeSet<Ipv4Addr>,
    /// Partial-outage layer: whole /24s degraded.
    degraded_prefixes: BTreeSet<Prefix24>,
    /// Per-attempt drop probability for degraded destinations, in
    /// parts-per-million (an integer so the plan stays `Eq`-comparable
    /// and byte-stable in config echoes). `0` disables the layer.
    degrade_ppm: u32,
}

/// Salt-domain tag for the degrade layer's hash draws. Rule draws salt
/// with `[rule_idx, 0x1..=0x5, ...]`; the degrade layer uses an index no
/// rule can occupy so its draws can never collide with a rule's.
const DEGRADE_SALT_IDX: u64 = u64::MAX;
const DEGRADE_SALT_DOMAIN: u64 = 0x6;

impl FaultPlan {
    /// An empty plan (no faults) under `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            blackhole_addrs: BTreeSet::new(),
            blackhole_prefixes: BTreeSet::new(),
            degraded_addrs: BTreeSet::new(),
            degraded_prefixes: BTreeSet::new(),
            degrade_ppm: 0,
        }
    }

    /// Adds a rule (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the profile's rate is outside `[0, 1]`.
    #[must_use]
    pub fn with_rule(mut self, scope: FaultScope, profile: FaultProfile) -> Self {
        self.push_rule(FaultRule { scope, profile });
        self
    }

    /// Adds a rule.
    ///
    /// # Panics
    ///
    /// Panics if the profile's rate is outside `[0, 1]`.
    pub fn push_rule(&mut self, rule: FaultRule) {
        let rate = match rule.profile {
            FaultProfile::Flap { rate, .. }
            | FaultProfile::PacketLoss { rate }
            | FaultProfile::RefusedBurst { rate, .. }
            | FaultProfile::Truncation { rate, .. }
            | FaultProfile::LatencySpike { rate, .. } => rate,
        };
        assert!((0.0..=1.0).contains(&rate), "fault rate {rate} outside [0,1]");
        self.rules.push(rule);
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Blackholes additional addresses (builder style). Queries to a
    /// blackholed destination are unconditionally swallowed with
    /// [`FaultKind::Outage`], bypassing every probabilistic rule.
    #[must_use]
    pub fn with_blackholed_addrs<I: IntoIterator<Item = Ipv4Addr>>(mut self, addrs: I) -> Self {
        self.blackhole_addrs.extend(addrs);
        self
    }

    /// Blackholes additional /24 prefixes (builder style) — the anycast
    /// model: killing a prefix takes out every address announced from
    /// it, including sibling anycast sites.
    #[must_use]
    pub fn with_blackholed_prefixes<I: IntoIterator<Item = Prefix24>>(mut self, ps: I) -> Self {
        self.blackhole_prefixes.extend(ps);
        self
    }

    /// Degrades additional addresses (builder style): each delivery
    /// attempt to a degraded destination is independently dropped with
    /// probability [`degrade_ppm`](Self::with_degrade_ppm)` / 1e6`
    /// (counted as [`FaultKind::Outage`]); attempts that survive the
    /// dial see exactly the decision the base plan would have made.
    #[must_use]
    pub fn with_degraded_addrs<I: IntoIterator<Item = Ipv4Addr>>(mut self, addrs: I) -> Self {
        self.degraded_addrs.extend(addrs);
        self
    }

    /// Degrades additional /24 prefixes (builder style).
    #[must_use]
    pub fn with_degraded_prefixes<I: IntoIterator<Item = Prefix24>>(mut self, ps: I) -> Self {
        self.degraded_prefixes.extend(ps);
        self
    }

    /// Sets the degraded-destination drop probability, parts-per-million
    /// (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `ppm` exceeds 1 000 000.
    #[must_use]
    pub fn with_degrade_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= 1_000_000, "degrade rate {ppm} ppm outside [0, 1e6]");
        self.degrade_ppm = ppm;
        self
    }

    /// The degraded addresses, sorted.
    pub fn degraded_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.degraded_addrs.iter().copied()
    }

    /// The degraded /24s, sorted.
    pub fn degraded_prefixes(&self) -> impl Iterator<Item = Prefix24> + '_ {
        self.degraded_prefixes.iter().copied()
    }

    /// The degraded-destination drop probability, parts-per-million.
    pub fn degrade_ppm(&self) -> u32 {
        self.degrade_ppm
    }

    /// Whether the partial-outage layer applies to `dst` (with a nonzero
    /// drop rate).
    pub fn is_degraded(&self, dst: Ipv4Addr) -> bool {
        self.degrade_ppm > 0
            && (self.degraded_addrs.contains(&dst)
                || self.degraded_prefixes.contains(&prefix24(dst)))
    }

    /// The blackholed addresses, sorted.
    pub fn blackholed_addrs(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.blackhole_addrs.iter().copied()
    }

    /// The blackholed /24s, sorted.
    pub fn blackholed_prefixes(&self) -> impl Iterator<Item = Prefix24> + '_ {
        self.blackhole_prefixes.iter().copied()
    }

    /// Whether the outage layer swallows queries to `dst`.
    pub fn is_blackholed(&self, dst: Ipv4Addr) -> bool {
        self.blackhole_addrs.contains(&dst) || self.blackhole_prefixes.contains(&prefix24(dst))
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
            && self.blackhole_addrs.is_empty()
            && self.blackhole_prefixes.is_empty()
            && !(self.degrade_ppm > 0
                && !(self.degraded_addrs.is_empty() && self.degraded_prefixes.is_empty()))
    }

    /// Decides the fate of one delivery attempt.
    ///
    /// `attempt` is the client's cumulative attempt count for this
    /// `(dst, qname)` pair (0 for the first try; retries and round-2
    /// re-probes keep counting). `dst_queries_so_far` is how many
    /// queries the destination had already absorbed, which only the
    /// QPS-pressure profile consults.
    pub fn decide(
        &self,
        dst: Ipv4Addr,
        qname: &DomainName,
        attempt: u32,
        dst_queries_so_far: u64,
    ) -> FaultDecision {
        self.decide_hashed(dst, qname.fnv64(), attempt, dst_queries_so_far)
    }

    /// [`decide`](Self::decide) with the query name pre-hashed
    /// ([`DomainName::fnv64`]) — the hot-path form: the network computes
    /// the name hash once per delivery and reuses it for both the fault
    /// and the loss decision.
    pub fn decide_hashed(
        &self,
        dst: Ipv4Addr,
        qhash: u64,
        attempt: u32,
        dst_queries_so_far: u64,
    ) -> FaultDecision {
        let mut decision = FaultDecision::default();
        if self.is_blackholed(dst) {
            decision.drop = Some(FaultKind::Outage);
            return decision;
        }
        // The partial-outage dial: a degraded destination loses this
        // attempt with probability `degrade_ppm / 1e6`, decided under a
        // salt domain no rule shares. An attempt that survives the dial
        // falls through to the rules with untouched salts, so the
        // surviving decision stream is bit-identical to the base plan's.
        if self.is_degraded(dst) {
            let rate = f64::from(self.degrade_ppm) / 1e6;
            let salt = [
                DEGRADE_SALT_IDX,
                DEGRADE_SALT_DOMAIN,
                u64::from(u32::from(dst)),
                qhash,
                u64::from(attempt),
            ];
            if self.hits(rate, salt) {
                decision.drop = Some(FaultKind::Outage);
                return decision;
            }
        }
        if self.rules.is_empty() {
            return decision;
        }
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.scope.matches(dst) {
                continue;
            }
            let idx = idx as u64;
            match rule.profile {
                FaultProfile::Flap { rate, recover_after } => {
                    if attempt < recover_after
                        && self.hits(rate, [idx, 0x1, u64::from(u32::from(dst)), qhash, 0])
                    {
                        decision.drop = decision.drop.or(Some(FaultKind::Flap));
                    }
                }
                FaultProfile::PacketLoss { rate } => {
                    let salt = [idx, 0x2, u64::from(u32::from(dst)), qhash, u64::from(attempt)];
                    if self.hits(rate, salt) {
                        decision.drop = decision.drop.or(Some(FaultKind::Loss));
                    }
                }
                FaultProfile::RefusedBurst { after_queries, rate, recover_after } => {
                    if dst_queries_so_far >= after_queries
                        && attempt < recover_after
                        && self.hits(rate, [idx, 0x3, u64::from(u32::from(dst)), qhash, 0])
                    {
                        decision.refuse = true;
                    }
                }
                FaultProfile::Truncation { rate, recover_after } => {
                    if attempt < recover_after
                        && self.hits(rate, [idx, 0x4, u64::from(u32::from(dst)), qhash, 0])
                    {
                        decision.truncate = true;
                    }
                }
                FaultProfile::LatencySpike { rate, extra_ms } => {
                    let salt = [idx, 0x5, u64::from(u32::from(dst)), qhash, u64::from(attempt)];
                    if self.hits(rate, salt) {
                        decision.extra_delay_ms = decision.extra_delay_ms.saturating_add(extra_ms);
                    }
                }
            }
        }
        decision
    }

    /// Whether a rate-gated event fires for this salt tuple.
    fn hits(&self, rate: f64, salt: [u64; 5]) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = self.seed;
        for s in salt {
            h = mix(h ^ s);
        }
        // Map the top 53 bits onto [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < rate
    }
}

/// Named chaos presets — the knob [`RunnerConfig`]-level callers select
/// instead of hand-assembling rules.
///
/// [`RunnerConfig`]: ../govdns_core/struct.RunnerConfig.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChaosProfile {
    /// Flapping servers plus mild latency spikes: every fault is
    /// transient and recoverable by retries or the second round.
    Flaky,
    /// A congested path: packet loss, truncation, heavy latency spikes.
    Congested,
    /// Everything at once, including REFUSED bursts under pressure.
    Hostile,
}

impl ChaosProfile {
    /// Materializes the preset into a seeded plan.
    pub fn plan(self, seed: u64) -> FaultPlan {
        let base = FaultPlan::new(seed);
        match self {
            ChaosProfile::Flaky => base
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 0.15, recover_after: 3 })
                .with_rule(
                    FaultScope::All,
                    FaultProfile::LatencySpike { rate: 0.05, extra_ms: 250 },
                ),
            ChaosProfile::Congested => base
                .with_rule(FaultScope::All, FaultProfile::PacketLoss { rate: 0.10 })
                .with_rule(
                    FaultScope::All,
                    FaultProfile::Truncation { rate: 0.05, recover_after: 2 },
                )
                .with_rule(
                    FaultScope::All,
                    FaultProfile::LatencySpike { rate: 0.15, extra_ms: 800 },
                ),
            ChaosProfile::Hostile => base
                .with_rule(FaultScope::All, FaultProfile::Flap { rate: 0.12, recover_after: 3 })
                .with_rule(FaultScope::All, FaultProfile::PacketLoss { rate: 0.08 })
                .with_rule(
                    FaultScope::All,
                    FaultProfile::RefusedBurst { after_queries: 50, rate: 0.10, recover_after: 2 },
                )
                .with_rule(
                    FaultScope::All,
                    FaultProfile::Truncation { rate: 0.04, recover_after: 2 },
                )
                .with_rule(
                    FaultScope::All,
                    FaultProfile::LatencySpike { rate: 0.10, extra_ms: 500 },
                ),
        }
    }

    /// Parses a profile name (`flaky` / `congested` / `hostile`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "flaky" => Some(ChaosProfile::Flaky),
            "congested" => Some(ChaosProfile::Congested),
            "hostile" => Some(ChaosProfile::Hostile),
            _ => None,
        }
    }
}

impl std::fmt::Display for ChaosProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChaosProfile::Flaky => "flaky",
            ChaosProfile::Congested => "congested",
            ChaosProfile::Hostile => "hostile",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn dst(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(192, 0, 2, last)
    }

    #[test]
    fn empty_plan_is_clean() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_empty());
        assert!(plan.decide(dst(1), &n("a.gov.zz"), 0, 0).is_clean());
    }

    #[test]
    fn decide_hashed_matches_decide() {
        let plan = ChaosProfile::Hostile.plan(9);
        for i in 0..50u8 {
            let name = n(&format!("d{i}.gov.zz"));
            assert_eq!(
                plan.decide(dst(i), &name, u32::from(i % 4), 100),
                plan.decide_hashed(dst(i), name.fnv64(), u32::from(i % 4), 100),
            );
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = ChaosProfile::Hostile.plan(42);
        for i in 0..50u8 {
            let name = n(&format!("d{i}.gov.zz"));
            let a = plan.decide(dst(i), &name, 0, 100);
            let b = plan.decide(dst(i), &name, 0, 100);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let a = ChaosProfile::Flaky.plan(1);
        let b = ChaosProfile::Flaky.plan(2);
        let differs = (0..200u8).any(|i| {
            let name = n(&format!("d{i}.gov.zz"));
            a.decide(dst(i), &name, 0, 0) != b.decide(dst(i), &name, 0, 0)
        });
        assert!(differs, "200 pairs decided identically under different seeds");
    }

    #[test]
    fn flap_recovers_after_attempts() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultScope::All, FaultProfile::Flap { rate: 1.0, recover_after: 2 });
        let name = n("a.gov.zz");
        assert_eq!(plan.decide(dst(1), &name, 0, 0).drop, Some(FaultKind::Flap));
        assert_eq!(plan.decide(dst(1), &name, 1, 0).drop, Some(FaultKind::Flap));
        assert!(plan.decide(dst(1), &name, 2, 0).is_clean(), "third attempt recovers");
    }

    #[test]
    fn refused_burst_needs_pressure() {
        let plan = FaultPlan::new(3).with_rule(
            FaultScope::All,
            FaultProfile::RefusedBurst { after_queries: 10, rate: 1.0, recover_after: 1 },
        );
        let name = n("a.gov.zz");
        assert!(!plan.decide(dst(1), &name, 0, 9).refuse, "below threshold");
        assert!(plan.decide(dst(1), &name, 0, 10).refuse, "limiter engaged");
        assert!(!plan.decide(dst(1), &name, 1, 10).refuse, "backoff forgiven");
    }

    #[test]
    fn scopes_restrict_targets() {
        let plan = FaultPlan::new(5)
            .with_rule(
                FaultScope::Server(dst(1)),
                FaultProfile::Flap { rate: 1.0, recover_after: 9 },
            )
            .with_rule(
                FaultScope::Prefix(prefix24(Ipv4Addr::new(198, 51, 100, 0))),
                FaultProfile::PacketLoss { rate: 1.0 },
            );
        let name = n("a.gov.zz");
        assert_eq!(plan.decide(dst(1), &name, 0, 0).drop, Some(FaultKind::Flap));
        assert!(plan.decide(dst(2), &name, 0, 0).is_clean(), "other server untouched");
        assert_eq!(
            plan.decide(Ipv4Addr::new(198, 51, 100, 7), &name, 0, 0).drop,
            Some(FaultKind::Loss)
        );
    }

    #[test]
    fn latency_spikes_compose() {
        let plan = FaultPlan::new(5)
            .with_rule(FaultScope::All, FaultProfile::LatencySpike { rate: 1.0, extra_ms: 100 })
            .with_rule(FaultScope::All, FaultProfile::LatencySpike { rate: 1.0, extra_ms: 50 });
        let d = plan.decide(dst(1), &n("a.gov.zz"), 0, 0);
        assert_eq!(d.extra_delay_ms, 150);
        assert!(d.drop.is_none());
    }

    #[test]
    fn rates_land_in_the_right_ballpark() {
        let plan =
            FaultPlan::new(11).with_rule(FaultScope::All, FaultProfile::PacketLoss { rate: 0.3 });
        let name = n("a.gov.zz");
        let hits = (0..1000u32)
            .filter(|&i| !plan.decide(Ipv4Addr::from(i * 3 + 1), &name, 0, 0).is_clean())
            .count();
        assert!((200..400).contains(&hits), "0.3 loss hit {hits}/1000");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_rate() {
        let _ =
            FaultPlan::new(1).with_rule(FaultScope::All, FaultProfile::PacketLoss { rate: 1.5 });
    }

    #[test]
    fn blackholed_addr_always_times_out() {
        let plan = FaultPlan::new(1).with_blackholed_addrs([dst(9)]);
        assert!(!plan.is_empty(), "a blackhole set alone makes the plan non-empty");
        let name = n("a.gov.zz");
        for attempt in 0..5 {
            assert_eq!(plan.decide(dst(9), &name, attempt, 1_000).drop, Some(FaultKind::Outage));
        }
        assert!(plan.decide(dst(10), &name, 0, 0).is_clean(), "other server untouched");
    }

    #[test]
    fn blackholed_prefix_takes_out_siblings() {
        let p = prefix24(Ipv4Addr::new(198, 51, 100, 0));
        let plan = FaultPlan::new(1).with_blackholed_prefixes([p]);
        let name = n("a.gov.zz");
        for host in [1u8, 7, 254] {
            let addr = Ipv4Addr::new(198, 51, 100, host);
            assert!(plan.is_blackholed(addr));
            assert_eq!(plan.decide(addr, &name, 0, 0).drop, Some(FaultKind::Outage));
        }
        assert!(plan.decide(Ipv4Addr::new(198, 51, 101, 1), &name, 0, 0).is_clean());
    }

    #[test]
    fn blackhole_layer_does_not_perturb_rule_decisions() {
        let base = ChaosProfile::Hostile.plan(13);
        let layered = base.clone().with_blackholed_addrs([dst(200)]);
        for i in 0..100u8 {
            if dst(i) == dst(200) {
                continue;
            }
            let name = n(&format!("d{i}.gov.zz"));
            assert_eq!(
                base.decide(dst(i), &name, u32::from(i % 4), 60),
                layered.decide(dst(i), &name, u32::from(i % 4), 60),
                "decision changed outside the blackhole set"
            );
        }
    }

    #[test]
    fn degraded_addr_drops_some_attempts_and_only_those() {
        let plan = FaultPlan::new(21).with_degraded_addrs([dst(9)]).with_degrade_ppm(500_000);
        assert!(!plan.is_empty(), "a degraded set with a nonzero rate is a real fault");
        let name = n("a.gov.zz");
        let dropped = (0..64u32)
            .filter(|&a| plan.decide(dst(9), &name, a, 0).drop == Some(FaultKind::Outage))
            .count();
        assert!((10..55).contains(&dropped), "0.5 drop rate hit {dropped}/64 attempts");
        for a in 0..8 {
            assert!(plan.decide(dst(10), &name, a, 0).is_clean(), "other server untouched");
        }
    }

    #[test]
    fn degrade_rate_zero_is_inert() {
        let plan = FaultPlan::new(21).with_degraded_addrs([dst(9)]);
        assert!(plan.is_empty(), "a degraded set without a rate injects nothing");
        assert!(!plan.is_degraded(dst(9)));
        assert!(plan.decide(dst(9), &n("a.gov.zz"), 0, 0).is_clean());
    }

    #[test]
    fn degraded_prefix_covers_the_whole_slash24() {
        let p = prefix24(Ipv4Addr::new(198, 51, 100, 0));
        let plan = FaultPlan::new(4).with_degraded_prefixes([p]).with_degrade_ppm(1_000_000);
        let name = n("a.gov.zz");
        for host in [0u8, 9, 255] {
            let addr = Ipv4Addr::new(198, 51, 100, host);
            assert!(plan.is_degraded(addr));
            assert_eq!(plan.decide(addr, &name, 0, 0).drop, Some(FaultKind::Outage));
        }
        assert!(plan.decide(Ipv4Addr::new(198, 51, 101, 1), &name, 0, 0).is_clean());
    }

    #[test]
    fn degrade_layer_does_not_perturb_rule_decisions() {
        let base = ChaosProfile::Hostile.plan(13);
        let layered = base.clone().with_degraded_addrs([dst(200)]).with_degrade_ppm(400_000);
        for i in 0..100u8 {
            let name = n(&format!("d{i}.gov.zz"));
            let b = base.decide(dst(i), &name, u32::from(i % 4), 60);
            let l = layered.decide(dst(i), &name, u32::from(i % 4), 60);
            if dst(i) == dst(200) {
                // Inside the blast set the attempt either loses the dial
                // (outage) or sees the base decision unchanged.
                assert!(l.drop == Some(FaultKind::Outage) || l == b);
            } else {
                assert_eq!(b, l, "decision changed outside the degraded set");
            }
        }
    }

    #[test]
    fn blackhole_preempts_degrade() {
        let plan = FaultPlan::new(6)
            .with_blackholed_addrs([dst(3)])
            .with_degraded_addrs([dst(3)])
            .with_degrade_ppm(1);
        // Even at a 1-ppm dial the blackhole swallows every attempt.
        for a in 0..16 {
            assert_eq!(plan.decide(dst(3), &n("a.gov.zz"), a, 0).drop, Some(FaultKind::Outage));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1e6]")]
    fn rejects_bad_degrade_rate() {
        let _ = FaultPlan::new(1).with_degrade_ppm(1_000_001);
    }

    #[test]
    fn outage_wins_over_rules() {
        let plan = FaultPlan::new(3)
            .with_rule(FaultScope::All, FaultProfile::Truncation { rate: 1.0, recover_after: 9 })
            .with_blackholed_addrs([dst(4)]);
        let d = plan.decide(dst(4), &n("a.gov.zz"), 0, 0);
        assert_eq!(d.drop, Some(FaultKind::Outage));
        assert!(!d.truncate, "blackhole preempts rule evaluation");
    }

    #[test]
    fn profile_names_roundtrip() {
        for p in [ChaosProfile::Flaky, ChaosProfile::Congested, ChaosProfile::Hostile] {
            assert_eq!(ChaosProfile::parse(&p.to_string()), Some(p));
            assert!(!p.plan(1).is_empty());
        }
        assert_eq!(ChaosProfile::parse("calm"), None);
    }
}
