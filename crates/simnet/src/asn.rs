use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// An autonomous-system number.
pub type Asn = u32;

/// A prefix→ASN database, the simulation's stand-in for MaxMind's GeoIP2
/// ASN database (which the paper uses to compute Table I's |ASNns| column).
///
/// Allocations are contiguous address ranges; lookup finds the covering
/// allocation, if any.
///
/// ```
/// use govdns_simnet::AsnDb;
/// let mut db = AsnDb::new();
/// db.allocate("10.0.0.0".parse()?, "10.0.255.255".parse()?, 64500);
/// assert_eq!(db.lookup("10.0.42.7".parse()?), Some(64500));
/// assert_eq!(db.lookup("192.0.2.1".parse()?), None);
/// # Ok::<(), std::net::AddrParseError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsnDb {
    // start-of-range → (end-of-range inclusive, asn)
    ranges: BTreeMap<u32, (u32, Asn)>,
}

impl AsnDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        AsnDb::default()
    }

    /// Registers an allocation covering `start..=end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or overlaps an existing allocation —
    /// address plans in the simulation are constructed, so an overlap is a
    /// generator bug worth failing loudly on.
    pub fn allocate(&mut self, start: Ipv4Addr, end: Ipv4Addr, asn: Asn) {
        let (s, e) = (u32::from(start), u32::from(end));
        assert!(s <= e, "inverted allocation {start}-{end}");
        if let Some((&ps, &(pe, pasn))) = self.ranges.range(..=e).next_back() {
            assert!(
                pe < s,
                "allocation {start}-{end} (AS{asn}) overlaps {}-{} (AS{pasn})",
                Ipv4Addr::from(ps),
                Ipv4Addr::from(pe),
            );
        }
        self.ranges.insert(s, (e, asn));
    }

    /// The ASN whose allocation covers `addr`, if any.
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<Asn> {
        let a = u32::from(addr);
        let (_, &(end, asn)) = self.ranges.range(..=a).next_back()?;
        (a <= end).then_some(asn)
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Iterates over `(start, end, asn)` allocations in address order.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Addr, Ipv4Addr, Asn)> + '_ {
        self.ranges.iter().map(|(&s, &(e, asn))| (Ipv4Addr::from(s), Ipv4Addr::from(e), asn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn lookup_hits_inside_range_only() {
        let mut db = AsnDb::new();
        db.allocate(ip("10.0.0.0"), ip("10.0.0.255"), 1);
        db.allocate(ip("10.0.2.0"), ip("10.0.2.255"), 2);
        assert_eq!(db.lookup(ip("10.0.0.0")), Some(1));
        assert_eq!(db.lookup(ip("10.0.0.255")), Some(1));
        assert_eq!(db.lookup(ip("10.0.1.0")), None);
        assert_eq!(db.lookup(ip("10.0.2.128")), Some(2));
        assert_eq!(db.lookup(ip("9.255.255.255")), None);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn rejects_overlap() {
        let mut db = AsnDb::new();
        db.allocate(ip("10.0.0.0"), ip("10.0.1.255"), 1);
        db.allocate(ip("10.0.1.0"), ip("10.0.2.255"), 2);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn rejects_inverted() {
        let mut db = AsnDb::new();
        db.allocate(ip("10.0.1.0"), ip("10.0.0.0"), 1);
    }

    #[test]
    fn iter_in_order() {
        let mut db = AsnDb::new();
        db.allocate(ip("10.0.2.0"), ip("10.0.2.255"), 2);
        db.allocate(ip("10.0.0.0"), ip("10.0.0.255"), 1);
        let asns: Vec<Asn> = db.iter().map(|(_, _, a)| a).collect();
        assert_eq!(asns, vec![1, 2]);
        assert_eq!(db.len(), 2);
    }
}
