//! Property tests for passive-DNS coalescing and search invariants.

use proptest::prelude::*;

use govdns_model::{DateRange, DomainName, RecordData, SimDate};
use govdns_pdns::{filter, PdnsDb};

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z]{1,6}", 1..4)
        .prop_map(|labels| format!("{}.gov.zz", labels.join(".")).parse().unwrap())
}

fn span_strategy() -> impl Strategy<Value = DateRange> {
    (14_000i64..18_000, 0i64..900).prop_map(|(start, len)| {
        DateRange::new(SimDate::from_days(start), SimDate::from_days(start + len))
    })
}

proptest! {
    /// Coalescing is order-independent: any permutation of observations
    /// yields the same first/last/count.
    #[test]
    fn coalescing_is_commutative(
        name in name_strategy(),
        spans in prop::collection::vec(span_strategy(), 1..8),
    ) {
        let rdata = RecordData::Ns("ns1.prov.example".parse().unwrap());
        let mut forward = PdnsDb::new();
        for s in &spans {
            forward.observe_span(name.clone(), rdata.clone(), *s, 1);
        }
        let mut backward = PdnsDb::new();
        for s in spans.iter().rev() {
            backward.observe_span(name.clone(), rdata.clone(), *s, 1);
        }
        let f: Vec<_> = forward.lookup(&name, None).collect();
        let b: Vec<_> = backward.lookup(&name, None).collect();
        prop_assert_eq!(f.clone(), b);
        prop_assert_eq!(f[0].count, spans.len() as u64);
        prop_assert_eq!(f[0].first_seen, spans.iter().map(|s| s.start).min().unwrap());
        prop_assert_eq!(f[0].last_seen, spans.iter().map(|s| s.end).max().unwrap());
    }

    /// Every entry found by a subtree search is genuinely within the
    /// subtree, and lookup finds it too.
    #[test]
    fn subtree_search_is_sound(
        names in prop::collection::vec(name_strategy(), 1..20),
        span in span_strategy(),
    ) {
        let suffix: DomainName = "gov.zz".parse().unwrap();
        let rdata = RecordData::Ns("ns1.prov.example".parse().unwrap());
        let mut db = PdnsDb::new();
        for n in &names {
            db.observe_span(n.clone(), rdata.clone(), span, 1);
        }
        // Decoys outside the subtree.
        db.observe_span("gov.zx".parse().unwrap(), rdata.clone(), span, 1);
        db.observe_span("xgov.zz".parse().unwrap(), rdata.clone(), span, 1);

        let hits: Vec<_> = db.search_subtree(&suffix).collect();
        let unique: std::collections::BTreeSet<_> =
            names.iter().map(|n| n.to_string()).collect();
        prop_assert_eq!(hits.len(), unique.len());
        for h in &hits {
            prop_assert!(h.name.is_within(&suffix));
        }
    }

    /// A windowed search returns exactly the entries whose span overlaps
    /// the window.
    #[test]
    fn windowed_search_matches_overlap(
        spans in prop::collection::vec(span_strategy(), 1..20),
        window in span_strategy(),
    ) {
        let suffix: DomainName = "gov.zz".parse().unwrap();
        let mut db = PdnsDb::new();
        for (i, s) in spans.iter().enumerate() {
            db.observe_span(
                format!("d{i}.gov.zz").parse().unwrap(),
                RecordData::Ns("ns1.prov.example".parse().unwrap()),
                *s,
                1,
            );
        }
        let expected = spans.iter().filter(|s| s.overlaps(&window)).count();
        let got = db.search_subtree_in(&suffix, window, None).count();
        prop_assert_eq!(got, expected);
    }

    /// The stability filter keeps exactly the spans of ≥ 7 days.
    #[test]
    fn stability_filter_threshold(spans in prop::collection::vec(span_strategy(), 0..20)) {
        let mut db = PdnsDb::new();
        for (i, s) in spans.iter().enumerate() {
            db.observe_span(
                format!("d{i}.gov.zz").parse().unwrap(),
                RecordData::Ns("ns1.prov.example".parse().unwrap()),
                *s,
                1,
            );
        }
        let kept = filter::stable(db.iter()).count();
        let expected = spans.iter().filter(|s| s.len_days() > 7).count();
        prop_assert_eq!(kept, expected);
    }
}

fn rdata_strategy() -> impl Strategy<Value = RecordData> {
    prop_oneof![
        any::<[u8; 4]>().prop_map(|o| RecordData::A(o.into())),
        name_strategy().prop_map(RecordData::Ns),
        "[a-z0-9 ]{0,40}".prop_map(RecordData::Txt),
    ]
}

proptest! {
    /// TSV export/import preserves every entry exactly.
    #[test]
    fn tsv_roundtrip(
        rows in prop::collection::vec(
            (name_strategy(), rdata_strategy(), span_strategy(), 1u64..500),
            0..25,
        ),
    ) {
        let mut db = PdnsDb::new();
        for (name, rdata, span, count) in rows {
            db.observe_span(name, rdata, span, count);
        }
        let text = govdns_pdns::export::to_tsv(&db);
        let back = govdns_pdns::export::from_tsv(&text).unwrap();
        prop_assert_eq!(back.len(), db.len());
        let mut a: Vec<String> =
            db.iter().map(|e| govdns_pdns::export::entry_to_line(&e)).collect();
        let mut b: Vec<String> =
            back.iter().map(|e| govdns_pdns::export::entry_to_line(&e)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    /// The TSV parser never panics on arbitrary printable input.
    #[test]
    fn tsv_parse_never_panics(text in "[ -~\t\n]{0,300}") {
        let _ = govdns_pdns::export::from_tsv(&text);
    }
}
