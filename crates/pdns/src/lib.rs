//! # govdns-pdns
//!
//! A passive-DNS database in the mold of Farsight's DNSDB — the substrate
//! the study's longitudinal (2011–2020) analyses run on.
//!
//! The real DNSDB is fed by a worldwide sensor network and zone files and
//! coalesces observations of each unique `(rrname, rrtype, rdata)` tuple
//! into `first_seen`/`last_seen` timestamps with an observation count. The
//! paper issues *left-hand wildcard* searches (`*.gov.xx`) for NS records
//! to expand its seed domains into the full set of delegated government
//! zones, then buckets records by year to reconstruct deployment history.
//!
//! This crate reproduces exactly that query surface:
//!
//! * [`PdnsDb::observe_span`] — ingestion with DNSDB coalescing semantics,
//! * [`PdnsDb::search_subtree`] — left-hand wildcard search,
//! * [`PdnsDb::search_subtree_in`] — the same, restricted to a time window
//!   (the paper's "seen between 2020-01-01 and collection time" filter),
//! * [`SensorNetwork`] — simulated sensor coverage: records can be missed
//!   or observed late, so the database is an *under*-approximation of the
//!   zone truth, as in reality,
//! * [`filter`] — the paper's 7-day stability rule and the
//!   earliest-government-use cutoff,
//! * [`export`] — flat-file import/export, so the pipeline can run over a
//!   real passive-DNS dump instead of the simulated feed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod entry;
pub mod export;
pub mod filter;
mod sensor;

pub use db::PdnsDb;
pub use entry::PdnsEntry;
pub use sensor::{SensorConfig, SensorNetwork};
