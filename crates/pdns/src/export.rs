//! Flat-file import/export for the passive-DNS database.
//!
//! The format is one record per line, tab-separated:
//!
//! ```text
//! first_seen<TAB>last_seen<TAB>count<TAB>rrname<TAB>rrtype<TAB>rdata
//! 2015-03-01\t2020-11-30\t412\tportal.gov.br\tNS\tns1.hostdns.br
//! ```
//!
//! Dates are `YYYY-MM-DD`. This is deliberately the information content of
//! a Farsight DNSDB export — a real `dnsdb` JSONL dump converts with
//! `jq -r '[.time_first, .time_last, .count, .rrname, .rrtype, .rdata[]] | @tsv'`
//! (plus epoch→date formatting) — so the pipeline can run over real
//! passive-DNS data instead of the simulated feed.

use std::fmt::Write as _;

use govdns_model::{DateRange, DomainName, RecordData, SimDate, Soa};

use crate::{PdnsDb, PdnsEntry};

/// Errors from parsing a TSV export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TsvError {}

/// Serializes every entry to the TSV format.
pub fn to_tsv(db: &PdnsDb) -> String {
    let mut out = String::new();
    for e in db.iter() {
        let _ = writeln!(
            out,
            "{}\t{}\t{}\t{}\t{}\t{}",
            e.first_seen,
            e.last_seen,
            e.count,
            e.name,
            e.rtype(),
            rdata_text(&e.rdata),
        );
    }
    out
}

fn rdata_text(data: &RecordData) -> String {
    match data {
        // SOA rdata serializes as its 7 presentation fields.
        RecordData::Soa(soa) => soa.to_string(),
        // TXT goes raw: the Display form's surrounding quotes would not
        // survive a round trip.
        RecordData::Txt(t) => t.clone(),
        other => other.to_string(),
    }
}

/// Parses a TSV export into a database. Lines starting with `#` and blank
/// lines are skipped.
///
/// # Errors
///
/// Returns a [`TsvError`] naming the first malformed line.
pub fn from_tsv(text: &str) -> Result<PdnsDb, TsvError> {
    let mut db = PdnsDb::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        // Only strip a carriage return: trailing tabs delimit a
        // legitimately empty rdata field (an empty TXT record).
        let line = raw.strip_suffix('\r').unwrap_or(raw);
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 6 {
            return Err(TsvError {
                line: line_no,
                message: format!("expected 6 tab-separated fields, found {}", fields.len()),
            });
        }
        let err = |message: String| TsvError { line: line_no, message };
        let first: SimDate = fields[0].parse().map_err(|e: String| err(e))?;
        let last: SimDate = fields[1].parse().map_err(|e: String| err(e))?;
        if last < first {
            return Err(err(format!("last_seen {last} precedes first_seen {first}")));
        }
        let count: u64 =
            fields[2].parse().map_err(|_| err(format!("bad count `{}`", fields[2])))?;
        let name: DomainName =
            fields[3].parse().map_err(|e| err(format!("bad rrname `{}`: {e}", fields[3])))?;
        let rdata = parse_rdata(fields[4], fields[5]).map_err(err)?;
        db.observe_span(name, rdata, DateRange::new(first, last), count);
    }
    Ok(db)
}

fn parse_rdata(rtype: &str, rdata: &str) -> Result<RecordData, String> {
    match rtype.to_ascii_uppercase().as_str() {
        "A" => rdata.parse().map(RecordData::A).map_err(|_| format!("bad A rdata `{rdata}`")),
        "AAAA" => {
            rdata.parse().map(RecordData::Aaaa).map_err(|_| format!("bad AAAA rdata `{rdata}`"))
        }
        "NS" => rdata
            .trim_end_matches('.')
            .parse()
            .map(RecordData::Ns)
            .map_err(|e| format!("bad NS rdata `{rdata}`: {e}")),
        "CNAME" => rdata
            .trim_end_matches('.')
            .parse()
            .map(RecordData::Cname)
            .map_err(|e| format!("bad CNAME rdata `{rdata}`: {e}")),
        "PTR" => rdata
            .trim_end_matches('.')
            .parse()
            .map(RecordData::Ptr)
            .map_err(|e| format!("bad PTR rdata `{rdata}`: {e}")),
        "TXT" => Ok(RecordData::Txt(rdata.to_owned())),
        "SOA" => {
            let parts: Vec<&str> = rdata.split_whitespace().collect();
            if parts.len() != 7 {
                return Err(format!("SOA rdata needs 7 fields, found {}", parts.len()));
            }
            let mname: DomainName = parts[0]
                .trim_end_matches('.')
                .parse()
                .map_err(|e| format!("bad SOA mname: {e}"))?;
            let rname: DomainName = parts[1]
                .trim_end_matches('.')
                .parse()
                .map_err(|e| format!("bad SOA rname: {e}"))?;
            let nums: Vec<u32> = parts[2..]
                .iter()
                .map(|p| p.parse::<u32>())
                .collect::<Result<_, _>>()
                .map_err(|_| "SOA timers must be integers".to_owned())?;
            Ok(RecordData::Soa(Soa {
                mname,
                rname,
                serial: nums[0],
                refresh: nums[1],
                retry: nums[2],
                expire: nums[3],
                minimum: nums[4],
            }))
        }
        other => Err(format!("unsupported rrtype `{other}`")),
    }
}

/// Round-trips a single entry for testing convenience.
pub fn entry_to_line(e: &PdnsEntry) -> String {
    format!(
        "{}\t{}\t{}\t{}\t{}\t{}",
        e.first_seen,
        e.last_seen,
        e.count,
        e.name,
        e.rtype(),
        rdata_text(&e.rdata),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::RecordType;

    const SAMPLE: &str = "\
# passive-dns export
2015-03-01\t2020-11-30\t412\tportal.gov.br\tNS\tns1.hostdns.br.
2016-01-01\t2016-02-01\t3\tportal.gov.br\tA\t192.0.2.80

2018-06-01\t2021-02-01\t99\tportal.gov.br\tSOA\tns1.hostdns.br hostmaster.hostdns.br 7 7200 900 1209600 3600
";

    #[test]
    fn parses_sample_with_comments_and_blanks() {
        let db = from_tsv(SAMPLE).unwrap();
        assert_eq!(db.len(), 3);
        let name: DomainName = "portal.gov.br".parse().unwrap();
        let ns: Vec<_> = db.lookup(&name, Some(RecordType::Ns)).collect();
        assert_eq!(ns.len(), 1);
        assert_eq!(ns[0].count, 412);
        assert_eq!(ns[0].first_seen, SimDate::from_ymd(2015, 3, 1));
        let soa: Vec<_> = db.lookup(&name, Some(RecordType::Soa)).collect();
        assert_eq!(soa[0].rdata.as_soa().unwrap().serial, 7);
    }

    #[test]
    fn roundtrips() {
        let db = from_tsv(SAMPLE).unwrap();
        let text = to_tsv(&db);
        let back = from_tsv(&text).unwrap();
        assert_eq!(back.len(), db.len());
        let mut a: Vec<String> = db.iter().map(|e| entry_to_line(&e)).collect();
        let mut b: Vec<String> = back.iter().map(|e| entry_to_line(&e)).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn error_cases_carry_line_numbers() {
        let bad = "2015-01-01\t2014-01-01\t1\ta.gov.zz\tNS\tns1.x";
        let e = from_tsv(bad).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("precedes"));

        let bad = "# ok\nnot-a-date\t2020-01-01\t1\ta.gov.zz\tNS\tns1.x";
        assert_eq!(from_tsv(bad).unwrap_err().line, 2);

        let bad = "2015-01-01\t2020-01-01\t1\ta.gov.zz\tWKS\twhatever";
        assert!(from_tsv(bad).unwrap_err().message.contains("unsupported"));

        let bad = "2015-01-01\t2020-01-01\t1\ta.gov.zz\tNS";
        assert!(from_tsv(bad).unwrap_err().message.contains("6 tab-separated"));
    }
}
