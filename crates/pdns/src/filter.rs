//! The study's record filters (§III-C).
//!
//! Two filters precede every longitudinal analysis:
//!
//! 1. **Stability** — records whose observed span is shorter than 7 days
//!    are dropped. Short-lived records represent misconfigurations, DDoS
//!    protection churn, or expirations; 7 days is the largest default
//!    cache TTL among popular resolvers, so even a quickly corrected error
//!    can echo in sensors for that long.
//! 2. **Earliest government use** — for seed domains identified by a
//!    registered domain rather than a reserved suffix, observations before
//!    the earliest date a government demonstrably used the domain (via the
//!    Web Archive) are excluded.

use govdns_model::{SimDate, DAYS_PER_WEEK};

use crate::PdnsEntry;

/// The paper's stability threshold: 7 days.
pub const STABILITY_THRESHOLD_DAYS: i64 = DAYS_PER_WEEK;

/// Whether an entry passes the 7-day stability rule.
pub fn is_stable(entry: &PdnsEntry) -> bool {
    entry.span_days() >= STABILITY_THRESHOLD_DAYS
}

/// Keeps only entries whose observed span is at least
/// [`STABILITY_THRESHOLD_DAYS`].
pub fn stable<I>(entries: I) -> impl Iterator<Item = PdnsEntry>
where
    I: IntoIterator<Item = PdnsEntry>,
{
    entries.into_iter().filter(is_stable)
}

/// Keeps only entries still observed on or after `cutoff` — used to trim
/// pre-government history when a registered domain previously belonged to
/// someone else.
pub fn seen_since<I>(entries: I, cutoff: SimDate) -> impl Iterator<Item = PdnsEntry>
where
    I: IntoIterator<Item = PdnsEntry>,
{
    entries.into_iter().filter(move |e| e.last_seen >= cutoff)
}

/// Clamps entries to government use: drops entries entirely before
/// `government_start`, and advances `first_seen` to that date otherwise.
pub fn clamp_to_government_use<I>(
    entries: I,
    government_start: SimDate,
) -> impl Iterator<Item = PdnsEntry>
where
    I: IntoIterator<Item = PdnsEntry>,
{
    entries.into_iter().filter_map(move |mut e| {
        if e.last_seen < government_start {
            return None;
        }
        if e.first_seen < government_start {
            e.first_seen = government_start;
        }
        Some(e)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::{DomainName, RecordData};

    fn entry(first: SimDate, last: SimDate) -> PdnsEntry {
        let name: DomainName = "a.gov.zz".parse().unwrap();
        PdnsEntry {
            name: name.clone(),
            rdata: RecordData::Ns("ns1.gov.zz".parse().unwrap()),
            first_seen: first,
            last_seen: last,
            count: 1,
        }
    }

    fn d(y: i32, m: u32, dd: u32) -> SimDate {
        SimDate::from_ymd(y, m, dd)
    }

    #[test]
    fn stability_threshold_is_seven_days() {
        assert!(!is_stable(&entry(d(2015, 1, 1), d(2015, 1, 7)))); // 6-day span
        assert!(is_stable(&entry(d(2015, 1, 1), d(2015, 1, 8)))); // 7-day span
        let kept: Vec<_> =
            stable(vec![entry(d(2015, 1, 1), d(2015, 1, 2)), entry(d(2015, 1, 1), d(2016, 1, 1))])
                .collect();
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn seen_since_drops_expired_history() {
        let kept: Vec<_> = seen_since(
            vec![entry(d(2011, 1, 1), d(2012, 1, 1)), entry(d(2011, 1, 1), d(2020, 1, 1))],
            d(2015, 1, 1),
        )
        .collect();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].last_seen, d(2020, 1, 1));
    }

    #[test]
    fn clamp_advances_first_seen() {
        let kept: Vec<_> = clamp_to_government_use(
            vec![
                entry(d(2011, 1, 1), d(2012, 1, 1)), // entirely pre-government
                entry(d(2011, 1, 1), d(2020, 1, 1)), // straddles the cutoff
                entry(d(2016, 1, 1), d(2020, 1, 1)), // entirely after
            ],
            d(2014, 6, 1),
        )
        .collect();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].first_seen, d(2014, 6, 1));
        assert_eq!(kept[1].first_seen, d(2016, 1, 1));
    }
}
