use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, RecordData};

use crate::PdnsDb;

/// Parameters of the simulated sensor network.
///
/// Farsight's sensors see only the traffic that happens to flow past them,
/// so a passive database *under*-approximates zone truth: some records are
/// never observed, and first-seen dates lag the record's actual creation.
/// Both effects matter to the study — they are why it validates seed
/// domains against other sources and treats PDNS-derived dates carefully.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorConfig {
    /// Probability that a record is ever observed at all.
    pub coverage: f64,
    /// Maximum lag, in days, between a record appearing in a zone and the
    /// first sensor report (uniform in `0..=max_first_seen_lag_days`).
    pub max_first_seen_lag_days: i64,
    /// Maximum number of days before a record's removal that the last
    /// sensor report occurs.
    pub max_last_seen_lead_days: i64,
}

impl SensorConfig {
    /// Full, instantaneous coverage — sensor output equals zone truth.
    pub fn perfect() -> Self {
        SensorConfig { coverage: 1.0, max_first_seen_lag_days: 0, max_last_seen_lead_days: 0 }
    }

    /// Realistic coverage: a few records missed, observation dates lagging
    /// by up to a couple of weeks.
    pub fn realistic() -> Self {
        SensorConfig { coverage: 0.97, max_first_seen_lag_days: 14, max_last_seen_lead_days: 7 }
    }
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig::realistic()
    }
}

/// The simulated sensor network feeding a [`PdnsDb`].
#[derive(Debug)]
pub struct SensorNetwork {
    config: SensorConfig,
    rng: SmallRng,
    db: PdnsDb,
}

impl SensorNetwork {
    /// Creates a sensor network with its own database.
    pub fn new(config: SensorConfig, seed: u64) -> Self {
        SensorNetwork { config, rng: SmallRng::seed_from_u64(seed), db: PdnsDb::new() }
    }

    /// Reports that `rdata` existed at `name` throughout `truth` (the
    /// record's actual lifetime in the zone). The database receives a
    /// possibly shortened span — or nothing, if no sensor saw the record.
    pub fn report_span(&mut self, name: DomainName, rdata: RecordData, truth: DateRange) {
        if self.config.coverage < 1.0 && !self.rng.gen_bool(self.config.coverage) {
            return;
        }
        let lag = if self.config.max_first_seen_lag_days > 0 {
            self.rng.gen_range(0..=self.config.max_first_seen_lag_days)
        } else {
            0
        };
        let lead = if self.config.max_last_seen_lead_days > 0 {
            self.rng.gen_range(0..=self.config.max_last_seen_lead_days)
        } else {
            0
        };
        let start = truth.start + lag;
        let end = truth.end + (-lead);
        if start > end {
            // The record lived for less time than the observation jitter;
            // sensors never caught a stable view of it.
            return;
        }
        // Report volume scales (roughly) with the record's lifetime.
        let count = (truth.len_days() as u64 / 30).max(1);
        self.db.observe_span(name, rdata, DateRange::new(start, end), count);
    }

    /// Consumes the network, yielding the accumulated database.
    pub fn into_db(self) -> PdnsDb {
        self.db
    }

    /// The database accumulated so far.
    pub fn db(&self) -> &PdnsDb {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::SimDate;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ns(s: &str) -> RecordData {
        RecordData::Ns(n(s))
    }

    fn years(a: i32, b: i32) -> DateRange {
        DateRange::new(SimDate::from_ymd(a, 1, 1), SimDate::from_ymd(b, 12, 31))
    }

    #[test]
    fn perfect_sensors_record_exact_spans() {
        let mut s = SensorNetwork::new(SensorConfig::perfect(), 1);
        s.report_span(n("a.gov.zz"), ns("ns1.gov.zz"), years(2012, 2018));
        let db = s.into_db();
        let e: Vec<_> = db.lookup(&n("a.gov.zz"), None).collect();
        assert_eq!(e[0].first_seen, SimDate::from_ymd(2012, 1, 1));
        assert_eq!(e[0].last_seen, SimDate::from_ymd(2018, 12, 31));
    }

    #[test]
    fn imperfect_sensors_miss_some_records() {
        let cfg = SensorConfig { coverage: 0.5, ..SensorConfig::perfect() };
        let mut s = SensorNetwork::new(cfg, 42);
        for i in 0..200 {
            s.report_span(
                format!("d{i}.gov.zz").parse().unwrap(),
                ns("ns1.gov.zz"),
                years(2012, 2018),
            );
        }
        let got = s.into_db().len();
        assert!((60..140).contains(&got), "coverage 0.5 kept {got}/200");
    }

    #[test]
    fn lag_shrinks_observed_span() {
        let cfg = SensorConfig {
            coverage: 1.0,
            max_first_seen_lag_days: 10,
            max_last_seen_lead_days: 10,
        };
        let mut s = SensorNetwork::new(cfg, 7);
        s.report_span(n("a.gov.zz"), ns("ns1.gov.zz"), years(2012, 2018));
        let db = s.into_db();
        let e: Vec<_> = db.lookup(&n("a.gov.zz"), None).collect();
        assert!(e[0].first_seen >= SimDate::from_ymd(2012, 1, 1));
        assert!(e[0].last_seen <= SimDate::from_ymd(2018, 12, 31));
        assert!(e[0].first_seen <= SimDate::from_ymd(2012, 1, 11));
    }

    #[test]
    fn ephemeral_records_can_vanish_entirely() {
        let cfg = SensorConfig {
            coverage: 1.0,
            max_first_seen_lag_days: 30,
            max_last_seen_lead_days: 30,
        };
        let mut s = SensorNetwork::new(cfg, 9);
        let day = SimDate::from_ymd(2015, 6, 1);
        for i in 0..50 {
            s.report_span(
                format!("e{i}.gov.zz").parse().unwrap(),
                ns("ns1.gov.zz"),
                DateRange::new(day, day + 2),
            );
        }
        assert!(s.into_db().len() < 50, "some 3-day records should be missed");
    }
}
