use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, RecordData, RecordType, SimDate};

use crate::PdnsEntry;

/// A passive-DNS database with DNSDB semantics: observations of the same
/// `(rrname, rrtype, rdata)` tuple coalesce into one entry whose
/// `first_seen`/`last_seen` bracket every report.
///
/// Names are indexed by reversed label order so a left-hand wildcard
/// search (`*.gov.xx`) is a contiguous range scan.
///
/// ```
/// use govdns_pdns::PdnsDb;
/// use govdns_model::{RecordData, SimDate, DateRange};
///
/// let mut db = PdnsDb::new();
/// let span = DateRange::new(SimDate::from_ymd(2015, 1, 1), SimDate::from_ymd(2019, 6, 1));
/// db.observe_span("portal.gov.zz".parse()?, RecordData::Ns("ns1.gov.zz".parse()?), span, 10);
///
/// let hits: Vec<_> = db.search_subtree(&"gov.zz".parse()?).collect();
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].count, 10);
/// # Ok::<(), govdns_model::ModelError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PdnsDb {
    /// reversed-name key → entries at that owner name.
    names: BTreeMap<String, NameEntries>,
    total_entries: usize,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NameEntries {
    name: DomainName,
    /// Keyed by `(rtype code, rdata presentation)` for a stable order.
    records: BTreeMap<(u16, String), Stamp>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Stamp {
    rdata: RecordData,
    first_seen: SimDate,
    last_seen: SimDate,
    count: u64,
}

/// Reversed-label key: `www.gov.zz` → `zz.gov.www`. Range scans over a
/// suffix become prefix scans over this key.
fn rev_key(name: &DomainName) -> String {
    let mut labels: Vec<&str> = name.labels().iter().map(|l| l.as_str()).collect();
    labels.reverse();
    labels.join(".")
}

impl PdnsDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        PdnsDb::default()
    }

    /// Records that `rdata` was observed at `name` on every day of `span`,
    /// contributing `count` sensor reports.
    pub fn observe_span(
        &mut self,
        name: DomainName,
        rdata: RecordData,
        span: DateRange,
        count: u64,
    ) {
        let key = rev_key(&name);
        let slot = self
            .names
            .entry(key)
            .or_insert_with(|| NameEntries { name: name.clone(), records: BTreeMap::new() });
        let rkey = (rdata.rtype().code(), rdata.to_string());
        match slot.records.get_mut(&rkey) {
            Some(stamp) => {
                stamp.first_seen = stamp.first_seen.min(span.start);
                stamp.last_seen = stamp.last_seen.max(span.end);
                stamp.count += count;
            }
            None => {
                slot.records.insert(
                    rkey,
                    Stamp { rdata, first_seen: span.start, last_seen: span.end, count },
                );
                self.total_entries += 1;
            }
        }
    }

    /// Records a single-day observation.
    pub fn observe(&mut self, name: DomainName, rdata: RecordData, date: SimDate) {
        self.observe_span(name, rdata, DateRange::new(date, date), 1);
    }

    /// Number of unique `(rrname, rrtype, rdata)` entries.
    pub fn len(&self) -> usize {
        self.total_entries
    }

    /// Whether the database holds no entries.
    pub fn is_empty(&self) -> bool {
        self.total_entries == 0
    }

    /// All entries at exactly `name`, optionally restricted to one type.
    pub fn lookup(
        &self,
        name: &DomainName,
        rtype: Option<RecordType>,
    ) -> impl Iterator<Item = PdnsEntry> + '_ {
        self.names.get(&rev_key(name)).into_iter().flat_map(move |slot| slot.entries(rtype))
    }

    /// Left-hand wildcard search: every entry at `suffix` or beneath it.
    ///
    /// This is the DNSDB query shape the paper uses to expand each seed
    /// domain (`*.gov.xx` NS lookups).
    pub fn search_subtree<'a>(
        &'a self,
        suffix: &DomainName,
    ) -> impl Iterator<Item = PdnsEntry> + 'a {
        let prefix = rev_key(suffix);
        // Keys under the suffix are `prefix` itself plus `prefix.<more>`.
        // `/` is the successor of `.` in ASCII, which bounds the scan.
        let upper = format!("{prefix}/");
        self.names
            .range(prefix.clone()..upper)
            .filter(move |(k, _)| **k == prefix || k[prefix.len()..].starts_with('.'))
            .flat_map(|(_, slot)| slot.entries(None))
    }

    /// Wildcard search restricted to entries observed within `window` and
    /// optionally to one record type.
    pub fn search_subtree_in<'a>(
        &'a self,
        suffix: &DomainName,
        window: DateRange,
        rtype: Option<RecordType>,
    ) -> impl Iterator<Item = PdnsEntry> + 'a {
        self.search_subtree(suffix)
            .filter(move |e| e.active_in(&window))
            .filter(move |e| rtype.is_none_or(|t| e.rtype() == t))
    }

    /// Iterates over every entry in the database, in reversed-name order.
    pub fn iter(&self) -> impl Iterator<Item = PdnsEntry> + '_ {
        self.names.values().flat_map(|slot| slot.entries(None))
    }
}

impl NameEntries {
    fn entries(&self, rtype: Option<RecordType>) -> impl Iterator<Item = PdnsEntry> + '_ {
        self.records.values().filter(move |s| rtype.is_none_or(|t| s.rdata.rtype() == t)).map(|s| {
            PdnsEntry {
                name: self.name.clone(),
                rdata: s.rdata.clone(),
                first_seen: s.first_seen,
                last_seen: s.last_seen,
                count: s.count,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ns(s: &str) -> RecordData {
        RecordData::Ns(n(s))
    }

    fn d(y: i32, m: u32, dd: u32) -> SimDate {
        SimDate::from_ymd(y, m, dd)
    }

    #[test]
    fn coalesces_overlapping_observations() {
        let mut db = PdnsDb::new();
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 10));
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2014, 12, 1));
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2015, 6, 1));
        assert_eq!(db.len(), 1);
        let e: Vec<_> = db.lookup(&n("a.gov.zz"), None).collect();
        assert_eq!(e[0].first_seen, d(2014, 12, 1));
        assert_eq!(e[0].last_seen, d(2015, 6, 1));
        assert_eq!(e[0].count, 3);
    }

    #[test]
    fn distinct_rdata_are_distinct_entries() {
        let mut db = PdnsDb::new();
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1));
        db.observe(n("a.gov.zz"), ns("ns2.gov.zz"), d(2015, 1, 1));
        db.observe(n("a.gov.zz"), RecordData::A("192.0.2.1".parse().unwrap()), d(2015, 1, 1));
        assert_eq!(db.len(), 3);
        assert_eq!(db.lookup(&n("a.gov.zz"), Some(RecordType::Ns)).count(), 2);
    }

    #[test]
    fn subtree_search_matches_label_boundaries_only() {
        let mut db = PdnsDb::new();
        db.observe(n("gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1));
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1));
        db.observe(n("b.a.gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1));
        db.observe(n("xgov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1)); // decoy
        db.observe(n("gov.zx"), ns("ns1.gov.zz"), d(2015, 1, 1)); // decoy
        let hits: Vec<String> =
            db.search_subtree(&n("gov.zz")).map(|e| e.name.to_string()).collect();
        assert_eq!(hits.len(), 3);
        assert!(hits.contains(&"gov.zz".to_string()));
        assert!(hits.contains(&"a.gov.zz".to_string()));
        assert!(hits.contains(&"b.a.gov.zz".to_string()));
    }

    #[test]
    fn windowed_search_filters_by_activity() {
        let mut db = PdnsDb::new();
        db.observe_span(
            n("old.gov.zz"),
            ns("ns1.gov.zz"),
            DateRange::new(d(2011, 1, 1), d(2013, 1, 1)),
            5,
        );
        db.observe_span(
            n("new.gov.zz"),
            ns("ns1.gov.zz"),
            DateRange::new(d(2019, 1, 1), d(2021, 2, 1)),
            5,
        );
        let recent = DateRange::new(d(2020, 1, 1), d(2021, 2, 28));
        let hits: Vec<String> = db
            .search_subtree_in(&n("gov.zz"), recent, Some(RecordType::Ns))
            .map(|e| e.name.to_string())
            .collect();
        assert_eq!(hits, vec!["new.gov.zz"]);
    }

    #[test]
    fn iter_covers_everything() {
        let mut db = PdnsDb::new();
        db.observe(n("a.gov.zz"), ns("ns1.gov.zz"), d(2015, 1, 1));
        db.observe(n("b.gov.yy"), ns("ns1.gov.yy"), d(2015, 1, 1));
        assert_eq!(db.iter().count(), 2);
        assert!(!db.is_empty());
    }

    #[test]
    fn empty_db_finds_nothing() {
        let db = PdnsDb::new();
        assert!(db.is_empty());
        assert_eq!(db.search_subtree(&n("gov.zz")).count(), 0);
        assert_eq!(db.lookup(&n("gov.zz"), None).count(), 0);
    }
}
