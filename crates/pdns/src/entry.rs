use std::fmt;

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, RecordData, RecordType, SimDate};

/// One coalesced passive-DNS entry: a unique `(rrname, rrtype, rdata)`
/// tuple with the span over which sensors observed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PdnsEntry {
    /// The record's owner name.
    pub name: DomainName,
    /// The observed rdata.
    pub rdata: RecordData,
    /// First date any sensor reported the tuple.
    pub first_seen: SimDate,
    /// Most recent date any sensor reported the tuple.
    pub last_seen: SimDate,
    /// Total number of sensor reports coalesced into this entry.
    pub count: u64,
}

impl PdnsEntry {
    /// The record type of the rdata.
    pub fn rtype(&self) -> RecordType {
        self.rdata.rtype()
    }

    /// The observation span as an inclusive range.
    pub fn span(&self) -> DateRange {
        DateRange::new(self.first_seen, self.last_seen)
    }

    /// Number of days between first and last observation (0 for a
    /// single-day record). The paper's stability filter drops entries
    /// where this is below 7.
    pub fn span_days(&self) -> i64 {
        self.last_seen - self.first_seen
    }

    /// Whether the entry was observed at any point within `window`.
    pub fn active_in(&self, window: &DateRange) -> bool {
        self.span().overlaps(window)
    }
}

impl fmt::Display for PdnsEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} [{} .. {}] x{}",
            self.name,
            self.rtype(),
            self.rdata,
            self.first_seen,
            self.last_seen,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> PdnsEntry {
        PdnsEntry {
            name: "a.gov.zz".parse().unwrap(),
            rdata: RecordData::Ns("ns1.gov.zz".parse().unwrap()),
            first_seen: SimDate::from_ymd(2015, 1, 1),
            last_seen: SimDate::from_ymd(2015, 3, 1),
            count: 42,
        }
    }

    #[test]
    fn span_and_activity() {
        let e = entry();
        assert_eq!(e.span_days(), 59);
        assert!(e.active_in(&DateRange::year(2015)));
        assert!(!e.active_in(&DateRange::year(2016)));
        let edge = DateRange::new(SimDate::from_ymd(2015, 3, 1), SimDate::from_ymd(2015, 4, 1));
        assert!(e.active_in(&edge), "inclusive boundaries overlap");
    }

    #[test]
    fn display_mentions_type_and_span() {
        let s = entry().to_string();
        assert!(s.contains("NS") && s.contains("2015-01-01") && s.contains("x42"));
    }
}
