//! Property tests pinning the severity contracts: every severity
//! function is bounded to 0–100 and monotone in its risk direction —
//! more lame servers is never less severe, more redundancy (hosts,
//! addresses) is never more severe, a bigger provider share is never
//! less severe, and the consistency-class ladder is ordered.

use govdns_core::analysis::consistency::ConsistencyClass;
use govdns_smell::{glue_severity, lame_severity, monoculture_severity, stale_severity};
use proptest::prelude::*;

proptest! {
    #[test]
    fn lame_severity_is_monotone_and_bounded(
        listed in 1usize..16,
        a in 0usize..16,
        b in 0usize..16,
    ) {
        let (lo, hi) = (a.min(b).min(listed), a.max(b).min(listed));
        prop_assert!(lame_severity(lo, listed) <= lame_severity(hi, listed));
        prop_assert!(lame_severity(hi, listed) <= 100);
        prop_assert_eq!(lame_severity(listed, listed), 100);
        prop_assert_eq!(lame_severity(0, listed), 0);
    }

    #[test]
    fn glue_severity_decreases_with_redundancy(
        h1 in 1usize..8,
        h2 in 1usize..8,
        a1 in 1usize..8,
        a2 in 1usize..8,
    ) {
        let (h_lo, h_hi) = (h1.min(h2), h1.max(h2));
        let (a_lo, a_hi) = (a1.min(a2), a1.max(a2));
        // More hosts and more addresses never score worse.
        prop_assert!(glue_severity(h_hi, a_hi) <= glue_severity(h_lo, a_lo));
        prop_assert!(glue_severity(h_lo, a_lo) <= 100);
        prop_assert!(glue_severity(h_hi, a_hi) >= 50, "a single-prefix deployment is never trivial");
    }

    #[test]
    fn monoculture_severity_is_share_monotone(s1 in 0u64..2_000_000, s2 in 0u64..2_000_000) {
        let (lo, hi) = (s1.min(s2), s1.max(s2));
        prop_assert!(monoculture_severity(lo) <= monoculture_severity(hi));
        prop_assert!(monoculture_severity(hi) <= 100);
        prop_assert!(monoculture_severity(lo) >= 40);
    }

    #[test]
    fn stale_severity_ladder_is_ordered(lame in any::<bool>()) {
        let ladder = [
            ConsistencyClass::PSubsetC,
            ConsistencyClass::CSubsetP,
            ConsistencyClass::PartialOverlap,
            ConsistencyClass::DisjointIpOverlap,
            ConsistencyClass::DisjointNoIp,
        ];
        for pair in ladder.windows(2) {
            prop_assert!(stale_severity(pair[0], lame) < stale_severity(pair[1], lame));
        }
        for class in ladder {
            // The lame bump never reorders the ladder or escapes 0–100.
            prop_assert!(stale_severity(class, false) <= stale_severity(class, true));
            prop_assert!(stale_severity(class, true) <= 100);
        }
        prop_assert_eq!(stale_severity(ConsistencyClass::Equal, false), 0);
    }
}
