//! # govdns-smell
//!
//! Operational smell detection with trace-cited evidence — the §V
//! companion to the measurement pipeline, per Radwan & Heckel's smell
//! catalogue ("Detecting and Refactoring Operational Smells within the
//! DNS"). The detectors themselves run over the measured delegation
//! graph in `govdns-core` ([`SmellAnalysis`], re-exported here); this
//! crate wraps them into a [`SmellReport`]:
//!
//! * **byte-stable canonical JSON** — fixed field order, no whitespace,
//!   integer severities: identically seeded campaigns produce
//!   byte-identical reports at any worker count, so the report is a CI
//!   gate artifact (same discipline as the SPOF and diff reports);
//! * **evidence chains** — every verdict cites flight-recorder events
//!   by `(domain, seq)`; `govdns_trace::TraceLog::resolve` checks each
//!   citation against the trace file;
//! * **filters and explain** — per-kind filtering and per-domain
//!   drill-downs for the `examples/smell.rs` CLI;
//! * **round-tripping** — [`SmellReport::from_canonical_json`] parses a
//!   written report back, exactly, for `inspect` mode and for the
//!   smell-transition section of `govdns-diff`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use govdns_diff::json::{self, escape_into, Json};
use govdns_world::CountryCode;

pub use govdns_core::analysis::smells::{
    cycle_severity, glue_severity, lame_severity, monoculture_severity, stale_severity, Citation,
    SmellAnalysis, SmellKind, SmellVerdict,
};

/// A finished smell report: the analysis plus the campaign recipe that
/// produced it, with a byte-stable canonical encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct SmellReport {
    /// World/chaos/sampling seed of the run.
    pub seed: u64,
    /// Campaign scale, parts per million of the generated world.
    pub scale_ppm: u64,
    /// The smell pass (verdicts ordered by `(domain, kind)`).
    pub analysis: SmellAnalysis,
}

impl SmellReport {
    /// Wraps a computed analysis with its run recipe.
    pub fn from_analysis(analysis: &SmellAnalysis, seed: u64, scale_ppm: u64) -> Self {
        SmellReport { seed, scale_ppm, analysis: analysis.clone() }
    }

    /// Keeps only verdicts of one kind (summary counters recomputed).
    pub fn filtered(&self, kind: SmellKind) -> SmellReport {
        let verdicts: Vec<SmellVerdict> =
            self.analysis.verdicts.iter().filter(|v| v.kind == kind).cloned().collect();
        SmellReport { seed: self.seed, scale_ppm: self.scale_ppm, analysis: rebuild(verdicts) }
    }

    /// The canonical byte-stable encoding: fixed field order, no
    /// whitespace, integers only — two identically seeded runs produce
    /// identical bytes at any worker count.
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ =
            write!(out, "{{\"seed\":{},\"scale_ppm\":{},\"verdicts\":[", self.seed, self.scale_ppm);
        for (i, v) in self.analysis.verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"domain\":");
            escape_into(&v.domain.to_string(), &mut out);
            out.push_str(",\"country\":");
            escape_into(&v.country.to_string(), &mut out);
            let _ = write!(
                out,
                ",\"kind\":\"{}\",\"severity\":{},\"detail\":",
                v.kind.as_str(),
                v.severity
            );
            escape_into(&v.detail, &mut out);
            out.push_str(",\"refactoring\":");
            escape_into(&v.refactoring, &mut out);
            out.push_str(",\"evidence\":[");
            for (j, c) in v.evidence.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"seq\":{},\"step\":\"{}\",\"line\":", c.seq, c.step);
                escape_into(&c.line, &mut out);
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("],\"by_kind\":{");
        for (i, (kind, count)) in self.analysis.by_kind.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{kind}\":{count}");
        }
        let _ = write!(
            out,
            "}},\"domains_affected\":{},\"evidence_cited\":{}}}",
            self.analysis.domains_affected, self.analysis.evidence_cited
        );
        out
    }

    /// Parses a canonical report back, exactly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem.
    pub fn from_canonical_json(text: &str) -> Result<SmellReport, String> {
        let root = json::parse(text)?;
        let seed = root.get("seed").and_then(Json::as_u64).ok_or("missing seed")?;
        let scale_ppm = root.get("scale_ppm").and_then(Json::as_u64).ok_or("missing scale_ppm")?;
        let mut verdicts = Vec::new();
        for v in root.get("verdicts").and_then(Json::as_arr).ok_or("missing verdicts")? {
            let field = |k: &str| -> Result<&str, String> {
                v.get(k).and_then(Json::as_str).ok_or(format!("verdict missing {k}"))
            };
            let kind_label = field("kind")?;
            let kind =
                SmellKind::parse(kind_label).ok_or(format!("unknown smell kind {kind_label}"))?;
            let mut evidence = Vec::new();
            for c in v.get("evidence").and_then(Json::as_arr).ok_or("verdict missing evidence")? {
                evidence.push(Citation {
                    seq: c.get("seq").and_then(Json::as_u64).ok_or("citation missing seq")? as u32,
                    step: c
                        .get("step")
                        .and_then(Json::as_str)
                        .ok_or("citation missing step")?
                        .to_owned(),
                    line: c
                        .get("line")
                        .and_then(Json::as_str)
                        .ok_or("citation missing line")?
                        .to_owned(),
                });
            }
            verdicts.push(SmellVerdict {
                kind,
                domain: field("domain")?.parse().map_err(|e| format!("bad domain: {e:?}"))?,
                country: CountryCode::new(field("country")?),
                severity: v
                    .get("severity")
                    .and_then(Json::as_u64)
                    .ok_or("verdict missing severity")? as u32,
                detail: field("detail")?.to_owned(),
                refactoring: field("refactoring")?.to_owned(),
                evidence,
            });
        }
        let mut analysis = rebuild(verdicts);
        // Trust the recorded evidence tally (rebuild recomputes it from
        // the verdicts, which is the same number by construction — but
        // asserting the file's own value keeps round trips exact).
        analysis.evidence_cited =
            root.get("evidence_cited").and_then(Json::as_u64).ok_or("missing evidence_cited")?;
        Ok(SmellReport { seed, scale_ppm, analysis })
    }

    /// Deterministic human-readable summary (no worker counts, no
    /// paths — safe to `diff` across runs in CI smokes).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== operational smells (seed {}, scale {} ppm) ==",
            self.seed, self.scale_ppm
        );
        let _ = writeln!(
            out,
            "verdicts: {} across {} domains  |  evidence events cited: {}",
            self.analysis.verdicts.len(),
            self.analysis.domains_affected,
            self.analysis.evidence_cited
        );
        out.push_str(&self.analysis.table().to_text());
        out.push_str("worst verdicts:\n");
        out.push_str(&self.analysis.verdict_table(15).to_text());
        out
    }

    /// One-row-per-verdict CSV.
    pub fn to_csv(&self) -> String {
        self.analysis.to_csv()
    }

    /// The per-domain drill-down: every verdict on `domain` with its
    /// full evidence chain, or `None` when the domain is clean (or was
    /// never probed).
    pub fn explain(&self, domain: &str) -> Option<String> {
        let verdicts = self.analysis.for_domain(domain);
        if verdicts.is_empty() {
            return None;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{domain} — {} smell(s)", verdicts.len());
        for v in verdicts {
            let _ = writeln!(out, "  [{}] severity {}", v.kind.as_str(), v.severity);
            let _ = writeln!(out, "    {}", v.detail);
            let _ = writeln!(out, "    refactoring: {}", v.refactoring);
            if v.evidence.is_empty() {
                let _ = writeln!(out, "    evidence: (domain not sampled by the flight recorder)");
            } else {
                let _ = writeln!(out, "    evidence ({} events):", v.evidence.len());
                for c in &v.evidence {
                    let _ = writeln!(out, "      {}", c.line);
                }
            }
        }
        Some(out)
    }
}

/// Recomputes the summary counters over a verdict subset.
fn rebuild(verdicts: Vec<SmellVerdict>) -> SmellAnalysis {
    let mut by_kind = std::collections::BTreeMap::new();
    for v in &verdicts {
        *by_kind.entry(v.kind.as_str().to_owned()).or_insert(0usize) += 1;
    }
    let domains_affected = verdicts
        .iter()
        .map(|v| v.domain.to_string())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let evidence_cited = verdicts.iter().map(|v| v.evidence.len() as u64).sum();
    SmellAnalysis { verdicts, by_kind, domains_affected, evidence_cited }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::DomainName;

    fn n(s: &str) -> DomainName {
        s.parse().expect("valid test name")
    }

    fn sample() -> SmellReport {
        let verdicts = vec![
            SmellVerdict {
                kind: SmellKind::LameDelegation,
                domain: n("a.gov.zz"),
                country: CountryCode::new("zz"),
                severity: 65,
                detail: "1 of 2 listed nameservers do not serve the zone: [ns2.x.net]".to_owned(),
                refactoring: "drop or repair the lame NS records [ns2.x.net]".to_owned(),
                evidence: vec![Citation {
                    seq: 7,
                    step: "direct_probe".to_owned(),
                    line: "#007 [direct_probe] response class=timeout dst=198.51.100.1 attempt=0 ms=1500".to_owned(),
                }],
            },
            SmellVerdict {
                kind: SmellKind::SingleHomedGlue,
                domain: n("b.gov.zz"),
                country: CountryCode::new("zz"),
                severity: 50,
                detail: "2 nameserver(s) resolve to 2 address(es), all in 192.0.2.0/24".to_owned(),
                refactoring: "add a replica in a different /24 network".to_owned(),
                evidence: Vec::new(),
            },
        ];
        SmellReport { seed: 7, scale_ppm: 10_000, analysis: rebuild(verdicts) }
    }

    #[test]
    fn canonical_json_round_trips_exactly() {
        let report = sample();
        let json = report.canonical_json();
        let back = SmellReport::from_canonical_json(&json).expect("parses");
        assert_eq!(back, report);
        assert_eq!(back.canonical_json(), json);
    }

    #[test]
    fn canonical_json_shape_is_fixed() {
        let json = sample().canonical_json();
        assert!(json.starts_with("{\"seed\":7,\"scale_ppm\":10000,\"verdicts\":["));
        assert!(json.contains("\"by_kind\":{\"lame_delegation\":1,\"single_homed_glue\":1}"));
        assert!(json.ends_with("\"domains_affected\":2,\"evidence_cited\":1}"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn filtering_recomputes_summary() {
        let lame = sample().filtered(SmellKind::LameDelegation);
        assert_eq!(lame.analysis.verdicts.len(), 1);
        assert_eq!(lame.analysis.domains_affected, 1);
        assert_eq!(lame.analysis.evidence_cited, 1);
        assert!(lame.analysis.by_kind.get("single_homed_glue").is_none());
        let empty = sample().filtered(SmellKind::CyclicDependency);
        assert!(empty.analysis.verdicts.is_empty());
    }

    #[test]
    fn explain_carries_evidence_lines() {
        let report = sample();
        let text = report.explain("a.gov.zz").expect("has verdicts");
        assert!(text.contains("[lame_delegation] severity 65"));
        assert!(text.contains("#007 [direct_probe]"));
        assert!(report.explain("clean.gov.zz").is_none());
    }

    #[test]
    fn render_text_is_deterministic() {
        assert_eq!(sample().render_text(), sample().render_text());
        assert!(sample().render_text().contains("operational smells (seed 7"));
    }
}
