//! Domain discovery (§III-B): expand each seed into the list of studied
//! domains via left-hand wildcard PDNS searches, then filter.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, RecordType, SimDate};
use govdns_pdns::filter;
use govdns_world::CountryCode;

use crate::seed::SeedDomain;
use crate::Campaign;

/// One domain selected for active measurement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveredDomain {
    /// The domain to probe.
    pub name: DomainName,
    /// The country whose seed matched it.
    pub country: CountryCode,
    /// The seed (`d_gov`) it fell under.
    pub seed: DomainName,
}

/// Discovery parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryConfig {
    /// Recency window: only records seen inside it qualify (the paper
    /// used 2020-01-01 through collection in February 2021).
    pub window: DateRange,
}

impl DiscoveryConfig {
    /// The paper's window, ending at the campaign's collection date.
    pub fn paper(collection: SimDate) -> Self {
        DiscoveryConfig { window: DateRange::new(SimDate::from_ymd(2020, 1, 1), collection) }
    }
}

/// Expands seeds into the studied domain list: wildcard NS search within
/// the window, the 7-day stability rule, the earliest-government-use
/// clamp for registered-domain seeds, and the disposable-name filter.
pub fn discover(
    campaign: &Campaign<'_>,
    seeds: &[SeedDomain],
    config: DiscoveryConfig,
) -> Vec<DiscoveredDomain> {
    let mut by_name: BTreeMap<DomainName, DiscoveredDomain> = BTreeMap::new();
    for seed in seeds {
        let entries =
            campaign.pdns.search_subtree_in(&seed.name, config.window, Some(RecordType::Ns));
        let entries = filter::stable(entries);
        let entries: Box<dyn Iterator<Item = _>> = match seed.earliest_government_use {
            Some(cutoff) => Box::new(filter::clamp_to_government_use(entries, cutoff)),
            None => Box::new(entries),
        };
        for e in entries {
            if looks_disposable(&e.name) {
                continue;
            }
            // Longest-seed-wins: a registered-domain seed nested under
            // another country's suffix must not double-claim (not a case
            // the generated world produces, but cheap to get right).
            let candidate = DiscoveredDomain {
                name: e.name.clone(),
                country: seed.country,
                seed: seed.name.clone(),
            };
            by_name
                .entry(e.name)
                .and_modify(|cur| {
                    if seed.name.level() > cur.seed.level() {
                        *cur = candidate.clone();
                    }
                })
                .or_insert(candidate);
        }
    }
    by_name.into_values().collect()
}

/// Heuristic for machine-generated, disposable subdomain labels — hex
/// blobs from DDoS-protection services and the like.
pub fn looks_disposable(name: &DomainName) -> bool {
    let Some(label) = name.labels().first() else { return false };
    let s = label.as_str();
    let body = s.strip_prefix('x').unwrap_or(s);
    body.len() >= 8
        && body.chars().all(|c| c.is_ascii_hexdigit())
        && body.chars().filter(|c| c.is_ascii_digit()).count() >= 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::{SeedKind, SeedProvenance};
    use govdns_model::RecordData;
    use govdns_pdns::PdnsDb;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn seed(name: &str, cc: &str) -> SeedDomain {
        SeedDomain {
            country: CountryCode::new(cc),
            name: n(name),
            kind: SeedKind::ReservedSuffix,
            earliest_government_use: None,
            provenance: SeedProvenance::PortalLink,
            portal_resolved: true,
        }
    }

    fn span(a: (i32, u32, u32), b: (i32, u32, u32)) -> DateRange {
        DateRange::new(SimDate::from_ymd(a.0, a.1, a.2), SimDate::from_ymd(b.0, b.1, b.2))
    }

    fn campaign_with<'a>(pdns: &'a PdnsDb, fixture: &'a SeedFixture) -> Campaign<'a> {
        Campaign {
            unkb: &fixture.unkb,
            registry_docs: &fixture.docs,
            webarchive: &fixture.webarchive,
            pdns,
            network: &fixture.network,
            roots: &fixture.roots,
            asn_db: &fixture.asn_db,
            registrar: &fixture.registrar,
            matchers: &[],
            countries: &fixture.countries,
            collection_date: SimDate::from_ymd(2021, 4, 15),
        }
    }

    struct SeedFixture {
        unkb: govdns_world::UnKnowledgeBase,
        docs: govdns_world::RegistryDocs,
        webarchive: govdns_world::WebArchive,
        network: govdns_simnet::SimNetwork,
        roots: Vec<std::net::Ipv4Addr>,
        asn_db: govdns_simnet::AsnDb,
        registrar: govdns_world::Registrar,
        countries: Vec<govdns_world::Country>,
    }

    fn fixture() -> SeedFixture {
        SeedFixture {
            unkb: govdns_world::UnKnowledgeBase::new(),
            docs: govdns_world::RegistryDocs::new(),
            webarchive: govdns_world::WebArchive::new(),
            network: govdns_simnet::SimNetwork::new(0),
            roots: vec![std::net::Ipv4Addr::new(10, 0, 0, 1)],
            asn_db: govdns_simnet::AsnDb::new(),
            registrar: govdns_world::Registrar::new(),
            countries: govdns_world::countries(),
        }
    }

    fn ns(s: &str) -> RecordData {
        RecordData::Ns(n(s))
    }

    #[test]
    fn finds_recent_stable_records_only() {
        let mut db = PdnsDb::new();
        db.observe_span(n("a.gov.zz"), ns("ns1.gov.zz"), span((2015, 1, 1), (2021, 2, 1)), 9);
        db.observe_span(n("old.gov.zz"), ns("ns1.gov.zz"), span((2012, 1, 1), (2018, 1, 1)), 9);
        db.observe_span(n("blip.gov.zz"), ns("ns1.gov.zz"), span((2020, 5, 1), (2020, 5, 3)), 1);
        db.observe_span(n("other.gov.yy"), ns("ns1.gov.yy"), span((2015, 1, 1), (2021, 2, 1)), 9);
        let f = fixture();
        let c = campaign_with(&db, &f);
        let cfg = DiscoveryConfig::paper(SimDate::from_ymd(2021, 4, 15));
        let got = discover(&c, &[seed("gov.zz", "zz")], cfg);
        let names: Vec<String> = got.iter().map(|d| d.name.to_string()).collect();
        assert_eq!(names, vec!["a.gov.zz"]);
        assert_eq!(got[0].country, CountryCode::new("zz"));
    }

    #[test]
    fn clamps_registered_domain_history() {
        let mut db = PdnsDb::new();
        // Record predating government ownership entirely.
        db.observe_span(n("x.portal.zz"), ns("ns1.x"), span((2011, 1, 1), (2013, 1, 1)), 9);
        // Record spanning the handover and the window.
        db.observe_span(n("y.portal.zz"), ns("ns1.y"), span((2012, 1, 1), (2021, 1, 1)), 9);
        let f = fixture();
        let c = campaign_with(&db, &f);
        let mut s = seed("portal.zz", "zz");
        s.kind = SeedKind::RegisteredDomain;
        s.earliest_government_use = Some(SimDate::from_ymd(2014, 1, 1));
        let cfg = DiscoveryConfig::paper(SimDate::from_ymd(2021, 4, 15));
        let got = discover(&c, &[s], cfg);
        let names: Vec<String> = got.iter().map(|d| d.name.to_string()).collect();
        assert_eq!(names, vec!["y.portal.zz"]);
    }

    #[test]
    fn disposable_names_are_dropped() {
        assert!(looks_disposable(&n("x3fa9c2d41.gov.zz")));
        assert!(looks_disposable(&n("0a1b2c3d.gov.zz")));
        assert!(!looks_disposable(&n("health12.gov.zz")));
        assert!(!looks_disposable(&n("defense1.gov.zz")));
        assert!(!looks_disposable(&n("gov.zz")));

        let mut db = PdnsDb::new();
        db.observe_span(
            n("x0a1b2c3d.gov.zz"),
            ns("ns1.gov.zz"),
            span((2020, 1, 1), (2021, 1, 1)),
            9,
        );
        let f = fixture();
        let c = campaign_with(&db, &f);
        let cfg = DiscoveryConfig::paper(SimDate::from_ymd(2021, 4, 15));
        assert!(discover(&c, &[seed("gov.zz", "zz")], cfg).is_empty());
    }

    #[test]
    fn seeds_do_not_cross_contaminate() {
        let mut db = PdnsDb::new();
        db.observe_span(n("a.gov.zz"), ns("ns1.gov.zz"), span((2020, 1, 1), (2021, 1, 1)), 9);
        db.observe_span(n("b.gov.yy"), ns("ns1.gov.yy"), span((2020, 1, 1), (2021, 1, 1)), 9);
        let f = fixture();
        let c = campaign_with(&db, &f);
        let cfg = DiscoveryConfig::paper(SimDate::from_ymd(2021, 4, 15));
        let got = discover(&c, &[seed("gov.zz", "zz"), seed("gov.yy", "yy")], cfg);
        assert_eq!(got.len(), 2);
        let zz = got.iter().find(|d| d.name == n("a.gov.zz")).unwrap();
        assert_eq!(zz.country, CountryCode::new("zz"));
    }
}
