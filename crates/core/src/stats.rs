//! Small statistics helpers shared by the analyses: the per-year
//! `NS_daily` mode (Fig 5), empirical CDFs (Figs 9 and 12), and
//! percentages.

use serde::{Deserialize, Serialize};

use govdns_model::DateRange;

/// The mode of a multiset given as `(value, weight)` pairs; ties break
/// toward the smaller value. Returns `None` for an empty input.
pub fn weighted_mode<I>(pairs: I) -> Option<usize>
where
    I: IntoIterator<Item = (usize, i64)>,
{
    let mut weights: std::collections::BTreeMap<usize, i64> = std::collections::BTreeMap::new();
    for (v, w) in pairs {
        *weights.entry(v).or_insert(0) += w;
    }
    weights
        .into_iter()
        .filter(|&(_, w)| w > 0)
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(v, _)| v)
}

/// The paper's Fig-5 computation: given the spans during which individual
/// NS records were active, the number of simultaneously active records
/// per day, reduced to its mode over the days with at least one record.
///
/// Runs as a boundary sweep, not a per-day loop.
pub fn ns_daily_mode(spans: &[DateRange], year: DateRange) -> Option<usize> {
    let mut events: Vec<(i64, i64)> = Vec::new(); // (day, +1/-1)
    for s in spans {
        let Some(i) = s.intersect(&year) else { continue };
        events.push((i.start.days(), 1));
        events.push((i.end.days() + 1, -1));
    }
    if events.is_empty() {
        return None;
    }
    events.sort_unstable();
    let mut weights: Vec<(usize, i64)> = Vec::new();
    let mut active = 0i64;
    let mut prev_day = events[0].0;
    for (day, delta) in events {
        if day > prev_day && active > 0 {
            weights.push((active as usize, day - prev_day));
        }
        active += delta;
        prev_day = day;
    }
    weighted_mode(weights)
}

/// An empirical CDF over `f64` samples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF; non-finite samples are rejected.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN or infinite.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(samples.iter().all(|x| x.is_finite()), "CDF samples must be finite");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0,1]`), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is out of range.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// `(x, F(x))` points suitable for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted.iter().enumerate().map(|(i, &x)| (x, (i + 1) as f64 / n as f64)).collect()
    }
}

/// `part / whole` as a percentage, 0 when the denominator is 0.
pub fn pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::SimDate;

    fn d(y: i32, m: u32, dd: u32) -> SimDate {
        SimDate::from_ymd(y, m, dd)
    }

    #[test]
    fn mode_breaks_ties_low() {
        assert_eq!(weighted_mode(vec![(2, 5), (1, 5)]), Some(1));
        assert_eq!(weighted_mode(vec![(3, 10), (1, 5)]), Some(3));
        assert_eq!(weighted_mode(Vec::new()), None);
    }

    #[test]
    fn ns_daily_mode_matches_figure_5() {
        // Fig 5: a domain has 2 NS for most of the year, 1 NS briefly.
        let year = DateRange::year(2015);
        let spans = vec![
            DateRange::new(d(2015, 1, 1), d(2015, 12, 31)), // ns1 all year
            DateRange::new(d(2015, 1, 1), d(2015, 11, 1)),  // ns2 most of it
        ];
        assert_eq!(ns_daily_mode(&spans, year), Some(2));
        // A single record active 3 days: mode 1.
        let brief = vec![DateRange::new(d(2015, 5, 1), d(2015, 5, 3))];
        assert_eq!(ns_daily_mode(&brief, year), Some(1));
        // Nothing active in the year.
        let off = vec![DateRange::new(d(2012, 1, 1), d(2012, 2, 1))];
        assert_eq!(ns_daily_mode(&off, year), None);
    }

    #[test]
    fn ns_daily_mode_handles_replacement() {
        // One NS replaced mid-year by two others: 1 NS for 6 months,
        // 2 NS for 6 months minus a day — mode 1 (ties toward fewer days
        // is impossible here; check both windows).
        let year = DateRange::year(2015);
        let spans = vec![
            DateRange::new(d(2015, 1, 1), d(2015, 6, 30)),
            DateRange::new(d(2015, 7, 1), d(2015, 12, 31)),
            DateRange::new(d(2015, 7, 1), d(2015, 12, 31)),
        ];
        // 181 days at 1 NS vs 184 days at 2 NS.
        assert_eq!(ns_daily_mode(&spans, year), Some(2));
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(3.0));
        assert_eq!(cdf.points().len(), 4);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn cdf_rejects_nan() {
        Cdf::new(vec![f64::NAN]);
    }

    #[test]
    fn pct_handles_zero() {
        assert_eq!(pct(1, 4), 25.0);
        assert_eq!(pct(3, 0), 0.0);
    }
}
