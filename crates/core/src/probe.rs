//! Active measurement of one domain (§III-B, Figure 1).
//!
//! For a domain `d`: ① locate the authoritative nameservers of `d`'s
//! parent zone by walking down from the root, querying for `d`'s NS
//! records; ② a referral naming `d` itself (or an in-bailiwick
//! authoritative answer) gives the parent-side NS set `P`; ③ resolve
//! every nameserver in `P` and query each address for `d`'s NS records;
//! ④ authoritative answers give the child-side set `C`; nameservers that
//! appear only in `C` are then resolved and queried as well.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use govdns_model::{DomainName, Message, Rcode, RecordType, Soa};
use govdns_simnet::{CacheEntry, DeliveryOutcome, DeliveryTrace, SimNetwork, StubResolver};
use govdns_telemetry::{Counter, Histogram, Registry};
use govdns_trace::{Step, TraceData, WorkerTracer};

use crate::ratelimit::{QueryRound, RateLimiter};

const MAX_WALK_DEPTH: usize = 12;
const MAX_CHILD_HOSTS: usize = 32;

/// How the probe client retries transient-looking failures (timeouts,
/// rejections, truncated answers) before accepting an observation.
///
/// Backoff is exponential with deterministic jitter — the jitter is a
/// stable hash of `(destination, qname, attempt)`, not an RNG draw, so
/// identically-seeded campaigns back off identically. Retries are
/// charged to the [`RateLimiter`]'s per-destination retry budget; when
/// the budget is exhausted the client takes the degraded observation as
/// final rather than hammering a struggling server (§III-D ethics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total delivery attempts per exchange (1 = never retry).
    pub max_attempts: u32,
    /// First-retry backoff, milliseconds (doubles per retry).
    pub base_backoff_ms: u32,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u32,
    /// Retries a single destination may consume across the whole
    /// campaign; `None` is unlimited.
    pub per_destination_budget: Option<u64>,
}

impl RetryPolicy {
    /// No retries: every observation is first-shot, the pre-chaos
    /// behaviour. This is the default.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            per_destination_budget: Some(0),
        }
    }

    /// The adaptive policy chaos campaigns run with: up to 3 attempts,
    /// 200 ms → 2 s exponential backoff, 64 retries per destination.
    pub fn adaptive() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 200,
            max_backoff_ms: 2_000,
            per_destination_budget: Some(64),
        }
    }

    /// Whether the policy ever retries.
    pub fn is_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Backoff before retry number `retry` (1-based) of an exchange
    /// with `dst` for `qname`, milliseconds, jitter included.
    pub fn backoff_ms(&self, dst: Ipv4Addr, qname: &DomainName, retry: u32) -> u32 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        let exp = retry.saturating_sub(1).min(16);
        let base = self.base_backoff_ms.saturating_mul(1 << exp).min(self.max_backoff_ms);
        // Deterministic jitter in [0, base/4]: spread retries without an
        // RNG so identically-seeded runs stay identical. `fold_fnv64`
        // hashes the name's presentation bytes in place — same digest as
        // folding `to_string()`, without allocating it.
        let h = qname.fold_fnv64(0xcbf2_9ce4_8422_2325u64 ^ u64::from(u32::from(dst)));
        let h = (h ^ u64::from(retry)).wrapping_mul(0x100_0000_01b3);
        let jitter = (h % u64::from(base / 4 + 1)) as u32;
        base + jitter
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

/// When a destination's circuit breaker opens and closes.
///
/// Distinct from [`RetryPolicy`]: retries *re-send* an exchange that
/// just failed, breakers *stop sending* to a destination whose recent
/// exchanges all failed. The cooldown is measured in ledger rounds
/// ([`QueryRound::rank`]), not wall-clock time, so breaker behaviour is
/// deterministic and byte-identical across identically-seeded runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Consecutive failed exchanges (after retries) that trip the
    /// breaker. `0` disables breakers entirely — the default.
    pub failure_threshold: u32,
    /// Ledger rounds an open breaker waits before admitting a half-open
    /// trial: a breaker opened in round rank `r` admits its trial once
    /// the current round rank reaches `r + cooldown_rounds`.
    pub cooldown_rounds: u32,
}

impl BreakerPolicy {
    /// Breakers disabled: every destination is always sent to. This is
    /// the default, preserving pre-breaker behaviour.
    pub fn none() -> Self {
        BreakerPolicy { failure_threshold: 0, cooldown_rounds: 0 }
    }

    /// The quarantine policy chaos campaigns run with: trip after 3
    /// consecutive failures, admit a half-open trial one round later.
    pub fn guarded() -> Self {
        BreakerPolicy { failure_threshold: 3, cooldown_rounds: 1 }
    }

    /// Whether breakers are active at all.
    pub fn is_enabled(&self) -> bool {
        self.failure_threshold > 0
    }
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy::none()
    }
}

/// Where a destination's breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerPhase {
    /// Healthy: exchanges flow normally.
    Closed,
    /// Quarantined: exchanges are skipped without sending.
    Open,
    /// Cooldown expired: one trial exchange decides reopen vs. reclose.
    HalfOpen,
}

impl BreakerPhase {
    /// Stable label (journal / report key).
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerPhase::Closed => "closed",
            BreakerPhase::Open => "open",
            BreakerPhase::HalfOpen => "half_open",
        }
    }

    /// Parses [`as_str`](BreakerPhase::as_str) output.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "closed" => Some(BreakerPhase::Closed),
            "open" => Some(BreakerPhase::Open),
            "half_open" => Some(BreakerPhase::HalfOpen),
            _ => None,
        }
    }
}

/// One destination's breaker state, as exported for journaling and the
/// measurement-health report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerSnapshot {
    /// The destination address.
    pub addr: Ipv4Addr,
    /// Current phase.
    pub phase: BreakerPhase,
    /// Consecutive failures while closed (resets on success).
    pub consecutive_failures: u32,
    /// Round rank at which the breaker last opened.
    pub opened_rank: u32,
    /// Times the breaker tripped (closed/half-open → open).
    pub trips: u64,
    /// Exchanges skipped while open.
    pub denied: u64,
}

/// How an admission check resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerAdmission {
    /// Closed breaker (or breakers disabled): send normally.
    Allowed,
    /// Open breaker past its cooldown: send one half-open trial.
    Trial,
    /// Open breaker inside its cooldown: do not send.
    Denied,
}

/// A state change produced by recording an exchange result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerTransition {
    /// Closed → open: the failure threshold was just crossed.
    Tripped,
    /// Half-open → closed: the trial succeeded.
    Reclosed,
    /// Half-open → open: the trial failed.
    Reopened,
}

#[derive(Debug, Clone, Copy)]
struct BreakerSlot {
    phase: BreakerPhase,
    consecutive_failures: u32,
    opened_rank: u32,
    trips: u64,
    denied: u64,
}

impl BreakerSlot {
    fn new() -> Self {
        BreakerSlot {
            phase: BreakerPhase::Closed,
            consecutive_failures: 0,
            opened_rank: 0,
            trips: 0,
            denied: 0,
        }
    }
}

/// The campaign-wide bank of per-destination circuit breakers, shared
/// by every probe worker (clones share state).
///
/// Only [`ProbeClient::send`]-path exchanges consult the bank; SOA
/// fetches and stub-resolver side lookups bypass it, mirroring how the
/// retry machinery scopes itself to the NS probing protocol.
#[derive(Debug, Clone)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    slots: Arc<Mutex<HashMap<Ipv4Addr, BreakerSlot>>>,
}

impl BreakerBank {
    /// A bank enforcing `policy` (no-op when the policy is disabled).
    pub fn new(policy: BreakerPolicy) -> Self {
        BreakerBank { policy, slots: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// The enforced policy.
    pub fn policy(&self) -> BreakerPolicy {
        self.policy
    }

    /// Decides whether an exchange with `dst` may be sent during a
    /// round of rank `rank`, advancing open breakers whose cooldown has
    /// expired into half-open.
    pub fn admit(&self, dst: Ipv4Addr, rank: u32) -> BreakerAdmission {
        if !self.policy.is_enabled() {
            return BreakerAdmission::Allowed;
        }
        let mut slots = self.slots.lock();
        let Some(slot) = slots.get_mut(&dst) else { return BreakerAdmission::Allowed };
        match slot.phase {
            BreakerPhase::Closed => BreakerAdmission::Allowed,
            BreakerPhase::HalfOpen => BreakerAdmission::Trial,
            BreakerPhase::Open => {
                if rank >= slot.opened_rank.saturating_add(self.policy.cooldown_rounds) {
                    slot.phase = BreakerPhase::HalfOpen;
                    BreakerAdmission::Trial
                } else {
                    slot.denied += 1;
                    BreakerAdmission::Denied
                }
            }
        }
    }

    /// Records the final outcome of an admitted exchange with `dst`
    /// (`failure` = the class is transient-looking even after retries),
    /// returning any phase transition it caused.
    pub fn on_result(&self, dst: Ipv4Addr, rank: u32, failure: bool) -> Option<BreakerTransition> {
        if !self.policy.is_enabled() {
            return None;
        }
        let mut slots = self.slots.lock();
        let slot = slots.entry(dst).or_insert_with(BreakerSlot::new);
        match slot.phase {
            BreakerPhase::Closed => {
                if failure {
                    slot.consecutive_failures += 1;
                    if slot.consecutive_failures >= self.policy.failure_threshold {
                        slot.phase = BreakerPhase::Open;
                        slot.opened_rank = rank;
                        slot.trips += 1;
                        return Some(BreakerTransition::Tripped);
                    }
                } else {
                    slot.consecutive_failures = 0;
                }
                None
            }
            BreakerPhase::HalfOpen => {
                if failure {
                    slot.phase = BreakerPhase::Open;
                    slot.opened_rank = rank;
                    slot.trips += 1;
                    Some(BreakerTransition::Reopened)
                } else {
                    // A half-open success fully closes the breaker: the
                    // failure streak starts over from zero.
                    slot.phase = BreakerPhase::Closed;
                    slot.consecutive_failures = 0;
                    Some(BreakerTransition::Reclosed)
                }
            }
            // A straggler result landing while open (another worker's
            // in-flight exchange): the breaker already decided.
            BreakerPhase::Open => None,
        }
    }

    /// Every destination's breaker state, sorted by address (a stable
    /// order for journaling).
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        let slots = self.slots.lock();
        let mut all: Vec<BreakerSnapshot> = slots
            .iter()
            .map(|(&addr, s)| BreakerSnapshot {
                addr,
                phase: s.phase,
                consecutive_failures: s.consecutive_failures,
                opened_rank: s.opened_rank,
                trips: s.trips,
                denied: s.denied,
            })
            .collect();
        all.sort_by_key(|s| s.addr);
        all
    }

    /// Overwrites the bank with checkpointed state (the resume path).
    pub fn restore(&self, snapshots: &[BreakerSnapshot]) {
        let mut slots = self.slots.lock();
        slots.clear();
        for s in snapshots {
            slots.insert(
                s.addr,
                BreakerSlot {
                    phase: s.phase,
                    consecutive_failures: s.consecutive_failures,
                    opened_rank: s.opened_rank,
                    trips: s.trips,
                    denied: s.denied,
                },
            );
        }
    }

    /// Destinations that tripped at least once, as `(addr, denied)`
    /// pairs ranked by how much traffic the quarantine suppressed —
    /// what the runner publishes as the "quarantined destinations"
    /// toplist and the health section surfaces.
    pub fn quarantined(&self) -> Vec<(Ipv4Addr, u64)> {
        let slots = self.slots.lock();
        let mut hit: Vec<(Ipv4Addr, u64)> =
            slots.iter().filter(|(_, s)| s.trips > 0).map(|(&addr, s)| (addr, s.denied)).collect();
        hit.sort_by_key(|&(addr, denied)| (std::cmp::Reverse(denied), addr));
        hit
    }
}

/// What one address said when asked for the domain's NS records.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResponseClass {
    /// An authoritative answer carrying these NS targets.
    Authoritative(Vec<DomainName>),
    /// A non-authoritative referral.
    Referral {
        /// The delegation point named in the authority section.
        cut: DomainName,
        /// NS targets of the cut.
        targets: Vec<DomainName>,
        /// Glue addresses from the additional section.
        glue: Vec<(DomainName, Ipv4Addr)>,
    },
    /// A response with no usable NS data (NXDOMAIN / NODATA), with the
    /// rcode.
    Empty(u8),
    /// REFUSED / SERVFAIL / other rejection, with the rcode.
    Rejected(u8),
    /// A truncated response (TC set): the record sections are gone and
    /// the server is asking the client to retry.
    Truncated,
    /// No response at all.
    Timeout,
    /// The exchange was never sent: the destination's circuit breaker
    /// was open. No query was issued and nothing was charged to the
    /// rate limiter — breakers stop *sending*.
    Skipped,
}

impl ResponseClass {
    fn of(reply: Option<&Message>, qname: &DomainName) -> ResponseClass {
        let Some(msg) = reply else { return ResponseClass::Timeout };
        if msg.tc {
            return ResponseClass::Truncated;
        }
        match msg.rcode {
            Rcode::Refused | Rcode::ServFail | Rcode::FormErr | Rcode::NotImp => {
                ResponseClass::Rejected(msg.rcode.code())
            }
            Rcode::NxDomain => ResponseClass::Empty(msg.rcode.code()),
            Rcode::NoError => {
                let answers: Vec<DomainName> = msg
                    .answers
                    .iter()
                    .filter(|r| r.name == *qname)
                    .filter_map(|r| r.data.as_ns().cloned())
                    .collect();
                if msg.aa && !answers.is_empty() {
                    return ResponseClass::Authoritative(answers);
                }
                // A referral: the deepest authority-section NS owner that
                // encloses (or is) the query name. An "upward referral"
                // to the root carries cut = root.
                let mut cut: Option<DomainName> = None;
                for rr in &msg.authority {
                    if rr.rtype() == RecordType::Ns && qname.is_within(&rr.name) {
                        let deeper =
                            cut.as_ref().map(|c| rr.name.level() > c.level()).unwrap_or(true);
                        if deeper {
                            cut = Some(rr.name.clone());
                        }
                    }
                }
                if let Some(cut) = cut {
                    if !msg.aa {
                        let targets: Vec<DomainName> = msg
                            .authority
                            .iter()
                            .filter(|r| r.name == cut)
                            .filter_map(|r| r.data.as_ns().cloned())
                            .collect();
                        let glue: Vec<(DomainName, Ipv4Addr)> = msg
                            .additional
                            .iter()
                            .filter_map(|r| r.data.as_a().map(|a| (r.name.clone(), a)))
                            .collect();
                        return ResponseClass::Referral { cut, targets, glue };
                    }
                }
                ResponseClass::Empty(msg.rcode.code())
            }
        }
    }

    /// NS targets carried, if any.
    pub fn ns_targets(&self) -> &[DomainName] {
        match self {
            ResponseClass::Authoritative(t) => t,
            ResponseClass::Referral { targets, .. } => targets,
            _ => &[],
        }
    }

    /// Whether this is an authoritative answer.
    pub fn is_authoritative(&self) -> bool {
        matches!(self, ResponseClass::Authoritative(_))
    }

    /// Whether any packet came back. A skipped exchange was never sent,
    /// so nothing responded.
    pub fn responded(&self) -> bool {
        !matches!(self, ResponseClass::Timeout | ResponseClass::Skipped)
    }

    /// Whether the failure looks transient — worth a backoff retry.
    /// Timeouts, rejections, and truncation all recover in practice
    /// (flapping hosts, rate limiters, size-limited paths); NXDOMAIN
    /// and NODATA are the zone's actual state and are never retried.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ResponseClass::Timeout | ResponseClass::Rejected(_) | ResponseClass::Truncated
        )
    }

    /// Stable lowercase label for trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            ResponseClass::Authoritative(_) => "authoritative",
            ResponseClass::Referral { .. } => "referral",
            ResponseClass::Empty(_) => "empty",
            ResponseClass::Rejected(_) => "rejected",
            ResponseClass::Truncated => "truncated",
            ResponseClass::Timeout => "timeout",
            ResponseClass::Skipped => "skipped",
        }
    }
}

/// One query observation against one address.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerObservation {
    /// The address queried.
    pub addr: Ipv4Addr,
    /// What it said.
    pub class: ResponseClass,
    /// Delivery attempts spent obtaining this (final) class; > 1 means
    /// the answer needed backoff retries — a *degraded* exchange.
    pub attempts: u32,
}

/// Everything learned about one nameserver of the probed domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerProbe {
    /// The NS target hostname (as listed in `P` and/or `C`).
    pub host: DomainName,
    /// Whether the hostname appeared in the parent-side set.
    pub in_parent: bool,
    /// Whether the hostname appeared in the child-side set.
    pub in_child: bool,
    /// IPv4 addresses it resolved to (empty: unresolvable).
    pub addrs: Vec<Ipv4Addr>,
    /// Per-address NS-query outcomes.
    pub observations: Vec<ServerObservation>,
    /// Whether the server only started serving the zone in the second
    /// probing round — dead in round 1, alive on re-probe: the paper's
    /// transient failure, recovered.
    pub recovered_in_round2: bool,
}

impl ServerProbe {
    /// Whether the nameserver could not be resolved at all.
    pub fn unresolvable(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Whether at least one address returned an authoritative answer —
    /// i.e. the nameserver actually serves the zone.
    pub fn serves_zone(&self) -> bool {
        self.observations.iter().any(|o| o.class.is_authoritative())
    }

    /// Whether the server serves the zone but only *degraded*: the
    /// authoritative answer needed backoff retries, or only the second
    /// round got it. Clean first-shot answers are not degraded.
    pub fn degraded(&self) -> bool {
        self.serves_zone()
            && (self.recovered_in_round2
                || self.observations.iter().any(|o| o.attempts > 1 && o.class.is_authoritative()))
    }

    /// The paper's notion of a *defective* nameserver for this zone:
    /// unresolvable, silent, or answering without authority.
    pub fn is_defective(&self) -> bool {
        !self.serves_zone()
    }

    /// Whether any address produced any response at all.
    pub fn responded(&self) -> bool {
        self.observations.iter().any(|o| o.class.responded())
    }
}

/// The full probe record for one domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainProbe {
    /// The probed domain.
    pub domain: DomainName,
    /// The zone the walk last obtained referrals from (the parent zone),
    /// if the walk got anywhere.
    pub parent_zone: Option<DomainName>,
    /// Addresses of the parent zone's nameservers that were queried.
    pub parent_addrs: Vec<Ipv4Addr>,
    /// Per-address responses from the parent zone's nameservers.
    pub parent_observations: Vec<ServerObservation>,
    /// The parent-side NS set `P`.
    pub parent_ns: Vec<DomainName>,
    /// The child-side NS set `C` (union of authoritative answers).
    pub child_ns: Vec<DomainName>,
    /// Per-nameserver results over `P ∪ C`.
    pub servers: Vec<ServerProbe>,
    /// The zone's SOA, fetched from the first serving nameserver — its
    /// MNAME/RNAME feed provider classification (§IV-B).
    pub soa: Option<Soa>,
    /// Total queries this probe spent (including side resolutions).
    pub queries: u32,
    /// Total simulated waiting, milliseconds.
    pub elapsed_ms: u32,
    /// How many probe rounds this record aggregates.
    pub rounds: u8,
}

impl DomainProbe {
    /// ≥ 1 response (of any kind) from a parent-zone nameserver — the
    /// 147k→115k funnel predicate.
    pub fn parent_responsive(&self) -> bool {
        self.parent_observations.iter().any(|o| o.class.responded())
    }

    /// ≥ 1 non-empty parent response — the 115k→96k funnel predicate.
    pub fn parent_nonempty(&self) -> bool {
        !self.parent_ns.is_empty()
    }

    /// Whether any nameserver authoritatively answered for the domain.
    pub fn has_authoritative_answer(&self) -> bool {
        self.servers.iter().any(ServerProbe::serves_zone)
    }

    /// The *Degraded* outcome class: the domain did answer, but only
    /// after retries or a second probing round — measurably flaky, which
    /// a clean/dead binary classification would hide.
    pub fn degraded(&self) -> bool {
        self.has_authoritative_answer() && self.servers.iter().any(ServerProbe::degraded)
    }

    /// Whether any nameserver was revived by the second round.
    pub fn recovered_in_round2(&self) -> bool {
        self.servers.iter().any(|s| s.recovered_in_round2)
    }

    /// `P ∪ C` as a sorted set.
    pub fn ns_union(&self) -> BTreeSet<DomainName> {
        self.parent_ns.iter().chain(&self.child_ns).cloned().collect()
    }

    /// Every distinct IPv4 address the domain's nameservers resolve to.
    pub fn ns_addrs(&self) -> BTreeSet<Ipv4Addr> {
        self.servers.iter().flat_map(|s| s.addrs.iter().copied()).collect()
    }

    /// Defective-delegation classification over `P ∪ C`:
    /// `(any_defective, fully_defective)`.
    pub fn defective(&self) -> (bool, bool) {
        if self.servers.is_empty() {
            return (false, false);
        }
        let defective = self.servers.iter().filter(|s| s.is_defective()).count();
        (defective > 0, defective == self.servers.len())
    }

    /// The probe's outcome class — the cross-run diffing vocabulary.
    ///
    /// The classes are ordered worst-to-best along the §III-B funnel;
    /// `govdns-diff` reports transitions between them (e.g.
    /// `Authoritative → Degraded`) when comparing two campaigns.
    pub fn class(&self) -> DomainClass {
        if !self.parent_responsive() {
            DomainClass::Unreachable
        } else if !self.parent_nonempty() {
            DomainClass::Removed
        } else if !self.has_authoritative_answer() {
            DomainClass::Stale
        } else if self.degraded() {
            DomainClass::Degraded
        } else {
            DomainClass::Authoritative
        }
    }

    /// Total delivery attempts across every observation of this probe
    /// (parent-side and per-nameserver) — the per-domain effort figure
    /// cross-run diffs report shifts in.
    pub fn attempts_total(&self) -> u64 {
        let parent: u64 = self.parent_observations.iter().map(|o| u64::from(o.attempts)).sum();
        let servers: u64 =
            self.servers.iter().flat_map(|s| &s.observations).map(|o| u64::from(o.attempts)).sum();
        parent + servers
    }
}

/// The per-domain outcome classes a cross-run diff reports transitions
/// between, ordered worst-to-best along the §III-B funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DomainClass {
    /// No parent-zone nameserver responded at all.
    Unreachable,
    /// The parent responded but listed no NS records (delegation gone).
    Removed,
    /// The parent lists nameservers, but none authoritatively answered.
    Stale,
    /// Authoritative answers arrived, but only after retries or the
    /// second probing round.
    Degraded,
    /// Clean first-shot authoritative service.
    Authoritative,
}

impl DomainClass {
    /// Stable wire/report label.
    pub fn as_str(self) -> &'static str {
        match self {
            DomainClass::Unreachable => "unreachable",
            DomainClass::Removed => "removed",
            DomainClass::Stale => "stale",
            DomainClass::Degraded => "degraded",
            DomainClass::Authoritative => "authoritative",
        }
    }

    /// Parses a wire label back into a class.
    pub fn parse(s: &str) -> Option<DomainClass> {
        Some(match s {
            "unreachable" => DomainClass::Unreachable,
            "removed" => DomainClass::Removed,
            "stale" => DomainClass::Stale,
            "degraded" => DomainClass::Degraded,
            "authoritative" => DomainClass::Authoritative,
            _ => return None,
        })
    }

    /// Every class, funnel order — for per-class tally tables.
    pub fn all() -> [DomainClass; 5] {
        [
            DomainClass::Unreachable,
            DomainClass::Removed,
            DomainClass::Stale,
            DomainClass::Degraded,
            DomainClass::Authoritative,
        ]
    }
}

impl std::fmt::Display for DomainClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Cached telemetry handles for probing: one counter per
/// [`ResponseClass`] variant, plus the registry for per-domain spans.
#[derive(Debug)]
struct ProbeSink {
    registry: Registry,
    authoritative: Counter,
    referral: Counter,
    empty: Counter,
    rejected: Counter,
    truncated: Counter,
    timeout: Counter,
    skipped: Counter,
    retry_attempts: Counter,
    retry_recovered: Counter,
    retry_exhausted: Counter,
    retry_budget_denied: Counter,
    retry_backoff_ms: Histogram,
    breaker_tripped: Counter,
    breaker_denied: Counter,
    breaker_half_open: Counter,
    breaker_reclosed: Counter,
    breaker_reopened: Counter,
}

impl ProbeSink {
    fn new(registry: &Registry) -> Self {
        ProbeSink {
            registry: registry.clone(),
            authoritative: registry.counter("probe.class.authoritative"),
            referral: registry.counter("probe.class.referral"),
            empty: registry.counter("probe.class.empty"),
            rejected: registry.counter("probe.class.rejected"),
            truncated: registry.counter("probe.class.truncated"),
            timeout: registry.counter("probe.class.timeout"),
            skipped: registry.counter("probe.class.skipped"),
            retry_attempts: registry.counter("probe.retry.attempts"),
            retry_recovered: registry.counter("probe.retry.recovered"),
            retry_exhausted: registry.counter("probe.retry.exhausted"),
            retry_budget_denied: registry.counter("probe.retry.budget_denied"),
            retry_backoff_ms: registry.histogram_latency_ms("probe.retry.backoff_ms"),
            breaker_tripped: registry.counter("probe.breaker.tripped"),
            breaker_denied: registry.counter("probe.breaker.denied"),
            breaker_half_open: registry.counter("probe.breaker.half_open_trials"),
            breaker_reclosed: registry.counter("probe.breaker.reclosed"),
            breaker_reopened: registry.counter("probe.breaker.reopened"),
        }
    }

    fn tally(&self, class: &ResponseClass) {
        match class {
            ResponseClass::Authoritative(_) => self.authoritative.inc(),
            ResponseClass::Referral { .. } => self.referral.inc(),
            ResponseClass::Empty(_) => self.empty.inc(),
            ResponseClass::Rejected(_) => self.rejected.inc(),
            ResponseClass::Truncated => self.truncated.inc(),
            ResponseClass::Timeout => self.timeout.inc(),
            ResponseClass::Skipped => self.skipped.inc(),
        }
    }

    fn tally_transition(&self, transition: BreakerTransition) {
        match transition {
            BreakerTransition::Tripped => self.breaker_tripped.inc(),
            BreakerTransition::Reclosed => self.breaker_reclosed.inc(),
            BreakerTransition::Reopened => self.breaker_reopened.inc(),
        }
    }
}

/// The active-measurement client: walks the hierarchy and probes domains.
///
/// One client per worker thread (the telemetry round context makes it
/// deliberately `!Sync`).
#[derive(Debug)]
pub struct ProbeClient<'n> {
    network: &'n SimNetwork,
    resolver: StubResolver<'n>,
    limiter: RateLimiter,
    telemetry: Option<ProbeSink>,
    /// The ledger round the client is currently probing in.
    round: Cell<QueryRound>,
    retry: RetryPolicy,
    breakers: Option<BreakerBank>,
    /// Cumulative delivery attempts per `(destination, qname)` pair,
    /// carried across rounds so a round-2 re-probe continues the attempt
    /// count instead of restarting it — that continuation is what lets a
    /// flapping server's `recover_after` threshold be crossed. Nested by
    /// destination so the hot-path lookup never clones the qname: the
    /// name is only cloned once, when a pair is first seen.
    attempts: RefCell<HashMap<Ipv4Addr, HashMap<DomainName, u32>>>,
    /// The flight recorder's per-worker event ring, when tracing is on.
    /// `RefCell` because every emission mutates the ring but probing
    /// methods take `&self`; the client is already `!Sync` by design.
    tracer: RefCell<Option<WorkerTracer>>,
}

impl<'n> ProbeClient<'n> {
    /// Creates a client with its own resolver cache and rate limiter.
    pub fn new(network: &'n SimNetwork, roots: Vec<Ipv4Addr>, limiter: RateLimiter) -> Self {
        ProbeClient {
            network,
            resolver: StubResolver::new(network, roots),
            limiter,
            telemetry: None,
            round: Cell::new(QueryRound::Round1),
            retry: RetryPolicy::none(),
            breakers: None,
            attempts: RefCell::new(HashMap::new()),
            tracer: RefCell::new(None),
        }
    }

    /// Attaches a per-worker flight recorder: every delivery attempt and
    /// every decision about it (fault verdicts, limiter charges, breaker
    /// admissions, backoffs) is recorded as a trace event. The runner
    /// brackets each domain with [`ProbeClient::trace_begin`] /
    /// [`ProbeClient::trace_end`].
    #[must_use]
    pub fn with_tracer(self, tracer: WorkerTracer) -> Self {
        *self.tracer.borrow_mut() = Some(tracer);
        self
    }

    /// Starts the trace scope for campaign domain `index`; events
    /// emitted until [`ProbeClient::trace_end`] belong to this domain.
    pub fn trace_begin(&self, index: u64, domain: &DomainName) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            t.begin(index, domain);
        }
    }

    /// Ends the current trace scope, submitting the domain's events (or
    /// an unsampled placeholder) to the shared sink.
    pub fn trace_end(&self) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            t.end();
        }
    }

    /// Emits a trace event at the worker's current step. The closure
    /// only runs when a tracer is attached *and* this domain is sampled,
    /// so disabled runs never build event payloads.
    fn trace(&self, f: impl FnOnce() -> TraceData) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            if t.recording() {
                let data = f();
                t.emit(data);
            }
        }
    }

    /// Emits a trace event pinned to `step` regardless of the current
    /// walk position (side resolutions, SOA fetches).
    fn trace_at(&self, step: Step, f: impl FnOnce() -> TraceData) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            if t.recording() {
                let data = f();
                t.emit_at(step, data);
            }
        }
    }

    /// Moves the worker's trace cursor to `step`.
    fn trace_step(&self, step: Step) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            t.set_step(step);
        }
    }

    /// Dumps the flight recorder's last-N events under `trigger`.
    fn trace_dump(&self, trigger: &str) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            t.dump(trigger);
        }
    }

    /// Dumps at most once per trigger per domain — for triggers that
    /// fire on many exchanges of an already-degraded domain.
    fn trace_dump_once(&self, trigger: &str) {
        if let Some(t) = self.tracer.borrow_mut().as_mut() {
            t.dump_once(trigger);
        }
    }

    /// Sets the retry policy (builder style).
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Attaches a (shared) circuit-breaker bank: every probing exchange
    /// first asks the destination's breaker for admission, and skipped
    /// exchanges are recorded as [`ResponseClass::Skipped`] without
    /// sending anything or charging the rate limiter.
    #[must_use]
    pub fn with_breakers(mut self, bank: BreakerBank) -> Self {
        self.breakers = Some(bank).filter(|b| b.policy().is_enabled());
        self
    }

    /// Imports resolver-cache entries (a journal checkpoint's warmth);
    /// entries already expired at the resolver's virtual time are
    /// dropped — see [`StubResolver::import_cache`]. Set the clock
    /// ([`set_clock_s`](Self::set_clock_s)) *before* importing.
    pub fn import_cache(&self, entries: Vec<((DomainName, RecordType), CacheEntry)>) {
        self.resolver.import_cache(entries);
    }

    /// Exports the resolver cache in deterministic order; see
    /// [`StubResolver::export_cache`].
    #[must_use]
    pub fn export_cache(&self) -> Vec<((DomainName, RecordType), CacheEntry)> {
        self.resolver.export_cache()
    }

    /// The resolver's virtual clock, seconds (checkpointed alongside the
    /// cache so expiry survives resume).
    #[must_use]
    pub fn clock_s(&self) -> u64 {
        self.resolver.now_s()
    }

    /// Sets the resolver's virtual clock (absolute, seconds).
    pub fn set_clock_s(&self, t: u64) {
        self.resolver.set_clock_s(t);
    }

    /// Starts tallying per-class response counters
    /// (`probe.class.{authoritative,referral,empty,rejected,timeout}`)
    /// and per-domain `probe.domain` spans into `registry`.
    #[must_use]
    pub fn with_telemetry(mut self, registry: &Registry) -> Self {
        self.telemetry = Some(ProbeSink::new(registry));
        self
    }

    /// The client's resolver (shared cache).
    pub fn resolver(&self) -> &StubResolver<'n> {
        &self.resolver
    }

    /// Probes one domain per the Figure-1 procedure.
    pub fn probe(&self, domain: &DomainName) -> DomainProbe {
        let span = self.telemetry.as_ref().map(|t| t.registry.span("probe.domain"));
        self.round.set(QueryRound::Round1);
        let mut probe = DomainProbe {
            domain: domain.clone(),
            parent_zone: None,
            parent_addrs: Vec::new(),
            parent_observations: Vec::new(),
            parent_ns: Vec::new(),
            child_ns: Vec::new(),
            servers: Vec::new(),
            soa: None,
            queries: 0,
            elapsed_ms: 0,
            rounds: 1,
        };
        self.walk_to_parent(domain, &mut probe);
        self.query_child_side(domain, &mut probe);
        self.fetch_soa(domain, &mut probe);
        if let Some(span) = span {
            span.finish();
        }
        probe
    }

    /// Fetches the zone's SOA from the first serving nameserver.
    fn fetch_soa(&self, domain: &DomainName, probe: &mut DomainProbe) {
        let Some(addr) =
            probe.servers.iter().find(|s| s.serves_zone()).and_then(|s| s.addrs.first().copied())
        else {
            return;
        };
        self.trace_step(Step::DirectProbe);
        self.limiter.acquire_for(QueryRound::Soa, Some(addr));
        self.trace(|| TraceData::Charge { round: "soa".into(), dst: Some(addr) });
        let q = Message::query((probe.queries % 0xFFFF) as u16, domain.clone(), RecordType::Soa);
        self.trace(|| TraceData::Send { dst: addr, attempt: 0 });
        let (out, delivery) = self.network.deliver_attempt_traced(addr, &q, 0);
        probe.queries += 1;
        probe.elapsed_ms = probe.elapsed_ms.saturating_add(out.elapsed_ms());
        if let Some(verdict) = delivery.verdict() {
            self.trace(|| TraceData::Fault {
                dst: addr,
                attempt: 0,
                verdict: verdict.into(),
                extra_ms: u64::from(delivery.fault.extra_delay_ms),
            });
        }
        self.trace(|| TraceData::Response {
            dst: addr,
            attempt: 0,
            class: if out.reply().is_some() { "answer".into() } else { "timeout".into() },
            ms: u64::from(out.elapsed_ms()),
        });
        if let Some(reply) = out.reply() {
            if reply.is_authoritative_answer() {
                probe.soa = reply.answers.iter().find_map(|rr| rr.data.as_soa().cloned());
            }
        }
    }

    /// Re-runs the child-side queries (the paper's second round for
    /// transient failures) and merges the results into `probe`.
    pub fn retry_child_side(&self, probe: &mut DomainProbe) {
        self.round.set(QueryRound::Round2);
        let domain = probe.domain.clone();
        let mut fresh = DomainProbe {
            domain: domain.clone(),
            parent_zone: probe.parent_zone.clone(),
            parent_addrs: probe.parent_addrs.clone(),
            // Keep the first round's parent responses: their glue is what
            // resolves in-bailiwick targets of a dead child zone.
            parent_observations: probe.parent_observations.clone(),
            parent_ns: probe.parent_ns.clone(),
            child_ns: Vec::new(),
            servers: Vec::new(),
            soa: None,
            queries: 0,
            elapsed_ms: 0,
            rounds: 0,
        };
        self.query_child_side(&domain, &mut fresh);
        for s in fresh.servers {
            match probe.servers.iter_mut().find(|p| p.host == s.host) {
                Some(existing) => {
                    if s.serves_zone() && !existing.serves_zone() {
                        let in_parent = existing.in_parent;
                        *existing = s;
                        existing.in_parent = in_parent;
                        // Dead in round 1, serving in round 2: the
                        // transient failure the re-probe exists to catch.
                        existing.recovered_in_round2 = true;
                    }
                }
                None => probe.servers.push(s),
            }
        }
        for c in fresh.child_ns {
            if !probe.child_ns.contains(&c) {
                probe.child_ns.push(c);
            }
        }
        for s in &mut probe.servers {
            s.in_child = probe.child_ns.contains(&s.host);
        }
        probe.queries += fresh.queries;
        probe.elapsed_ms = probe.elapsed_ms.saturating_add(fresh.elapsed_ms);
        probe.rounds += 1;
        self.round.set(QueryRound::Round1);
    }

    /// One exchange with `dst`, gated by the destination's circuit
    /// breaker (if a bank is attached) and retried under the client's
    /// [`RetryPolicy`]. A denied admission short-circuits to
    /// [`ResponseClass::Skipped`] with zero attempts — nothing is sent
    /// and the rate limiter is not charged.
    fn send(
        &self,
        dst: Ipv4Addr,
        qname: &DomainName,
        probe: &mut DomainProbe,
    ) -> (ResponseClass, u32) {
        let rank = self.round.get().rank();
        if let Some(bank) = &self.breakers {
            match bank.admit(dst, rank) {
                BreakerAdmission::Denied => {
                    let class = ResponseClass::Skipped;
                    if let Some(sink) = &self.telemetry {
                        sink.tally(&class);
                        sink.breaker_denied.inc();
                    }
                    self.trace(|| TraceData::BreakerDenied { dst });
                    return (class, 0);
                }
                BreakerAdmission::Trial => {
                    if let Some(sink) = &self.telemetry {
                        sink.breaker_half_open.inc();
                    }
                    self.trace(|| TraceData::BreakerTrial { dst });
                }
                BreakerAdmission::Allowed => {}
            }
        }
        let (class, attempts) = self.send_inner(dst, qname, probe);
        self.breaker_settle(dst, rank, &class);
        (class, attempts)
    }

    /// Records an admitted exchange's final class with the breaker bank
    /// and emits any transition it caused (telemetry, trace event, and
    /// the trip's flight-recorder dump).
    fn breaker_settle(&self, dst: Ipv4Addr, rank: u32, class: &ResponseClass) {
        let Some(bank) = &self.breakers else { return };
        if let Some(transition) = bank.on_result(dst, rank, class.is_retryable()) {
            if let Some(sink) = &self.telemetry {
                sink.tally_transition(transition);
            }
            let label = match transition {
                BreakerTransition::Tripped => "tripped",
                BreakerTransition::Reclosed => "reclosed",
                BreakerTransition::Reopened => "reopened",
            };
            self.trace(|| TraceData::Breaker { dst, transition: label.into() });
            if matches!(transition, BreakerTransition::Tripped) {
                self.trace_dump("breaker_trip");
            }
        }
    }

    /// One wave of independent exchanges — every serving address of one
    /// nameserver host at the same referral depth, probed against the
    /// network as a batch instead of strictly one at a time. First
    /// attempts for all admitted destinations are delivered together
    /// ([`SimNetwork::deliver_batch`]); per-destination processing then
    /// runs in input order, so observations, limiter charges, retry
    /// accounting, and trace events are identical to sequential
    /// [`send`](Self::send) calls over the same addresses.
    ///
    /// Falls back to the sequential path when the fan-out is trivial
    /// (fewer than two addresses) or contains duplicate destinations,
    /// whose breaker and attempt accounting would interleave.
    fn send_batch(
        &self,
        dsts: &[Ipv4Addr],
        qname: &DomainName,
        probe: &mut DomainProbe,
    ) -> Vec<(ResponseClass, u32)> {
        let distinct =
            dsts.len() >= 2 && dsts.iter().enumerate().all(|(i, a)| !dsts[..i].contains(a));
        if !distinct {
            return dsts.iter().map(|&dst| self.send(dst, qname, probe)).collect();
        }
        let rank = self.round.get().rank();
        // Phase A: breaker admissions, decided up front. Distinct
        // destinations hold independent breaker slots, so no exchange
        // in this wave can change another's admission; the admission
        // *events* are deferred to phase C so the trace reads exactly
        // like the sequential walk.
        let admissions: Vec<BreakerAdmission> = match &self.breakers {
            Some(bank) => dsts.iter().map(|&dst| bank.admit(dst, rank)).collect(),
            None => vec![BreakerAdmission::Allowed; dsts.len()],
        };
        // Phase B: one shared query message (the id is observable
        // nowhere in an outcome), first attempts for every admitted
        // destination delivered as a single wave.
        let q = Message::query((probe.queries % 0xFFFF) as u16, qname.clone(), RecordType::Ns);
        let wave: Vec<(Ipv4Addr, u32)> = dsts
            .iter()
            .zip(&admissions)
            .filter(|(_, a)| !matches!(a, BreakerAdmission::Denied))
            .map(|(&dst, _)| (dst, self.take_attempt(dst, qname)))
            .collect();
        let mut delivered = self.network.deliver_batch(&q, &wave).into_iter();
        // Phase C: per-destination bookkeeping in input order —
        // admission events, the limiter charge, the stored first
        // attempt, live retries, breaker settlement — exactly as the
        // sequential path emits them.
        dsts.iter()
            .zip(&admissions)
            .map(|(&dst, admission)| {
                match admission {
                    BreakerAdmission::Denied => {
                        let class = ResponseClass::Skipped;
                        if let Some(sink) = &self.telemetry {
                            sink.tally(&class);
                            sink.breaker_denied.inc();
                        }
                        self.trace(|| TraceData::BreakerDenied { dst });
                        return (class, 0);
                    }
                    BreakerAdmission::Trial => {
                        if let Some(sink) = &self.telemetry {
                            sink.breaker_half_open.inc();
                        }
                        self.trace(|| TraceData::BreakerTrial { dst });
                    }
                    BreakerAdmission::Allowed => {}
                }
                let (out, delivery) = delivered.next().expect("one delivery per admitted dst");
                let attempt = wave.iter().find(|(d, _)| *d == dst).expect("admitted dst in wave").1;
                self.limiter.acquire_for(self.round.get(), Some(dst));
                self.trace(|| TraceData::Charge {
                    round: self.round.get().as_str().into(),
                    dst: Some(dst),
                });
                let (class, attempts) =
                    self.exchange_loop(dst, qname, probe, Some((attempt, out, delivery)));
                self.breaker_settle(dst, rank, &class);
                (class, attempts)
            })
            .collect()
    }

    /// The breaker-free exchange: charges the limiter, delivers, and
    /// retries transient failures within the retry budget.
    fn send_inner(
        &self,
        dst: Ipv4Addr,
        qname: &DomainName,
        probe: &mut DomainProbe,
    ) -> (ResponseClass, u32) {
        self.limiter.acquire_for(self.round.get(), Some(dst));
        self.trace(|| TraceData::Charge {
            round: self.round.get().as_str().into(),
            dst: Some(dst),
        });
        self.exchange_loop(dst, qname, probe, None)
    }

    /// Takes the next cumulative attempt number for `(dst, qname)`.
    /// Carried across rounds, this is what the fault plan sees — it is
    /// how a flapping server's recovery threshold is eventually crossed.
    fn take_attempt(&self, dst: Ipv4Addr, qname: &DomainName) -> u32 {
        let mut map = self.attempts.borrow_mut();
        let by_name = map.entry(dst).or_default();
        // Clone the qname only on the pair's first attempt; every
        // later lookup hashes the existing key in place.
        if !by_name.contains_key(qname) {
            by_name.insert(qname.clone(), 0);
        }
        let slot = by_name.get_mut(qname).expect("just inserted");
        let now = *slot;
        *slot += 1;
        now
    }

    /// The retry loop of one charged exchange. `pre` carries a first
    /// attempt already delivered as part of a batch wave (its attempt
    /// number and the network's verdict); the loop consumes it before
    /// falling back to live deliveries for any retries.
    fn exchange_loop(
        &self,
        dst: Ipv4Addr,
        qname: &DomainName,
        probe: &mut DomainProbe,
        mut pre: Option<(u32, DeliveryOutcome, DeliveryTrace)>,
    ) -> (ResponseClass, u32) {
        let mut attempts_here = 0u32;
        // Built once on the first live delivery and reused across
        // retries: the message id is observable nowhere in an outcome,
        // so re-sending the same bytes is indistinguishable from
        // re-encoding a fresh message per attempt.
        let mut query: Option<Message> = None;
        loop {
            let (attempt, out, delivery) = match pre.take() {
                Some((attempt, out, delivery)) => {
                    // The batch wave already delivered this attempt;
                    // emit the event the live path would have.
                    self.trace(|| TraceData::Send { dst, attempt });
                    (attempt, out, delivery)
                }
                None => {
                    let attempt = self.take_attempt(dst, qname);
                    let q = query.get_or_insert_with(|| {
                        Message::query(
                            (probe.queries % 0xFFFF) as u16,
                            qname.clone(),
                            RecordType::Ns,
                        )
                    });
                    self.trace(|| TraceData::Send { dst, attempt });
                    let (out, delivery) = self.network.deliver_attempt_traced(dst, q, attempt);
                    (attempt, out, delivery)
                }
            };
            probe.queries += 1;
            probe.elapsed_ms = probe.elapsed_ms.saturating_add(out.elapsed_ms());
            let class = ResponseClass::of(out.reply(), qname);
            attempts_here += 1;
            if let Some(sink) = &self.telemetry {
                sink.tally(&class);
            }
            if let Some(verdict) = delivery.verdict() {
                self.trace(|| TraceData::Fault {
                    dst,
                    attempt,
                    verdict: verdict.into(),
                    extra_ms: u64::from(delivery.fault.extra_delay_ms),
                });
            }
            self.trace(|| TraceData::Response {
                dst,
                attempt,
                class: class.label().into(),
                ms: u64::from(out.elapsed_ms()),
            });
            if delivery.fault.refuse {
                self.trace_dump_once("refused_burst");
            }
            if !class.is_retryable() {
                if attempts_here > 1 {
                    if let Some(sink) = &self.telemetry {
                        sink.retry_recovered.inc();
                    }
                }
                return (class, attempts_here);
            }
            if attempts_here >= self.retry.max_attempts {
                if attempts_here > 1 {
                    if let Some(sink) = &self.telemetry {
                        sink.retry_exhausted.inc();
                    }
                    self.trace_dump_once("retry_exhausted");
                }
                return (class, attempts_here);
            }
            if !self.limiter.try_acquire_retry(dst, self.retry.per_destination_budget) {
                if let Some(sink) = &self.telemetry {
                    sink.retry_budget_denied.inc();
                }
                self.trace(|| TraceData::RetryDenied { dst });
                return (class, attempts_here);
            }
            let backoff = self.retry.backoff_ms(dst, qname, attempts_here);
            probe.elapsed_ms = probe.elapsed_ms.saturating_add(backoff);
            if let Some(sink) = &self.telemetry {
                sink.retry_attempts.inc();
                sink.retry_backoff_ms.record(f64::from(backoff));
            }
            self.trace(|| TraceData::Backoff {
                dst,
                attempt: attempts_here,
                ms: u64::from(backoff),
            });
        }
    }

    /// Resolves a hostname, charging the probe for the side queries.
    fn side_resolve(&self, host: &DomainName, probe: &mut DomainProbe) -> Vec<Ipv4Addr> {
        self.limiter.acquire_for(QueryRound::Side, None);
        self.trace_at(Step::AddrResolve, || TraceData::Charge { round: "side".into(), dst: None });
        let addrs = match self.resolver.resolve(host, RecordType::A) {
            Ok(res) => {
                // Book the resolver's extra queries beyond the one
                // already acquired (a cache hit costs zero, which the
                // upfront acquire conservatively over-counts).
                self.limiter.account(QueryRound::Side, u64::from(res.queries).saturating_sub(1));
                probe.queries += res.queries;
                probe.elapsed_ms = probe.elapsed_ms.saturating_add(res.elapsed_ms);
                res.addresses()
            }
            Err(_) => Vec::new(),
        };
        self.trace_at(Step::AddrResolve, || TraceData::Resolve {
            host: host.to_string(),
            addrs: addrs.clone(),
        });
        addrs
    }

    /// Walks from the root toward the domain, recording the parent-zone
    /// level: its addresses, responses, and the parent-side NS set.
    fn walk_to_parent(&self, domain: &DomainName, probe: &mut DomainProbe) {
        self.trace_step(Step::ParentNs);
        let mut level: Vec<Ipv4Addr> = self.resolver.roots().to_vec();
        let mut level_zone = DomainName::root();

        for _ in 0..MAX_WALK_DEPTH {
            let mut next: Option<(DomainName, Vec<Ipv4Addr>)> = None;
            let mut observations: Vec<ServerObservation> = Vec::new();
            let mut p: Vec<DomainName> = Vec::new();
            let mut done = false;

            for &addr in &level {
                let (class, attempts) = self.send(addr, domain, probe);
                match &class {
                    ResponseClass::Authoritative(targets) => {
                        for t in targets {
                            if !p.contains(t) {
                                p.push(t.clone());
                            }
                        }
                        done = true;
                    }
                    ResponseClass::Referral { cut, targets, glue } => {
                        if cut == domain {
                            for t in targets {
                                if !p.contains(t) {
                                    p.push(t.clone());
                                }
                            }
                            done = true;
                        } else if cut.is_subdomain_of(&level_zone)
                            && domain.is_subdomain_of(cut)
                            && next.is_none()
                        {
                            let mut addrs = Vec::new();
                            for t in targets {
                                let glued: Vec<Ipv4Addr> =
                                    glue.iter().filter(|(n, _)| n == t).map(|&(_, a)| a).collect();
                                if glued.is_empty() {
                                    addrs.extend(self.side_resolve(t, probe));
                                } else {
                                    addrs.extend(glued);
                                }
                            }
                            addrs.dedup();
                            self.trace_at(Step::Referral, || TraceData::Referral {
                                cut: cut.to_string(),
                                targets: targets.len() as u64,
                            });
                            next = Some((cut.clone(), addrs));
                        }
                        // Upward or sideways referrals: useless, move on.
                    }
                    _ => {}
                }
                observations.push(ServerObservation { addr, class, attempts });
            }

            if done || next.is_none() {
                probe.parent_zone = Some(level_zone);
                probe.parent_addrs = level;
                probe.parent_observations = observations;
                probe.parent_ns = p;
                return;
            }
            let (zone, addrs) = next.expect("just checked");
            if addrs.is_empty() {
                // Glueless, unresolvable delegation: the parent zone is
                // unreachable — record the silence.
                probe.parent_zone = Some(zone);
                return;
            }
            level_zone = zone;
            level = addrs;
        }
    }

    /// Step ③–④ plus the final per-address sweep: query every identified
    /// nameserver for the domain's NS records.
    fn query_child_side(&self, domain: &DomainName, probe: &mut DomainProbe) {
        self.trace_step(Step::ChildNs);
        let mut pending: Vec<DomainName> = Vec::new();
        for h in &probe.parent_ns {
            if !pending.contains(h) {
                pending.push(h.clone());
            }
        }
        let mut seen: BTreeSet<DomainName> = pending.iter().cloned().collect();
        let mut processed = 0usize;

        // Glue from the parent's referrals resolves in-bailiwick targets
        // below the cut — the only source of addresses for them when the
        // child zone itself is dead.
        let mut glue_map: std::collections::HashMap<DomainName, Vec<Ipv4Addr>> =
            std::collections::HashMap::new();
        for obs in &probe.parent_observations {
            if let ResponseClass::Referral { glue, .. } = &obs.class {
                for (host, addr) in glue {
                    let slot = glue_map.entry(host.clone()).or_default();
                    if !slot.contains(addr) {
                        slot.push(*addr);
                    }
                }
            }
        }

        while let Some(host) = pending.first().cloned() {
            pending.remove(0);
            processed += 1;
            if processed > MAX_CHILD_HOSTS {
                break;
            }
            let addrs = match glue_map.get(&host) {
                Some(glued) => glued.clone(),
                None => self.side_resolve(&host, probe),
            };
            // All addresses of this host sit at the same referral depth
            // and are independent queries — one batch wave against the
            // network; answer processing is pure bookkeeping and runs
            // after, in address order, exactly as the sequential loop
            // interleaved it.
            let outcomes = self.send_batch(&addrs, domain, probe);
            let mut observations = Vec::with_capacity(addrs.len());
            for (&addr, (class, attempts)) in addrs.iter().zip(outcomes) {
                if let ResponseClass::Authoritative(targets) = &class {
                    for t in targets {
                        if !probe.child_ns.contains(t) {
                            probe.child_ns.push(t.clone());
                        }
                        if seen.insert(t.clone()) {
                            pending.push(t.clone());
                        }
                    }
                }
                observations.push(ServerObservation { addr, class, attempts });
            }
            probe.servers.push(ServerProbe {
                in_parent: probe.parent_ns.contains(&host),
                in_child: false, // fixed below
                host,
                addrs,
                observations,
                recovered_in_round2: false,
            });
        }
        for s in &mut probe.servers {
            s.in_child = probe.child_ns.contains(&s.host);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::{DomainName as DN, Soa, Zone};
    use govdns_simnet::{AuthoritativeServer, ServerBehavior};

    fn n(s: &str) -> DN {
        s.parse().unwrap()
    }

    /// root → zz → gov.zz, with one healthy child (a.gov.zz), one stale
    /// child (stale.gov.zz, dead NS), one centrally hosted child
    /// (central.gov.zz, served by the gov.zz servers themselves), and a
    /// deeper tree under inter.gov.zz.
    fn network() -> (SimNetwork, Vec<Ipv4Addr>) {
        let mut net = SimNetwork::new(3);
        let root_ip = Ipv4Addr::new(10, 0, 0, 1);
        let tld_ip = Ipv4Addr::new(10, 1, 0, 1);
        let gov_ip = Ipv4Addr::new(10, 2, 0, 1);
        let a_ip = Ipv4Addr::new(10, 3, 0, 1);
        let inter_ip = Ipv4Addr::new(10, 4, 0, 1);

        let mut root = Zone::new(DN::root());
        root.add_ns(DN::root(), n("ns1.rootns.net"));
        root.add_a(n("ns1.rootns.net"), root_ip);
        root.add_ns(n("zz"), n("ns1.nic.zz"));
        root.add_glue(n("ns1.nic.zz"), tld_ip);
        net.add_server(
            AuthoritativeServer::new(root_ip, ServerBehavior::Responsive).with_zone(root),
        );

        let mut tld = Zone::new(n("zz"));
        tld.add_ns(n("zz"), n("ns1.nic.zz"));
        tld.add_a(n("ns1.nic.zz"), tld_ip);
        tld.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        tld.add_glue(n("ns1.gov.zz"), gov_ip);
        net.add_server(AuthoritativeServer::new(tld_ip, ServerBehavior::Responsive).with_zone(tld));

        let mut gov = Zone::new(n("gov.zz"));
        gov.set_soa(Soa::new(n("ns1.gov.zz"), n("hostmaster.gov.zz")));
        gov.add_ns(n("gov.zz"), n("ns1.gov.zz"));
        gov.add_a(n("ns1.gov.zz"), gov_ip);
        // Healthy delegation.
        gov.add_ns(n("a.gov.zz"), n("ns1.a.gov.zz"));
        gov.add_ns(n("a.gov.zz"), n("ns2.a.gov.zz"));
        gov.add_glue(n("ns1.a.gov.zz"), a_ip);
        gov.add_glue(n("ns2.a.gov.zz"), a_ip);
        // Stale delegation: glue points nowhere.
        gov.add_ns(n("stale.gov.zz"), n("ns1.stale.gov.zz"));
        gov.add_glue(n("ns1.stale.gov.zz"), Ipv4Addr::new(10, 9, 9, 9));
        // Centrally hosted child (same servers as the parent).
        gov.add_ns(n("central.gov.zz"), n("ns1.gov.zz"));
        // Dead intermediate with a child below it.
        gov.add_ns(n("inter.gov.zz"), n("ns1.inter.gov.zz"));
        gov.add_glue(n("ns1.inter.gov.zz"), inter_ip);

        let mut central = Zone::new(n("central.gov.zz"));
        central.add_ns(n("central.gov.zz"), n("ns1.gov.zz"));
        let gov_server = AuthoritativeServer::new(gov_ip, ServerBehavior::Responsive)
            .with_zone(gov)
            .with_zone(central);
        net.add_server(gov_server);

        let mut a = Zone::new(n("a.gov.zz"));
        a.add_ns(n("a.gov.zz"), n("ns1.a.gov.zz"));
        a.add_ns(n("a.gov.zz"), n("ns2.a.gov.zz"));
        a.add_a(n("ns1.a.gov.zz"), a_ip);
        a.add_a(n("ns2.a.gov.zz"), a_ip);
        net.add_server(AuthoritativeServer::new(a_ip, ServerBehavior::Responsive).with_zone(a));

        // inter_ip is intentionally unrouted: the intermediate is dead.
        let _ = inter_ip;

        (net, vec![root_ip])
    }

    fn client(net: &SimNetwork, roots: Vec<Ipv4Addr>) -> ProbeClient<'_> {
        ProbeClient::new(net, roots, RateLimiter::default())
    }

    #[test]
    fn healthy_domain_full_walk() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("a.gov.zz"));
        assert_eq!(p.parent_zone, Some(n("gov.zz")));
        assert!(p.parent_responsive());
        assert_eq!(p.parent_ns.len(), 2);
        assert_eq!(p.child_ns.len(), 2);
        assert!(p.has_authoritative_answer());
        assert_eq!(p.defective(), (false, false));
        assert_eq!(p.ns_union().len(), 2);
        assert_eq!(p.ns_addrs().len(), 1, "both NS share one address");
    }

    #[test]
    fn removed_domain_gets_empty_parent_response() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("removed.gov.zz"));
        assert!(p.parent_responsive());
        assert!(!p.parent_nonempty());
        assert!(!p.has_authoritative_answer());
    }

    #[test]
    fn stale_domain_is_fully_defective() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("stale.gov.zz"));
        assert!(p.parent_nonempty());
        assert!(!p.has_authoritative_answer());
        assert_eq!(p.defective(), (true, true));
        assert_eq!(p.servers.len(), 1);
        assert!(!p.servers[0].responded());
    }

    #[test]
    fn central_hosting_answers_at_the_parent_step() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("central.gov.zz"));
        // The gov.zz server is authoritative for the child, so the walk
        // records an in-bailiwick authoritative answer as P.
        assert!(p.parent_nonempty());
        assert_eq!(p.parent_ns, vec![n("ns1.gov.zz")]);
        assert!(p.has_authoritative_answer());
    }

    #[test]
    fn dead_subtree_child_has_unreachable_parent() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("x.inter.gov.zz"));
        assert_eq!(p.parent_zone, Some(n("inter.gov.zz")));
        assert!(!p.parent_responsive(), "obs: {:?}", p.parent_observations);
        assert!(!p.parent_nonempty());
    }

    #[test]
    fn retry_merges_rounds() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let mut p = c.probe(&n("stale.gov.zz"));
        let queries_before = p.queries;
        c.retry_child_side(&mut p);
        assert_eq!(p.rounds, 2);
        assert!(p.queries > queries_before);
        assert!(!p.has_authoritative_answer(), "retry cannot revive a dead zone");
    }

    #[test]
    fn telemetry_tallies_classes_and_rounds() {
        let (net, roots) = network();
        let registry = Registry::new();
        let limiter = RateLimiter::with_telemetry(200, None, &registry);
        let c = ProbeClient::new(&net, roots, limiter.clone()).with_telemetry(&registry);
        let mut p = c.probe(&n("stale.gov.zz"));
        c.retry_child_side(&mut p);
        let snap = registry.snapshot();
        assert!(snap.counters["probe.class.referral"] > 0);
        assert!(snap.counters["probe.class.timeout"] > 0);
        assert_eq!(snap.stages["probe.domain"].count, 1);
        let ledger = limiter.ledger();
        assert!(ledger.per_round["round1"] > 0);
        assert!(ledger.per_round["round2"] > 0, "retry must book into round 2");
        assert_eq!(ledger.total, limiter.issued());
        assert_eq!(snap.counters["ratelimit.issued"], limiter.issued());
    }

    use govdns_simnet::{FaultPlan, FaultProfile, FaultScope};

    fn flap(addr: Ipv4Addr, seed: u64, rate: f64, recover_after: u32) -> FaultPlan {
        FaultPlan::new(seed)
            .with_rule(FaultScope::Server(addr), FaultProfile::Flap { rate, recover_after })
    }

    #[test]
    fn retries_punch_through_transient_flaps() {
        let (net, roots) = network();
        let a_ip = Ipv4Addr::new(10, 3, 0, 1);
        // Two attempts swallowed, the third answers: adaptive retry
        // (3 attempts) resolves this within round 1.
        net.install_faults(Some(flap(a_ip, 1, 1.0, 2)));
        let registry = Registry::new();
        let c = ProbeClient::new(&net, roots, RateLimiter::with_telemetry(10_000, None, &registry))
            .with_telemetry(&registry)
            .with_retry(RetryPolicy::adaptive());
        let p = c.probe(&n("a.gov.zz"));
        assert!(p.has_authoritative_answer(), "obs: {:?}", p.servers);
        assert_eq!(p.rounds, 1);
        assert!(
            p.servers.iter().any(|s| s.observations.iter().any(|o| o.attempts > 1)),
            "no retried observation recorded"
        );
        assert!(p.degraded(), "a retried answer is a degraded answer");
        let snap = registry.snapshot();
        assert!(snap.counters["probe.retry.attempts"] >= 2);
        assert!(snap.counters["probe.retry.recovered"] >= 1);
    }

    #[test]
    fn flapping_child_recovers_in_round_two_as_degraded() {
        let (net, roots) = network();
        let a_ip = Ipv4Addr::new(10, 3, 0, 1);
        // recover_after = 8 outlasts round 1 entirely (3 attempts per
        // server object, both landing on the same (addr, qname) pair),
        // so only the second round crosses the recovery threshold.
        net.install_faults(Some(flap(a_ip, 5, 1.0, 8)));
        let c = client(&net, roots).with_retry(RetryPolicy::adaptive());
        let mut p = c.probe(&n("a.gov.zz"));
        assert!(p.parent_nonempty());
        assert!(!p.has_authoritative_answer(), "round 1 should fail: {:?}", p.servers);
        c.retry_child_side(&mut p);
        assert!(p.has_authoritative_answer(), "round 2 should recover: {:?}", p.servers);
        assert!(p.recovered_in_round2());
        assert!(p.degraded());
        assert_eq!(p.rounds, 2);
    }

    /// Property over fault seeds: a healthy domain behind a flapping
    /// server always comes back within two rounds (and is marked
    /// degraded exactly when the flap actually fired), while a
    /// permanently lame delegation is never revived.
    #[test]
    fn fault_seeds_recover_flaps_but_never_the_dead() {
        for seed in 0..16u64 {
            let (net, roots) = network();
            let a_ip = Ipv4Addr::new(10, 3, 0, 1);
            net.install_faults(Some(flap(a_ip, seed, 0.5, 8)));
            let c = client(&net, roots).with_retry(RetryPolicy::adaptive());
            let mut p = c.probe(&n("a.gov.zz"));
            if !p.has_authoritative_answer() {
                c.retry_child_side(&mut p);
            }
            let flapped = net.fault_stats().flap_timeouts > 0;
            assert!(p.has_authoritative_answer(), "seed {seed}: flap never recovered");
            assert_eq!(
                p.degraded(),
                flapped,
                "seed {seed}: degraded must mirror whether the flap fired"
            );

            // Same fault plan over the whole network: the dead zone
            // stays dead no matter the seed.
            let (net, roots) = network();
            net.install_faults(Some(
                FaultPlan::new(seed)
                    .with_rule(FaultScope::All, FaultProfile::Flap { rate: 0.4, recover_after: 3 }),
            ));
            let c = client(&net, roots).with_retry(RetryPolicy::adaptive());
            let mut p = c.probe(&n("stale.gov.zz"));
            if p.parent_nonempty() && !p.has_authoritative_answer() {
                c.retry_child_side(&mut p);
            }
            assert!(!p.has_authoritative_answer(), "seed {seed} revived a dead zone");
        }
    }

    #[test]
    fn response_class_distinctions() {
        let (net, roots) = network();
        let c = client(&net, roots);
        let p = c.probe(&n("a.gov.zz"));
        // Parent observations are referrals, not answers.
        assert!(p
            .parent_observations
            .iter()
            .any(|o| matches!(o.class, ResponseClass::Referral { .. })));
        // Server observations are authoritative.
        assert!(p
            .servers
            .iter()
            .all(|s| s.observations.iter().all(|o| o.class.is_authoritative())));
    }

    #[test]
    fn breaker_state_machine_walks_closed_open_half_open() {
        let dst = Ipv4Addr::new(10, 8, 0, 1);
        let bank = BreakerBank::new(BreakerPolicy { failure_threshold: 2, cooldown_rounds: 1 });

        // Unknown destination: always admitted.
        assert_eq!(bank.admit(dst, 1), BreakerAdmission::Allowed);
        // One failure is below threshold; the second trips it.
        assert_eq!(bank.on_result(dst, 1, true), None);
        assert_eq!(bank.admit(dst, 1), BreakerAdmission::Allowed);
        assert_eq!(bank.on_result(dst, 1, true), Some(BreakerTransition::Tripped));

        // Open within the cooldown round: denied, and the denial is counted.
        assert_eq!(bank.admit(dst, 1), BreakerAdmission::Denied);
        assert_eq!(bank.admit(dst, 1), BreakerAdmission::Denied);
        let snap = &bank.snapshot()[0];
        assert_eq!(snap.phase, BreakerPhase::Open);
        assert_eq!(snap.denied, 2);
        assert_eq!(snap.trips, 1);

        // Cooldown expired (rank 2 ≥ opened_rank 1 + 1): half-open trial.
        assert_eq!(bank.admit(dst, 2), BreakerAdmission::Trial);
        // Failed trial reopens; the next trial must wait a fresh cooldown.
        assert_eq!(bank.on_result(dst, 2, true), Some(BreakerTransition::Reopened));
        assert_eq!(bank.admit(dst, 2), BreakerAdmission::Denied);
        assert_eq!(bank.admit(dst, 3), BreakerAdmission::Trial);
        // Successful trial fully closes: the failure streak restarts.
        assert_eq!(bank.on_result(dst, 3, false), Some(BreakerTransition::Reclosed));
        assert_eq!(bank.admit(dst, 3), BreakerAdmission::Allowed);
        assert_eq!(
            bank.on_result(dst, 3, true),
            None,
            "one failure after reclose is below threshold"
        );
        let snap = &bank.snapshot()[0];
        assert_eq!(snap.phase, BreakerPhase::Closed);
        assert_eq!(snap.trips, 2);
    }

    #[test]
    fn breaker_success_resets_the_failure_streak() {
        let dst = Ipv4Addr::new(10, 8, 0, 2);
        let bank = BreakerBank::new(BreakerPolicy::guarded());
        for _ in 0..2 {
            assert_eq!(bank.on_result(dst, 1, true), None);
        }
        assert_eq!(bank.on_result(dst, 1, false), None);
        // Two more failures after the reset: still below the threshold of 3.
        assert_eq!(bank.on_result(dst, 1, true), None);
        assert_eq!(bank.on_result(dst, 1, true), None);
        assert_eq!(bank.snapshot()[0].phase, BreakerPhase::Closed);
        assert_eq!(bank.on_result(dst, 1, true), Some(BreakerTransition::Tripped));
    }

    #[test]
    fn breaker_snapshot_round_trips_through_restore() {
        let bank = BreakerBank::new(BreakerPolicy::guarded());
        for i in 0..3u8 {
            let dst = Ipv4Addr::new(10, 8, 1, i);
            for _ in 0..3 {
                bank.on_result(dst, 1, true);
            }
            bank.admit(dst, 1);
        }
        let snap = bank.snapshot();
        let fresh = BreakerBank::new(BreakerPolicy::guarded());
        fresh.restore(&snap);
        assert_eq!(fresh.snapshot(), snap);
        assert_eq!(fresh.quarantined(), bank.quarantined());
        assert_eq!(fresh.admit(Ipv4Addr::new(10, 8, 1, 0), 1), BreakerAdmission::Denied);
    }

    #[test]
    fn disabled_bank_is_a_no_op() {
        let dst = Ipv4Addr::new(10, 8, 0, 3);
        let bank = BreakerBank::new(BreakerPolicy::none());
        for _ in 0..10 {
            assert_eq!(bank.on_result(dst, 1, true), None);
        }
        assert_eq!(bank.admit(dst, 1), BreakerAdmission::Allowed);
        assert!(bank.snapshot().is_empty());
    }

    #[test]
    fn breaker_quarantines_a_dead_server_and_reclosing_trial_recovers_it() {
        let (net, roots) = network();
        let a_ip = Ipv4Addr::new(10, 3, 0, 1);
        // Attempt 0 (round 1's tripping exchange) is swallowed; the
        // denied exchange never bumps the attempt counter, so round 2's
        // half-open trial is attempt 1 — past the recovery threshold.
        net.install_faults(Some(flap(a_ip, 1, 1.0, 1)));
        let registry = Registry::new();
        let bank = BreakerBank::new(BreakerPolicy { failure_threshold: 1, cooldown_rounds: 1 });
        let c = ProbeClient::new(&net, roots, RateLimiter::with_telemetry(10_000, None, &registry))
            .with_telemetry(&registry)
            .with_breakers(bank.clone());
        let mut p = c.probe(&n("a.gov.zz"));
        assert!(!p.has_authoritative_answer(), "round 1 should fail: {:?}", p.servers);
        // Both NS targets share a_ip: the first exchange trips the
        // breaker, the second is denied without sending.
        assert!(
            p.servers.iter().any(|s| s
                .observations
                .iter()
                .any(|o| { o.class == ResponseClass::Skipped && o.attempts == 0 })),
            "denied exchange must surface as a zero-attempt Skipped observation: {:?}",
            p.servers
        );
        let phase_of = |bank: &BreakerBank, addr: Ipv4Addr| {
            bank.snapshot().iter().find(|s| s.addr == addr).map(|s| s.phase)
        };
        assert_eq!(phase_of(&bank, a_ip), Some(BreakerPhase::Open));

        // Round 2 (rank 2) is past the cooldown: the half-open trial
        // goes through, succeeds, and recloses the breaker.
        c.retry_child_side(&mut p);
        assert!(p.has_authoritative_answer(), "round 2 trial should recover: {:?}", p.servers);
        assert!(p.recovered_in_round2());
        assert_eq!(phase_of(&bank, a_ip), Some(BreakerPhase::Closed));
        assert!(bank.quarantined().is_empty() || bank.quarantined()[0].0 == a_ip);

        let snap = registry.snapshot();
        assert_eq!(snap.counters["probe.breaker.tripped"], 1);
        assert!(snap.counters["probe.breaker.denied"] >= 1);
        assert_eq!(snap.counters["probe.class.skipped"], snap.counters["probe.breaker.denied"]);
        assert_eq!(snap.counters["probe.breaker.half_open_trials"], 1);
        assert_eq!(snap.counters["probe.breaker.reclosed"], 1);
        assert_eq!(snap.counters["probe.breaker.reopened"], 0);
    }

    #[test]
    fn denied_exchanges_charge_nothing_to_the_limiter() {
        let (net, roots) = network();
        let a_ip = Ipv4Addr::new(10, 3, 0, 1);
        net.install_faults(Some(flap(a_ip, 1, 1.0, 99)));
        let limiter = RateLimiter::default();
        let bank = BreakerBank::new(BreakerPolicy { failure_threshold: 1, cooldown_rounds: 9 });
        let c = ProbeClient::new(&net, roots, limiter.clone()).with_breakers(bank.clone());
        let p = c.probe(&n("a.gov.zz"));
        let skipped: u64 = p
            .servers
            .iter()
            .flat_map(|s| &s.observations)
            .filter(|o| o.class == ResponseClass::Skipped)
            .count() as u64;
        assert!(skipped >= 1, "expected at least one denied exchange: {:?}", p.servers);
        let denied: u64 = bank.snapshot().iter().map(|s| s.denied).sum();
        assert_eq!(denied, skipped);
        // The denied exchanges charged neither the limiter nor the
        // wire: without retries, a_ip's ledger charge equals the
        // attempts the network actually saw for it.
        let charged = limiter
            .export_state()
            .per_destination
            .iter()
            .find(|(addr, _)| *addr == a_ip)
            .map_or(0, |&(_, count)| count);
        let delivered = net
            .per_destination_snapshot()
            .iter()
            .find(|(addr, _)| *addr == a_ip)
            .map_or(0, |&(_, count)| count);
        assert!(charged > 0, "the tripping exchange itself is charged");
        assert_eq!(charged, delivered);
    }
}
