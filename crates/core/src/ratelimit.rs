//! Query pacing — the ethics machinery of §III-D.
//!
//! The real campaign ran from one static address with a research PTR
//! record and limited its query rate. In the simulation queries are
//! instantaneous, so the limiter *accounts* instead of sleeping: it
//! tracks the total query count and computes how long the campaign would
//! take at the configured rate, which the report surfaces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared query-budget meter.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    issued: AtomicU64,
    max_qps: u32,
}

impl RateLimiter {
    /// Creates a limiter capped at `max_qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `max_qps` is zero.
    pub fn new(max_qps: u32) -> Self {
        assert!(max_qps > 0, "rate limit must be positive");
        RateLimiter { inner: Arc::new(Inner { issued: AtomicU64::new(0), max_qps }) }
    }

    /// Accounts for one query about to be sent.
    pub fn acquire(&self) {
        self.inner.issued.fetch_add(1, Ordering::Relaxed);
    }

    /// Total queries issued so far.
    pub fn issued(&self) -> u64 {
        self.inner.issued.load(Ordering::Relaxed)
    }

    /// The configured cap.
    pub fn max_qps(&self) -> u32 {
        self.inner.max_qps
    }

    /// Wall-clock seconds the campaign would need at the configured rate.
    pub fn paced_duration_secs(&self) -> u64 {
        self.issued().div_ceil(u64::from(self.inner.max_qps))
    }
}

impl Default for RateLimiter {
    /// 200 queries per second — modest for a research scanner.
    fn default() -> Self {
        RateLimiter::new(200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_paces() {
        let rl = RateLimiter::new(100);
        for _ in 0..250 {
            rl.acquire();
        }
        assert_eq!(rl.issued(), 250);
        assert_eq!(rl.paced_duration_secs(), 3);
        assert_eq!(rl.max_qps(), 100);
    }

    #[test]
    fn clones_share_the_budget() {
        let rl = RateLimiter::new(10);
        let rl2 = rl.clone();
        rl.acquire();
        rl2.acquire();
        assert_eq!(rl.issued(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        RateLimiter::new(0);
    }
}
