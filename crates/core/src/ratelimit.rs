//! Query pacing — the ethics machinery of §III-D.
//!
//! The real campaign ran from one static address with a research PTR
//! record and limited its query rate. In the simulation queries are
//! instantaneous, so the limiter *accounts* instead of sleeping: it
//! tracks the total query count and computes how long the campaign would
//! take at the configured rate, which the report surfaces.
//!
//! Beyond the total, the limiter keeps a per-round and per-destination
//! **query ledger** — the accounting a reviewer would ask for when
//! judging whether the campaign stayed within its self-imposed load
//! bounds. [`RateLimiter::ledger`] freezes it into a
//! [`QueryLedger`](govdns_telemetry::QueryLedger).

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use govdns_simnet::{dst_shard, DST_SHARDS};
use govdns_telemetry::{Counter, QueryLedger, Registry};

/// A per-destination `u64` table sharded [`DST_SHARDS`] ways by
/// [`dst_shard`], so concurrent probe workers booking queries against
/// different destinations do not serialize on one mutex. Exports merge
/// and sort the shards, keeping checkpoint serialization byte-stable.
#[derive(Debug)]
struct ShardedLedgerMap {
    shards: [Mutex<HashMap<Ipv4Addr, u64>>; DST_SHARDS],
}

impl ShardedLedgerMap {
    fn new() -> Self {
        ShardedLedgerMap { shards: std::array::from_fn(|_| Mutex::new(HashMap::new())) }
    }

    fn add(&self, dst: Ipv4Addr, n: u64) {
        *self.shards[dst_shard(dst)].lock().entry(dst).or_insert(0) += n;
    }

    fn get(&self, dst: Ipv4Addr) -> u64 {
        self.shards[dst_shard(dst)].lock().get(&dst).copied().unwrap_or(0)
    }

    /// Atomically charges one unit against `dst` unless its count has
    /// already reached `budget`; returns whether the charge was booked.
    fn try_charge(&self, dst: Ipv4Addr, budget: Option<u64>) -> bool {
        let mut shard = self.shards[dst_shard(dst)].lock();
        let slot = shard.entry(dst).or_insert(0);
        if budget.is_some_and(|b| *slot >= b) {
            return false;
        }
        *slot += 1;
        true
    }

    /// Merged snapshot, sorted by address — the byte-stable export order
    /// journal checkpoints rely on.
    fn snapshot_sorted(&self) -> Vec<(Ipv4Addr, u64)> {
        let mut all: Vec<(Ipv4Addr, u64)> = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().iter().map(|(&a, &c)| (a, c)));
        }
        all.sort_by_key(|&(a, _)| a);
        all
    }

    fn restore(&self, entries: &[(Ipv4Addr, u64)]) {
        for shard in &self.shards {
            shard.lock().clear();
        }
        for &(addr, count) in entries {
            self.shards[dst_shard(addr)].lock().insert(addr, count);
        }
    }

    /// Folds `f` over every `(addr, count)` entry across all shards.
    fn fold<A>(&self, init: A, mut f: impl FnMut(A, Ipv4Addr, u64) -> A) -> A {
        let mut acc = init;
        for shard in &self.shards {
            for (&addr, &count) in shard.lock().iter() {
                acc = f(acc, addr, count);
            }
        }
        acc
    }
}

/// The phase of the campaign a query belongs to, for ledger accounting.
///
/// The paper's probing runs in two passes (round 1, then a round-2
/// retry for domains that looked dead), plus SOA consistency checks and
/// side lookups done through the stub resolver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryRound {
    /// First-pass delegation walk and child-side probing.
    Round1,
    /// Second-pass retry of unresponsive domains.
    Round2,
    /// SOA serial fetches for the consistency analysis.
    Soa,
    /// Stub-resolver side lookups (out-of-zone NS targets).
    Side,
    /// Adaptive backoff retries of faulted exchanges.
    Retry,
}

impl QueryRound {
    /// Stable label used as the ledger key.
    pub fn as_str(self) -> &'static str {
        match self {
            QueryRound::Round1 => "round1",
            QueryRound::Round2 => "round2",
            QueryRound::Soa => "soa",
            QueryRound::Side => "side",
            QueryRound::Retry => "retry",
        }
    }

    /// The round's position in the campaign's probing schedule: 1 for
    /// first-pass traffic (round 1, side lookups, their retries), 2 for
    /// everything that runs after the first pass (round 2, SOA checks).
    ///
    /// Circuit-breaker cooldowns are measured in this rank — "wait one
    /// round" means a breaker opened during the first pass admits its
    /// half-open trial in round 2 — which keeps breaker behaviour a
    /// pure function of campaign structure rather than wall-clock time.
    pub fn rank(self) -> u32 {
        match self {
            QueryRound::Round1 | QueryRound::Side | QueryRound::Retry => 1,
            QueryRound::Round2 | QueryRound::Soa => 2,
        }
    }

    /// Every round, in ledger-index order (the order
    /// [`LimiterState::per_round`] uses).
    pub const ALL: [QueryRound; 5] = [
        QueryRound::Round1,
        QueryRound::Round2,
        QueryRound::Soa,
        QueryRound::Side,
        QueryRound::Retry,
    ];

    fn index(self) -> usize {
        match self {
            QueryRound::Round1 => 0,
            QueryRound::Round2 => 1,
            QueryRound::Soa => 2,
            QueryRound::Side => 3,
            QueryRound::Retry => 4,
        }
    }
}

/// A frozen copy of a limiter's complete ledger state, exported by
/// [`RateLimiter::export_state`] for campaign-journal checkpoints and
/// replayed by [`RateLimiter::restore_state`] on resume.
///
/// Both per-destination maps are kept as sorted vectors so the
/// serialized form is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LimiterState {
    /// Total queries issued.
    pub issued: u64,
    /// Per-round totals, indexed like [`QueryRound::ALL`].
    pub per_round: [u64; 5],
    /// Per-destination query counts, sorted by address.
    pub per_destination: Vec<(Ipv4Addr, u64)>,
    /// Per-destination backoff-retry charges, sorted by address.
    pub per_destination_retries: Vec<(Ipv4Addr, u64)>,
}

/// A shared query-budget meter with per-round and per-destination
/// ledger accounting.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    issued: AtomicU64,
    per_round: [AtomicU64; 5],
    max_qps: u32,
    /// Per-destination soft cap for ledger reporting; `None` means
    /// uncapped — an explicit state, not a zero sentinel a default could
    /// silently select.
    destination_cap: Option<u64>,
    per_destination: ShardedLedgerMap,
    /// Backoff retries already charged to each destination, for the
    /// per-destination retry budget.
    per_destination_retries: ShardedLedgerMap,
    /// Mirror of `issued` in the telemetry registry, when attached.
    counter: Option<Counter>,
}

impl RateLimiter {
    /// Creates a limiter capped at `max_qps` queries per second.
    ///
    /// # Panics
    ///
    /// Panics if `max_qps` is zero.
    pub fn new(max_qps: u32) -> Self {
        RateLimiter::build(max_qps, None, None)
    }

    /// Creates a limiter that mirrors its total into `registry` as the
    /// `ratelimit.issued` counter and reports destinations exceeding
    /// `destination_cap` queries in the ledger (`None` = uncapped).
    ///
    /// # Panics
    ///
    /// Panics if `max_qps` is zero.
    pub fn with_telemetry(max_qps: u32, destination_cap: Option<u64>, registry: &Registry) -> Self {
        RateLimiter::build(max_qps, destination_cap, Some(registry.counter("ratelimit.issued")))
    }

    fn build(max_qps: u32, destination_cap: Option<u64>, counter: Option<Counter>) -> Self {
        assert!(max_qps > 0, "rate limit must be positive");
        RateLimiter {
            inner: Arc::new(Inner {
                issued: AtomicU64::new(0),
                per_round: [const { AtomicU64::new(0) }; 5],
                max_qps,
                destination_cap,
                per_destination: ShardedLedgerMap::new(),
                per_destination_retries: ShardedLedgerMap::new(),
                counter,
            }),
        }
    }

    /// Accounts for one query about to be sent (booked as round 1).
    pub fn acquire(&self) {
        self.acquire_for(QueryRound::Round1, None);
    }

    /// Accounts for one query in `round`, optionally attributed to a
    /// destination for the per-destination cap ledger.
    pub fn acquire_for(&self, round: QueryRound, dst: Option<Ipv4Addr>) {
        self.inner.issued.fetch_add(1, Ordering::Relaxed);
        self.inner.per_round[round.index()].fetch_add(1, Ordering::Relaxed);
        if let Some(c) = &self.inner.counter {
            c.inc();
        }
        if let Some(dst) = dst {
            self.inner.per_destination.add(dst, 1);
        }
    }

    /// Tries to charge one backoff retry against `dst`'s retry budget.
    ///
    /// Returns `false` — and books nothing — when the destination has
    /// already burned `budget` retries; the probe client must then stop
    /// retrying and take the degraded observation as final. A `budget`
    /// of `None` is unlimited. Approved retries are booked into the
    /// [`QueryRound::Retry`] ledger slot and the per-destination ledger.
    pub fn try_acquire_retry(&self, dst: Ipv4Addr, budget: Option<u64>) -> bool {
        if !self.inner.per_destination_retries.try_charge(dst, budget) {
            return false;
        }
        self.acquire_for(QueryRound::Retry, Some(dst));
        true
    }

    /// Backoff retries charged to `dst` so far.
    pub fn retries_charged(&self, dst: Ipv4Addr) -> u64 {
        self.inner.per_destination_retries.get(dst)
    }

    /// Books `n` queries issued on the limiter's behalf by a component
    /// that does its own sending (the stub resolver reports how many
    /// lookups a resolution cost after the fact).
    pub fn account(&self, round: QueryRound, n: u64) {
        if n == 0 {
            return;
        }
        self.inner.issued.fetch_add(n, Ordering::Relaxed);
        self.inner.per_round[round.index()].fetch_add(n, Ordering::Relaxed);
        if let Some(c) = &self.inner.counter {
            c.add(n);
        }
    }

    /// Total queries issued so far.
    pub fn issued(&self) -> u64 {
        self.inner.issued.load(Ordering::Relaxed)
    }

    /// Queries issued so far in `round`.
    pub fn issued_in(&self, round: QueryRound) -> u64 {
        self.inner.per_round[round.index()].load(Ordering::Relaxed)
    }

    /// The configured cap.
    pub fn max_qps(&self) -> u32 {
        self.inner.max_qps
    }

    /// The per-destination soft cap (`None` = uncapped).
    pub fn destination_cap(&self) -> Option<u64> {
        self.inner.destination_cap
    }

    /// Exports the full ledger state for a campaign-journal checkpoint:
    /// totals, per-round splits, and both per-destination maps, with the
    /// maps in sorted order so the serialized checkpoint is byte-stable.
    pub fn export_state(&self) -> LimiterState {
        LimiterState {
            issued: self.issued(),
            per_round: QueryRound::ALL.map(|r| self.issued_in(r)),
            per_destination: self.inner.per_destination.snapshot_sorted(),
            per_destination_retries: self.inner.per_destination_retries.snapshot_sorted(),
        }
    }

    /// Overwrites the ledger with a checkpointed [`LimiterState`] — the
    /// resume path. Restoring also advances the mirrored
    /// `ratelimit.issued` telemetry counter by the restored total, so
    /// the counter keeps equalling [`issued`](RateLimiter::issued) on a
    /// resumed run. The retry map is what prevents double-charging: a
    /// destination that burned its [`QueryRound::Retry`] budget before
    /// the crash stays burned after resume.
    pub fn restore_state(&self, state: &LimiterState) {
        let previously_issued = self.inner.issued.swap(state.issued, Ordering::Relaxed);
        for (slot, &value) in self.inner.per_round.iter().zip(state.per_round.iter()) {
            slot.store(value, Ordering::Relaxed);
        }
        self.inner.per_destination.restore(&state.per_destination);
        self.inner.per_destination_retries.restore(&state.per_destination_retries);
        if let Some(c) = &self.inner.counter {
            c.add(state.issued.saturating_sub(previously_issued));
        }
    }

    /// Wall-clock seconds the campaign would need at the configured rate.
    pub fn paced_duration_secs(&self) -> u64 {
        self.issued().div_ceil(u64::from(self.inner.max_qps))
    }

    /// Freezes the ledger: totals, per-round splits, and the
    /// per-destination cap accounting for the ethics section.
    pub fn ledger(&self) -> QueryLedger {
        let cap = self.inner.destination_cap;
        // One pass over the sharded ledger: busiest destination, distinct
        // destination count, and how many are at the soft cap.
        let (busiest, distinct, at_cap) = self.inner.per_destination.fold(
            (0u64, 0u64, 0u64),
            |(busiest, distinct, at_cap), _addr, count| {
                (
                    busiest.max(count),
                    distinct + 1,
                    at_cap + u64::from(cap.is_some_and(|cap| count >= cap)),
                )
            },
        );
        QueryLedger {
            total: self.issued(),
            per_round: QueryRound::ALL
                .iter()
                .map(|&r| (r.as_str().to_owned(), self.issued_in(r)))
                .filter(|&(_, n)| n > 0)
                .collect(),
            max_qps: self.inner.max_qps,
            // The serialized ledger keeps the 0-as-uncapped convention.
            destination_cap: cap.unwrap_or(0),
            distinct_destinations: distinct,
            busiest_destination_queries: busiest,
            destinations_at_cap: at_cap,
        }
    }
}

impl Default for RateLimiter {
    /// 200 queries per second — modest for a research scanner.
    fn default() -> Self {
        RateLimiter::new(200)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_paces() {
        let rl = RateLimiter::new(100);
        for _ in 0..250 {
            rl.acquire();
        }
        assert_eq!(rl.issued(), 250);
        assert_eq!(rl.paced_duration_secs(), 3);
        assert_eq!(rl.max_qps(), 100);
    }

    #[test]
    fn clones_share_the_budget() {
        let rl = RateLimiter::new(10);
        let rl2 = rl.clone();
        rl.acquire();
        rl2.acquire();
        assert_eq!(rl.issued(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_rate() {
        RateLimiter::new(0);
    }

    #[test]
    fn ledger_splits_rounds_and_destinations() {
        let rl = RateLimiter::with_telemetry(100, Some(3), &Registry::new());
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(192, 0, 2, 2);
        for _ in 0..4 {
            rl.acquire_for(QueryRound::Round1, Some(a));
        }
        rl.acquire_for(QueryRound::Round2, Some(b));
        rl.acquire_for(QueryRound::Soa, None);
        rl.account(QueryRound::Side, 2);

        let ledger = rl.ledger();
        assert_eq!(ledger.total, 8);
        assert_eq!(ledger.per_round["round1"], 4);
        assert_eq!(ledger.per_round["round2"], 1);
        assert_eq!(ledger.per_round["soa"], 1);
        assert_eq!(ledger.per_round["side"], 2);
        assert_eq!(ledger.distinct_destinations, 2);
        assert_eq!(ledger.busiest_destination_queries, 4);
        assert_eq!(ledger.destinations_at_cap, 1);
        assert!(!ledger.within_cap());
    }

    #[test]
    fn telemetry_counter_mirrors_issued() {
        let registry = Registry::new();
        let rl = RateLimiter::with_telemetry(50, None, &registry);
        rl.acquire();
        rl.account(QueryRound::Side, 3);
        assert_eq!(rl.issued(), 4);
        assert_eq!(registry.snapshot().counters["ratelimit.issued"], 4);
        assert!(rl.ledger().within_cap());
    }

    #[test]
    fn retry_budget_denies_after_exhaustion() {
        let rl = RateLimiter::new(100);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(192, 0, 2, 2);
        assert!(rl.try_acquire_retry(a, Some(2)));
        assert!(rl.try_acquire_retry(a, Some(2)));
        assert!(!rl.try_acquire_retry(a, Some(2)), "budget of 2 exhausted");
        assert!(rl.try_acquire_retry(b, Some(2)), "budgets are per-destination");
        assert_eq!(rl.retries_charged(a), 2);
        assert_eq!(rl.issued_in(QueryRound::Retry), 3);
        assert_eq!(rl.ledger().per_round["retry"], 3);
        // Denied retries are not booked anywhere.
        assert_eq!(rl.issued(), 3);
    }

    #[test]
    fn unlimited_retry_budget_never_denies() {
        let rl = RateLimiter::new(100);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        for _ in 0..50 {
            assert!(rl.try_acquire_retry(a, None));
        }
        assert_eq!(rl.retries_charged(a), 50);
    }

    #[test]
    fn state_round_trips_and_mirrors_the_counter() {
        let registry = Registry::new();
        let rl = RateLimiter::with_telemetry(100, Some(3), &registry);
        let a = Ipv4Addr::new(192, 0, 2, 1);
        let b = Ipv4Addr::new(192, 0, 2, 2);
        for _ in 0..4 {
            rl.acquire_for(QueryRound::Round1, Some(a));
        }
        rl.acquire_for(QueryRound::Round2, Some(b));
        assert!(rl.try_acquire_retry(a, Some(2)));
        let state = rl.export_state();
        assert_eq!(state.issued, 6);
        assert_eq!(state.per_round, [4, 1, 0, 0, 1]);
        assert_eq!(state.per_destination, vec![(a, 5), (b, 1)]);
        assert_eq!(state.per_destination_retries, vec![(a, 1)]);

        // Restore into a fresh limiter: ledger, retry budget, and the
        // telemetry mirror all line up with the original.
        let registry2 = Registry::new();
        let fresh = RateLimiter::with_telemetry(100, Some(3), &registry2);
        fresh.restore_state(&state);
        assert_eq!(fresh.export_state(), state);
        assert_eq!(fresh.ledger(), rl.ledger());
        assert_eq!(registry2.snapshot().counters["ratelimit.issued"], fresh.issued());
        assert_eq!(fresh.retries_charged(a), 1);
        assert!(fresh.try_acquire_retry(a, Some(2)));
        assert!(!fresh.try_acquire_retry(a, Some(2)), "restored charges count against the budget");
    }

    #[test]
    fn sharded_export_is_sorted_and_round_trips_across_many_destinations() {
        // Enough destinations to populate every shard: export order must
        // stay globally sorted by address (the byte-stability contract
        // journal checkpoints rely on), and a restore must land every
        // entry back in the shard lookups expect it in.
        let rl = RateLimiter::new(100);
        for i in 0..200u32 {
            let dst = Ipv4Addr::from(0xc633_6400 | (i % 100)); // 198.51.100.x
            rl.acquire_for(QueryRound::Round1, Some(dst));
            if i % 3 == 0 {
                assert!(rl.try_acquire_retry(dst, None));
            }
        }
        let state = rl.export_state();
        assert!(
            state.per_destination.windows(2).all(|w| w[0].0 < w[1].0),
            "per-destination export must be strictly sorted by address"
        );
        assert!(state.per_destination_retries.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(state.per_destination.iter().map(|&(_, c)| c).sum::<u64>(), 200 + 67);

        let fresh = RateLimiter::new(100);
        fresh.restore_state(&state);
        assert_eq!(fresh.export_state(), state);
        for &(dst, charged) in &state.per_destination_retries {
            assert_eq!(fresh.retries_charged(dst), charged);
        }
    }

    #[test]
    fn empty_rounds_are_omitted_from_ledger() {
        let rl = RateLimiter::new(10);
        rl.acquire();
        let ledger = rl.ledger();
        assert_eq!(ledger.per_round.len(), 1);
        assert!(ledger.per_round.contains_key("round1"));
    }
}
