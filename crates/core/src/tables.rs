//! Plain-text table and CSV rendering for the report's tables and
//! figures.

use std::fmt::Write as _;

/// A simple text table with a header row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            render(&mut out, row);
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let line = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a percentage the way the paper's tables do (`71.5%`).
pub fn fmt_pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a count with a percentage of a whole (`5193 (2.7%)`).
pub fn fmt_count_pct(count: usize, whole: usize) -> String {
    format!("{count} ({})", fmt_pct(crate::stats::pct(count, whole)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text() {
        let mut t = TextTable::new(["country", "domains"]);
        t.push_row(["br", "7271"]);
        t.push_row(["cn", "13623"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("country"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("cn"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "\"x,y\",\"say \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn formats() {
        assert_eq!(fmt_pct(71.52), "71.5%");
        assert_eq!(fmt_count_pct(5, 200), "5 (2.5%)");
    }
}
