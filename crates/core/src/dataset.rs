use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use govdns_model::{DomainName, SimDate};
use govdns_simnet::{FaultStats, TrafficStats};
use govdns_telemetry::TelemetrySnapshot;
use govdns_world::CountryCode;

use crate::discovery::DiscoveredDomain;
use crate::probe::{DomainProbe, ResponseClass, ServerObservation, ServerProbe};
use crate::seed::SeedDomain;

/// The §III-B collection funnel: how many domains survived each stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Funnel {
    /// Domains queried after discovery and filtering.
    pub queried: usize,
    /// Domains with ≥ 1 response from a parent-zone nameserver.
    pub parent_responsive: usize,
    /// Domains with ≥ 1 non-empty parent response.
    pub parent_nonempty: usize,
    /// Domains with ≥ 1 authoritative answer from their own nameservers.
    pub child_responsive: usize,
}

/// The complete output of a measurement campaign: seeds, the discovered
/// domain list, one probe per domain, and bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementDataset {
    /// The seed domains.
    pub seeds: Vec<SeedDomain>,
    /// Discovered domains (country attribution included).
    pub discovered: Vec<DiscoveredDomain>,
    /// One probe per discovered domain, same order.
    pub probes: Vec<DomainProbe>,
    /// Simulated-network traffic totals for the campaign.
    pub traffic: TrafficStats,
    /// Injected-fault totals (all zero on a clean run).
    pub faults: FaultStats,
    /// Campaign date.
    pub collection_date: SimDate,
    /// Probes that received a second round.
    pub retried: usize,
    /// Frozen pipeline telemetry: stage timings, response-class
    /// counters, latency/size histograms, and the §III-D query ledger.
    pub telemetry: TelemetrySnapshot,
}

impl MeasurementDataset {
    /// The funnel counts.
    pub fn funnel(&self) -> Funnel {
        let mut f = Funnel { queried: self.probes.len(), ..Funnel::default() };
        for p in &self.probes {
            if p.parent_responsive() {
                f.parent_responsive += 1;
            }
            if p.parent_nonempty() {
                f.parent_nonempty += 1;
            }
            if p.has_authoritative_answer() {
                f.child_responsive += 1;
            }
        }
        f
    }

    /// Domains that answered, but only degraded (retries or round 2).
    pub fn degraded_count(&self) -> usize {
        self.probes.iter().filter(|p| p.degraded()).count()
    }

    /// Domains revived by the second probing round.
    pub fn recovered_in_round2_count(&self) -> usize {
        self.probes.iter().filter(|p| p.recovered_in_round2()).count()
    }

    /// Country of the `i`-th probe.
    pub fn country_of(&self, i: usize) -> CountryCode {
        self.discovered[i].country
    }

    /// Iterates `(probe, country)` pairs.
    pub fn probes_with_country(&self) -> impl Iterator<Item = (&DomainProbe, CountryCode)> + '_ {
        self.probes.iter().zip(self.discovered.iter().map(|d| d.country))
    }

    /// The seed (`d_gov`) each domain belongs to.
    pub fn seed_of(&self, i: usize) -> &DomainName {
        &self.discovered[i].seed
    }

    /// Per-country probe counts (for per-country figures).
    pub fn domains_per_country(&self) -> BTreeMap<CountryCode, usize> {
        let mut map = BTreeMap::new();
        for d in &self.discovered {
            *map.entry(d.country).or_insert(0) += 1;
        }
        map
    }

    /// The seed domains indexed by country.
    pub fn seeds_by_country(&self) -> BTreeMap<CountryCode, &SeedDomain> {
        self.seeds.iter().map(|s| (s.country, s)).collect()
    }

    /// One-row-per-domain CSV of the campaign's outcome — the artifact a
    /// downstream analyst would load into their own tooling.
    pub fn to_summary_csv(&self) -> String {
        let mut t = crate::tables::TextTable::new([
            "domain",
            "country",
            "seed",
            "parent_zone",
            "parent_responsive",
            "parent_ns",
            "child_ns",
            "authoritative",
            "degraded",
            "defective_ns",
            "total_ns",
            "addrs",
            "queries",
            "rounds",
        ]);
        for (i, p) in self.probes.iter().enumerate() {
            let defective = p.servers.iter().filter(|s| s.is_defective()).count();
            let join = |v: &[govdns_model::DomainName]| -> String {
                v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ")
            };
            t.push_row([
                p.domain.to_string(),
                self.country_of(i).to_string(),
                self.seed_of(i).to_string(),
                p.parent_zone.as_ref().map(|z| z.to_string()).unwrap_or_default(),
                p.parent_responsive().to_string(),
                join(&p.parent_ns),
                join(&p.child_ns),
                p.has_authoritative_answer().to_string(),
                p.degraded().to_string(),
                defective.to_string(),
                p.servers.len().to_string(),
                p.ns_addrs().len().to_string(),
                p.queries.to_string(),
                p.rounds.to_string(),
            ]);
        }
        t.to_csv()
    }

    /// A canonical JSON rendering of the whole dataset: fixed field
    /// order, no whitespace, arrays in stored order.
    ///
    /// This is the determinism regression guard — two campaigns over
    /// the same seeded world with the same [`FaultPlan`] seed must
    /// produce byte-identical output (CI diffs exactly this). The
    /// telemetry snapshot is deliberately excluded: stage spans measure
    /// real wall-clock time, which never reproduces.
    ///
    /// [`FaultPlan`]: govdns_simnet::FaultPlan
    pub fn canonical_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(out, "\"collection_date\":\"{}\"", self.collection_date);
        let _ = write!(out, ",\"retried\":{}", self.retried);
        let t = &self.traffic;
        let _ = write!(
            out,
            ",\"traffic\":{{\"queries_sent\":{},\"responses_received\":{},\"timeouts\":{},\
             \"bytes_sent\":{},\"bytes_received\":{},\"total_wait_ms\":{}}}",
            t.queries_sent,
            t.responses_received,
            t.timeouts,
            t.bytes_sent,
            t.bytes_received,
            t.total_wait_ms
        );
        let f = &self.faults;
        let _ = write!(
            out,
            ",\"faults\":{{\"flap_timeouts\":{},\"losses\":{},\"refused\":{},\"truncated\":{},\
             \"delayed\":{},\"outages\":{}}}",
            f.flap_timeouts, f.losses, f.refused, f.truncated, f.delayed, f.outages
        );
        out.push_str(",\"seeds\":[");
        for (i, s) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"country\":\"{}\",\"name\":\"{}\",\"kind\":\"{:?}\",\
                 \"earliest_government_use\":{},\"provenance\":\"{:?}\",\"portal_resolved\":{}}}",
                s.country,
                s.name,
                s.kind,
                s.earliest_government_use
                    .map(|d| format!("\"{d}\""))
                    .unwrap_or_else(|| "null".into()),
                s.provenance,
                s.portal_resolved
            );
        }
        out.push_str("],\"discovered\":[");
        for (i, d) in self.discovered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"country\":\"{}\",\"seed\":\"{}\"}}",
                d.name, d.country, d.seed
            );
        }
        out.push_str("],\"probes\":[");
        for (i, p) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_probe(&mut out, p);
        }
        out.push_str("]}");
        out
    }
}

fn json_names(out: &mut String, names: &[DomainName]) {
    out.push('[');
    for (i, n) in names.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{n}\"");
    }
    out.push(']');
}

fn json_class(out: &mut String, class: &ResponseClass) {
    match class {
        ResponseClass::Authoritative(targets) => {
            out.push_str("{\"authoritative\":");
            json_names(out, targets);
            out.push('}');
        }
        ResponseClass::Referral { cut, targets, glue } => {
            let _ = write!(out, "{{\"referral\":{{\"cut\":\"{cut}\",\"targets\":");
            json_names(out, targets);
            out.push_str(",\"glue\":[");
            for (i, (host, addr)) in glue.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[\"{host}\",\"{addr}\"]");
            }
            out.push_str("]}}");
        }
        ResponseClass::Empty(rcode) => {
            let _ = write!(out, "{{\"empty\":{rcode}}}");
        }
        ResponseClass::Rejected(rcode) => {
            let _ = write!(out, "{{\"rejected\":{rcode}}}");
        }
        ResponseClass::Truncated => out.push_str("\"truncated\""),
        ResponseClass::Timeout => out.push_str("\"timeout\""),
        ResponseClass::Skipped => out.push_str("\"skipped\""),
    }
}

fn json_observations(out: &mut String, observations: &[ServerObservation]) {
    out.push('[');
    for (i, o) in observations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"addr\":\"{}\",\"attempts\":{},\"class\":", o.addr, o.attempts);
        json_class(out, &o.class);
        out.push('}');
    }
    out.push(']');
}

fn json_probe(out: &mut String, p: &DomainProbe) {
    let _ = write!(out, "{{\"domain\":\"{}\",\"parent_zone\":", p.domain);
    match &p.parent_zone {
        Some(z) => {
            let _ = write!(out, "\"{z}\"");
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"parent_addrs\":[");
    for (i, a) in p.parent_addrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{a}\"");
    }
    out.push_str("],\"parent_observations\":");
    json_observations(out, &p.parent_observations);
    out.push_str(",\"parent_ns\":");
    json_names(out, &p.parent_ns);
    out.push_str(",\"child_ns\":");
    json_names(out, &p.child_ns);
    out.push_str(",\"servers\":[");
    for (i, s) in p.servers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_server(out, s);
    }
    out.push_str("],\"soa\":");
    match &p.soa {
        Some(soa) => {
            let _ = write!(
                out,
                "{{\"mname\":\"{}\",\"rname\":\"{}\",\"serial\":{}}}",
                soa.mname, soa.rname, soa.serial
            );
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\"queries\":{},\"elapsed_ms\":{},\"rounds\":{},\"degraded\":{}}}",
        p.queries,
        p.elapsed_ms,
        p.rounds,
        p.degraded()
    );
}

fn json_server(out: &mut String, s: &ServerProbe) {
    let _ = write!(
        out,
        "{{\"host\":\"{}\",\"in_parent\":{},\"in_child\":{},\"recovered_in_round2\":{},\
         \"addrs\":[",
        s.host, s.in_parent, s.in_child, s.recovered_in_round2
    );
    for (i, a) in s.addrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{a}\"");
    }
    out.push_str("],\"observations\":");
    json_observations(out, &s.observations);
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ResponseClass, ServerObservation, ServerProbe};
    use crate::seed::{SeedKind, SeedProvenance};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn probe(domain: &str, parent_responds: bool, p: &[&str], auth: bool) -> DomainProbe {
        let addr = Ipv4Addr::new(192, 0, 2, 1);
        DomainProbe {
            domain: n(domain),
            parent_zone: Some(n("gov.zz")),
            parent_addrs: vec![addr],
            parent_observations: if parent_responds {
                vec![ServerObservation { addr, class: ResponseClass::Empty(0), attempts: 1 }]
            } else {
                vec![ServerObservation { addr, class: ResponseClass::Timeout, attempts: 1 }]
            },
            parent_ns: p.iter().map(|s| n(s)).collect(),
            child_ns: Vec::new(),
            servers: p
                .iter()
                .map(|s| ServerProbe {
                    host: n(s),
                    in_parent: true,
                    in_child: false,
                    addrs: vec![addr],
                    observations: vec![ServerObservation {
                        addr,
                        class: if auth {
                            ResponseClass::Authoritative(vec![n(s)])
                        } else {
                            ResponseClass::Timeout
                        },
                        attempts: 1,
                    }],
                    recovered_in_round2: false,
                })
                .collect(),
            soa: None,
            queries: 1,
            elapsed_ms: 1,
            rounds: 1,
        }
    }

    #[test]
    fn funnel_counts_each_stage() {
        let ds = MeasurementDataset {
            seeds: vec![SeedDomain {
                country: CountryCode::new("zz"),
                name: n("gov.zz"),
                kind: SeedKind::ReservedSuffix,
                earliest_government_use: None,
                provenance: SeedProvenance::PortalLink,
                portal_resolved: true,
            }],
            discovered: (0..4)
                .map(|i| crate::discovery::DiscoveredDomain {
                    name: n(&format!("d{i}.gov.zz")),
                    country: CountryCode::new("zz"),
                    seed: n("gov.zz"),
                })
                .collect(),
            probes: vec![
                probe("d0.gov.zz", false, &[], false),            // parent dead
                probe("d1.gov.zz", true, &[], false),             // removed
                probe("d2.gov.zz", true, &["ns1.gov.zz"], false), // stale
                probe("d3.gov.zz", true, &["ns1.gov.zz"], true),  // healthy
            ],
            traffic: TrafficStats::default(),
            faults: FaultStats::default(),
            collection_date: SimDate::from_ymd(2021, 4, 15),
            retried: 0,
            telemetry: TelemetrySnapshot::default(),
        };
        let f = ds.funnel();
        assert_eq!(f.queried, 4);
        assert_eq!(f.parent_responsive, 3);
        assert_eq!(f.parent_nonempty, 2);
        assert_eq!(f.child_responsive, 1);
        assert_eq!(ds.domains_per_country()[&CountryCode::new("zz")], 4);
        assert_eq!(ds.country_of(2), CountryCode::new("zz"));
        assert_eq!(ds.seed_of(0), &n("gov.zz"));
    }

    fn tiny_dataset() -> MeasurementDataset {
        MeasurementDataset {
            seeds: Vec::new(),
            discovered: vec![crate::discovery::DiscoveredDomain {
                name: n("d0.gov.zz"),
                country: CountryCode::new("zz"),
                seed: n("gov.zz"),
            }],
            probes: vec![probe("d0.gov.zz", true, &["ns1.gov.zz"], true)],
            traffic: TrafficStats::default(),
            faults: FaultStats::default(),
            collection_date: SimDate::from_ymd(2021, 4, 15),
            retried: 0,
            telemetry: TelemetrySnapshot::default(),
        }
    }

    #[test]
    fn canonical_json_is_stable_and_structured() {
        let ds = tiny_dataset();
        let json = ds.canonical_json();
        assert_eq!(json, ds.canonical_json(), "rendering twice is identical");
        assert!(json.starts_with("{\"collection_date\":\"2021-04-15\""));
        assert!(json.contains("\"domain\":\"d0.gov.zz\""));
        assert!(json.contains("\"authoritative\":[\"ns1.gov.zz\"]"));
        assert!(json.contains("\"faults\":{\"flap_timeouts\":0"));
        assert!(json.contains("\"degraded\":false"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn degraded_counts_need_retries_or_round2() {
        let mut ds = tiny_dataset();
        assert_eq!(ds.degraded_count(), 0);
        ds.probes[0].servers[0].observations[0].attempts = 3;
        assert_eq!(ds.degraded_count(), 1, "retried-into-answer is degraded");
        ds.probes[0].servers[0].observations[0].attempts = 1;
        ds.probes[0].servers[0].recovered_in_round2 = true;
        assert_eq!(ds.degraded_count(), 1, "round-2 recovery is degraded");
        assert_eq!(ds.recovered_in_round2_count(), 1);
        assert!(ds.canonical_json().contains("\"degraded\":true"));
    }
}
