use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::{DomainName, SimDate};
use govdns_simnet::TrafficStats;
use govdns_telemetry::TelemetrySnapshot;
use govdns_world::CountryCode;

use crate::discovery::DiscoveredDomain;
use crate::probe::DomainProbe;
use crate::seed::SeedDomain;

/// The §III-B collection funnel: how many domains survived each stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Funnel {
    /// Domains queried after discovery and filtering.
    pub queried: usize,
    /// Domains with ≥ 1 response from a parent-zone nameserver.
    pub parent_responsive: usize,
    /// Domains with ≥ 1 non-empty parent response.
    pub parent_nonempty: usize,
    /// Domains with ≥ 1 authoritative answer from their own nameservers.
    pub child_responsive: usize,
}

/// The complete output of a measurement campaign: seeds, the discovered
/// domain list, one probe per domain, and bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MeasurementDataset {
    /// The seed domains.
    pub seeds: Vec<SeedDomain>,
    /// Discovered domains (country attribution included).
    pub discovered: Vec<DiscoveredDomain>,
    /// One probe per discovered domain, same order.
    pub probes: Vec<DomainProbe>,
    /// Simulated-network traffic totals for the campaign.
    pub traffic: TrafficStats,
    /// Campaign date.
    pub collection_date: SimDate,
    /// Probes that received a second round.
    pub retried: usize,
    /// Frozen pipeline telemetry: stage timings, response-class
    /// counters, latency/size histograms, and the §III-D query ledger.
    pub telemetry: TelemetrySnapshot,
}

impl MeasurementDataset {
    /// The funnel counts.
    pub fn funnel(&self) -> Funnel {
        let mut f = Funnel { queried: self.probes.len(), ..Funnel::default() };
        for p in &self.probes {
            if p.parent_responsive() {
                f.parent_responsive += 1;
            }
            if p.parent_nonempty() {
                f.parent_nonempty += 1;
            }
            if p.has_authoritative_answer() {
                f.child_responsive += 1;
            }
        }
        f
    }

    /// Country of the `i`-th probe.
    pub fn country_of(&self, i: usize) -> CountryCode {
        self.discovered[i].country
    }

    /// Iterates `(probe, country)` pairs.
    pub fn probes_with_country(
        &self,
    ) -> impl Iterator<Item = (&DomainProbe, CountryCode)> + '_ {
        self.probes.iter().zip(self.discovered.iter().map(|d| d.country))
    }

    /// The seed (`d_gov`) each domain belongs to.
    pub fn seed_of(&self, i: usize) -> &DomainName {
        &self.discovered[i].seed
    }

    /// Per-country probe counts (for per-country figures).
    pub fn domains_per_country(&self) -> BTreeMap<CountryCode, usize> {
        let mut map = BTreeMap::new();
        for d in &self.discovered {
            *map.entry(d.country).or_insert(0) += 1;
        }
        map
    }

    /// The seed domains indexed by country.
    pub fn seeds_by_country(&self) -> BTreeMap<CountryCode, &SeedDomain> {
        self.seeds.iter().map(|s| (s.country, s)).collect()
    }

    /// One-row-per-domain CSV of the campaign's outcome — the artifact a
    /// downstream analyst would load into their own tooling.
    pub fn to_summary_csv(&self) -> String {
        let mut t = crate::tables::TextTable::new([
            "domain",
            "country",
            "seed",
            "parent_zone",
            "parent_responsive",
            "parent_ns",
            "child_ns",
            "authoritative",
            "defective_ns",
            "total_ns",
            "addrs",
            "queries",
            "rounds",
        ]);
        for (i, p) in self.probes.iter().enumerate() {
            let defective = p.servers.iter().filter(|s| s.is_defective()).count();
            let join = |v: &[govdns_model::DomainName]| -> String {
                v.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(" ")
            };
            t.push_row([
                p.domain.to_string(),
                self.country_of(i).to_string(),
                self.seed_of(i).to_string(),
                p.parent_zone.as_ref().map(|z| z.to_string()).unwrap_or_default(),
                p.parent_responsive().to_string(),
                join(&p.parent_ns),
                join(&p.child_ns),
                p.has_authoritative_answer().to_string(),
                defective.to_string(),
                p.servers.len().to_string(),
                p.ns_addrs().len().to_string(),
                p.queries.to_string(),
                p.rounds.to_string(),
            ]);
        }
        t.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ResponseClass, ServerObservation, ServerProbe};
    use crate::seed::{SeedKind, SeedProvenance};
    use std::net::Ipv4Addr;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn probe(domain: &str, parent_responds: bool, p: &[&str], auth: bool) -> DomainProbe {
        let addr = Ipv4Addr::new(192, 0, 2, 1);
        DomainProbe {
            domain: n(domain),
            parent_zone: Some(n("gov.zz")),
            parent_addrs: vec![addr],
            parent_observations: if parent_responds {
                vec![ServerObservation { addr, class: ResponseClass::Empty(0) }]
            } else {
                vec![ServerObservation { addr, class: ResponseClass::Timeout }]
            },
            parent_ns: p.iter().map(|s| n(s)).collect(),
            child_ns: Vec::new(),
            servers: p
                .iter()
                .map(|s| ServerProbe {
                    host: n(s),
                    in_parent: true,
                    in_child: false,
                    addrs: vec![addr],
                    observations: vec![ServerObservation {
                        addr,
                        class: if auth {
                            ResponseClass::Authoritative(vec![n(s)])
                        } else {
                            ResponseClass::Timeout
                        },
                    }],
                })
                .collect(),
            soa: None,
            queries: 1,
            elapsed_ms: 1,
            rounds: 1,
        }
    }

    #[test]
    fn funnel_counts_each_stage() {
        let ds = MeasurementDataset {
            seeds: vec![SeedDomain {
                country: CountryCode::new("zz"),
                name: n("gov.zz"),
                kind: SeedKind::ReservedSuffix,
                earliest_government_use: None,
                provenance: SeedProvenance::PortalLink,
                portal_resolved: true,
            }],
            discovered: (0..4)
                .map(|i| crate::discovery::DiscoveredDomain {
                    name: n(&format!("d{i}.gov.zz")),
                    country: CountryCode::new("zz"),
                    seed: n("gov.zz"),
                })
                .collect(),
            probes: vec![
                probe("d0.gov.zz", false, &[], false), // parent dead
                probe("d1.gov.zz", true, &[], false),  // removed
                probe("d2.gov.zz", true, &["ns1.gov.zz"], false), // stale
                probe("d3.gov.zz", true, &["ns1.gov.zz"], true),  // healthy
            ],
            traffic: TrafficStats::default(),
            collection_date: SimDate::from_ymd(2021, 4, 15),
            retried: 0,
            telemetry: TelemetrySnapshot::default(),
        };
        let f = ds.funnel();
        assert_eq!(f.queried, 4);
        assert_eq!(f.parent_responsive, 3);
        assert_eq!(f.parent_nonempty, 2);
        assert_eq!(f.child_responsive, 1);
        assert_eq!(ds.domains_per_country()[&CountryCode::new("zz")], 4);
        assert_eq!(ds.country_of(2), CountryCode::new("zz"));
        assert_eq!(ds.seed_of(0), &n("gov.zz"));
    }
}
