use govdns_pdns::PdnsDb;
use govdns_simnet::{AsnDb, SimNetwork};
use govdns_world::{
    Country, ProviderMatcher, Registrar, RegistryDocs, UnKnowledgeBase, WebArchive, World,
};

use govdns_model::SimDate;
use std::net::Ipv4Addr;

/// Everything the pipeline is allowed to see — the equivalents of the
/// real study's inputs. Notably *not* the world's generation ground
/// truth.
#[derive(Debug, Clone, Copy)]
pub struct Campaign<'w> {
    /// The UN E-Government Knowledge Base.
    pub unkb: &'w UnKnowledgeBase,
    /// ccTLD registry documentation (IANA root DB + registry policies).
    pub registry_docs: &'w RegistryDocs,
    /// The Web Archive.
    pub webarchive: &'w WebArchive,
    /// The passive-DNS database.
    pub pdns: &'w PdnsDb,
    /// The internet.
    pub network: &'w SimNetwork,
    /// Root-server hints.
    pub roots: &'w [Ipv4Addr],
    /// The GeoIP2-style prefix→ASN database.
    pub asn_db: &'w AsnDb,
    /// The registrar storefront for availability/price checks.
    pub registrar: &'w Registrar,
    /// Public provider-classification knowledge (naming patterns).
    pub matchers: &'w [ProviderMatcher],
    /// The UN member-state list with sub-regions.
    pub countries: &'w [Country],
    /// Date of the active campaign.
    pub collection_date: SimDate,
}

impl<'w> Campaign<'w> {
    /// Views a generated world through the pipeline's keyhole. The
    /// matcher list must outlive the campaign, so the caller materializes
    /// it once.
    pub fn new(world: &'w World, matchers: &'w [ProviderMatcher]) -> Self {
        Campaign {
            unkb: &world.unkb,
            registry_docs: &world.registry_docs,
            webarchive: &world.webarchive,
            pdns: &world.pdns,
            network: &world.network,
            roots: &world.roots,
            asn_db: &world.asn_db,
            registrar: &world.registrar,
            matchers,
            countries: &world.countries,
            collection_date: world.collection_date,
        }
    }
}
