//! The journal sink pipeline: a dedicated I/O thread fed by a bounded
//! channel, so probing workers append to the write-ahead journal
//! without ever touching a sink mutex.
//!
//! **Hot-path discipline.** A worker finishing a probe sends one
//! `(index, probe)` message and returns; framing, ordering, and file
//! writes all happen on the sink thread. The only way a worker can
//! stall is backpressure — the bounded channel filling faster than the
//! thread drains it — and that wait is measured
//! ([`JournalSink::wait_ns`]) so tests can assert it stays at zero.
//!
//! **Ordering.** The thread owns a reorder buffer keyed by campaign
//! index and appends probe records strictly in index order, which keeps
//! the journal's contiguous-prefix replay rule meaningful at any worker
//! count (and the file byte-stable across identical runs at a fixed
//! worker count — record *content* carries side-query tallies that
//! follow per-worker resolver-cache warmth, so cross-worker-count byte
//! identity was never a journal property). A checkpoint message whose
//! `probes_done` is ahead of the written prefix is *held* and appended
//! only once the prefix covers it: a checkpoint the replay would have
//! to discard (state ahead of the probes on disk) is never written in
//! that invalid position. With one worker, messages already arrive in
//! index order and every checkpoint lands exactly where the old
//! locked writer put it — byte-identical journals.
//!
//! **Shutdown.** [`JournalSink::finish`] closes the channel and joins
//! the thread, which drains every queued message first; the reclaimed
//! [`JournalWriter`] then carries the campaign's final merged
//! checkpoint and completion record on the caller's thread. If the
//! campaign unwinds on a worker panic, dropping the sink closes the
//! channel the same way and the writer's own drop flushes what
//! arrived. A hard kill (`std::process::exit`) can lose whatever still
//! sat in the channel — the same class of tail loss the buffered
//! writer always had, and exactly the window checkpoint replay
//! tolerates.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;

use crate::journal::{Checkpoint, JournalWriter};
use crate::probe::DomainProbe;

/// Bounded journal-channel capacity, in messages. Each message is one
/// completed probe (shared, not cloned) or one checkpoint; the bound
/// caps how much completed-but-unwritten work a kill can lose.
const JOURNAL_CHANNEL_CAPACITY: usize = 1024;

enum JournalMsg {
    /// One completed probe at its campaign index.
    Probe(u64, Arc<DomainProbe>),
    /// A periodic state checkpoint, captured by the sending worker.
    Checkpoint(Box<Checkpoint>),
    /// Drain and hand the writer back through the thread's return
    /// value.
    Finish,
}

/// The worker-facing handle: send-only, lock-free on the send path.
pub(crate) struct JournalSink {
    tx: SyncSender<JournalMsg>,
    /// Joined by [`finish`](JournalSink::finish) to reclaim the writer.
    io: Mutex<Option<JoinHandle<JournalWriter>>>,
    /// Nanoseconds workers spent blocked on a full channel.
    wait_ns: AtomicU64,
    /// Messages sent but not yet processed by the thread.
    depth: AtomicU64,
    /// High-water mark of `depth`.
    hwm: AtomicU64,
}

impl JournalSink {
    /// Spawns the sink I/O thread around an already-set-up writer
    /// (header, replayed history, and resume markers written by the
    /// caller). `next_index` is the first campaign index the reorder
    /// buffer waits for — the resume point.
    pub(crate) fn spawn(mut writer: JournalWriter, next_index: u64) -> Arc<JournalSink> {
        let (tx, rx) = sync_channel::<JournalMsg>(JOURNAL_CHANNEL_CAPACITY);
        let sink = Arc::new(JournalSink {
            tx,
            io: Mutex::new(None),
            wait_ns: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            hwm: AtomicU64::new(0),
        });
        let depth = Arc::downgrade(&sink);
        let handle = std::thread::Builder::new()
            .name("govdns-journal-sink".into())
            .spawn(move || {
                let mut pending: BTreeMap<u64, Arc<DomainProbe>> = BTreeMap::new();
                let mut held: VecDeque<Box<Checkpoint>> = VecDeque::new();
                let mut next = next_index;
                // A closed channel (finish, or an unwinding campaign)
                // drains what arrived and hands the writer back.
                while let Ok(msg) = rx.recv() {
                    // Finish bypasses `send` and is never counted.
                    if !matches!(msg, JournalMsg::Finish) {
                        if let Some(s) = depth.upgrade() {
                            s.depth.fetch_sub(1, Ordering::Relaxed);
                        }
                    }
                    match msg {
                        JournalMsg::Probe(index, probe) => {
                            pending.insert(index, probe);
                            while let Some(p) = pending.remove(&next) {
                                writer.probe(next, &p);
                                next += 1;
                            }
                            while held.front().is_some_and(|cp| cp.probes_done <= next) {
                                let cp = held.pop_front().expect("front checked above");
                                writer.checkpoint(&cp);
                            }
                        }
                        JournalMsg::Checkpoint(cp) => {
                            if cp.probes_done <= next {
                                writer.checkpoint(&cp);
                            } else {
                                held.push_back(cp);
                            }
                        }
                        JournalMsg::Finish => break,
                    }
                }
                while let Some(p) = pending.remove(&next) {
                    writer.probe(next, &p);
                    next += 1;
                }
                while held.front().is_some_and(|cp| cp.probes_done <= next) {
                    let cp = held.pop_front().expect("front checked above");
                    writer.checkpoint(&cp);
                }
                writer
            })
            .expect("spawn journal sink thread");
        *sink.io.lock() = Some(handle);
        sink
    }

    /// Enqueues one message, measuring any backpressure wait.
    fn send(&self, msg: JournalMsg) {
        // Count before sending: the I/O thread decrements on receipt,
        // and counting after delivery would let the decrement land
        // first and underflow the gauge.
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.hwm.fetch_max(depth, Ordering::Relaxed);
        match self.tx.try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Full(msg)) => {
                let start = Instant::now();
                self.tx.send(msg).expect("journal sink thread died");
                self.wait_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => panic!("journal sink thread died"),
        }
    }

    /// Submits one completed probe for ordered append.
    pub(crate) fn probe(&self, index: u64, probe: Arc<DomainProbe>) {
        self.send(JournalMsg::Probe(index, probe));
    }

    /// Submits a state checkpoint (held until the written probe prefix
    /// covers its `probes_done`).
    pub(crate) fn checkpoint(&self, cp: Checkpoint) {
        self.send(JournalMsg::Checkpoint(Box::new(cp)));
    }

    /// Nanoseconds workers spent blocked on sink backpressure.
    pub(crate) fn wait_ns(&self) -> u64 {
        self.wait_ns.load(Ordering::Relaxed)
    }

    /// High-water mark of the sink queue depth, in messages.
    pub(crate) fn queue_high_water(&self) -> u64 {
        self.hwm.load(Ordering::Relaxed)
    }

    /// Sends the final drain message, joins the I/O thread after it
    /// drains every queued message, and hands the writer back for the
    /// final merged checkpoint and completion record.
    ///
    /// # Panics
    ///
    /// Panics if called twice, or if the sink thread panicked.
    pub(crate) fn finish(&self) -> JournalWriter {
        let handle = self.io.lock().take().expect("journal sink finished twice");
        // FIFO: every probe and checkpoint submitted before this point
        // is processed before the thread breaks.
        self.tx.send(JournalMsg::Finish).expect("journal sink thread died");
        handle.join().expect("journal sink thread panicked")
    }
}
