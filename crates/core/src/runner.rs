//! The campaign runner: seeds → discovery → parallel probing → second
//! round → dataset.

use parking_lot::Mutex;

use crate::discovery::{self, DiscoveryConfig};
use crate::probe::{DomainProbe, ProbeClient};
use crate::ratelimit::RateLimiter;
use crate::seed;
use crate::{Campaign, MeasurementDataset};

/// Runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Probe worker threads.
    pub workers: usize,
    /// Query-rate cap (queries per second, accounted not slept).
    pub max_qps: u32,
    /// Whether to run the second round for domains whose parent returned
    /// NS records but whose nameservers all stayed silent.
    pub second_round: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig { workers: 8, max_qps: 200, second_round: true }
    }
}

/// Runs the full §III pipeline over a campaign's inputs.
pub fn run_campaign(campaign: &Campaign<'_>, config: RunnerConfig) -> MeasurementDataset {
    let seeds = seed::select_seeds(campaign);
    let discovered =
        discovery::discover(campaign, &seeds, DiscoveryConfig::paper(campaign.collection_date));

    let limiter = RateLimiter::new(config.max_qps);
    let workers = config.workers.max(1);
    let results: Vec<Mutex<Option<DomainProbe>>> =
        (0..discovered.len()).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let retried = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                // One client (and resolver cache) per worker, as the real
                // pipeline sharded its query load.
                let client =
                    ProbeClient::new(campaign.network, campaign.roots.to_vec(), limiter.clone());
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(d) = discovered.get(i) else { break };
                    let mut probe = client.probe(&d.name);
                    // Second round: parent listed nameservers, none of
                    // them replied — maybe transient.
                    if config.second_round
                        && probe.parent_nonempty()
                        && !probe.servers.iter().any(|s| s.responded())
                    {
                        client.retry_child_side(&mut probe);
                        retried.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    *results[i].lock() = Some(probe);
                }
            });
        }
    })
    .expect("probe workers do not panic");

    let probes: Vec<DomainProbe> = results
        .into_iter()
        .map(|m| m.into_inner().expect("every index was processed"))
        .collect();

    MeasurementDataset {
        seeds,
        discovered,
        probes,
        traffic: campaign.network.stats(),
        collection_date: campaign.collection_date,
        retried: retried.into_inner(),
    }
}
