//! The campaign runner: seeds → discovery → parallel probing → second
//! round → dataset.
//!
//! Observability: [`run_campaign_with`] accepts a [`CampaignTelemetry`]
//! that wires the whole pipeline into one
//! [`Registry`](govdns_telemetry::Registry) — per-stage wall-clock
//! spans, network counters, worker utilization, progress callbacks, and
//! the §III-D query ledger. The resulting snapshot is embedded in the
//! returned [`MeasurementDataset`].
//!
//! Crash safety: with [`RunnerConfig::journal`] set, every completed
//! probe is appended to a write-ahead journal (see
//! [`journal`](crate::journal)) and the full pipeline state is
//! checkpointed periodically. A campaign killed mid-flight is resumed
//! with [`RunnerConfig::resume_from`]: the runner replays the journal,
//! restores the checkpointed rate-limiter ledger, network accounting,
//! resolver cache, and breaker bank, and re-probes only the remainder.
//! With a single worker (and no baseline packet loss) the resumed
//! dataset is byte-identical to the uninterrupted run's
//! `canonical_json()` — the same determinism contract the chaos
//! machinery already guarantees.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use govdns_model::{DomainName, RecordType};
use govdns_simnet::{CacheEntry, ChaosProfile, FaultPlan, Prefix24};
use govdns_telemetry::{ProgressEvent, Registry};
use govdns_trace::{TraceSpec, Tracer};

use crate::discovery::{self, DiscoveryConfig};
use crate::journal::{fnv64, Checkpoint, JournalHeader, JournalReplay, JournalSpec, JournalWriter};
use crate::probe::{BreakerBank, BreakerPolicy, DomainProbe, ProbeClient, RetryPolicy};
use crate::ratelimit::RateLimiter;
use crate::seed;
use crate::sink::JournalSink;
use crate::{Campaign, MeasurementDataset};

/// Contiguous domains a worker claims per `fetch_add` when plenty of
/// work remains; near the tail every claim degrades to a single domain
/// so stragglers cannot strand unprobed work behind an idle worker.
const CLAIM_CHUNK: usize = 16;

/// Chaos selection for a campaign run: which named fault preset to
/// install on the network, under which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosSpec {
    /// The fault preset.
    pub profile: ChaosProfile,
    /// Seed for the plan's deterministic fault decisions (independent of
    /// the world seed so the same internet can be stressed differently).
    pub seed: u64,
}

/// A counterfactual outage scenario layered on top of the (optional)
/// chaos plan for one campaign run: every query to the scenario's
/// destination set is hard-failed with `FaultKind::Outage`, while
/// decisions outside the set are untouched (the blackhole layer is
/// checked before — and independently of — the probabilistic rules).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioSpec {
    /// Stable scenario label (e.g. `provider:dnsmadefast`), echoed into
    /// the journal header and the trace's stage markers.
    pub label: String,
    /// Individual addresses taken out by the scenario.
    pub blackhole_addrs: Vec<Ipv4Addr>,
    /// Whole /24s taken out — the anycast model: killing a prefix takes
    /// out every sibling site announced from it.
    pub blackhole_prefixes: Vec<Prefix24>,
    /// Individual addresses degraded (probabilistically dropped at
    /// `degrade_ppm`) instead of hard-failed.
    pub degraded_addrs: Vec<Ipv4Addr>,
    /// Whole /24s degraded at `degrade_ppm`.
    pub degraded_prefixes: Vec<Prefix24>,
    /// Drop rate for the degraded sets, in parts per million (`0` turns
    /// the degrade layer off even when the sets are non-empty).
    pub degrade_ppm: u32,
}

impl ScenarioSpec {
    /// Whether the scenario takes out nothing.
    pub fn is_empty(&self) -> bool {
        self.blackhole_addrs.is_empty()
            && self.blackhole_prefixes.is_empty()
            && (self.degrade_ppm == 0
                || (self.degraded_addrs.is_empty() && self.degraded_prefixes.is_empty()))
    }
}

/// Runner parameters.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Probe worker threads.
    pub workers: usize,
    /// Query-rate cap (queries per second, accounted not slept).
    pub max_qps: u32,
    /// Whether to run the second round for domains whose parent returned
    /// NS records but no nameserver authoritatively answered.
    pub second_round: bool,
    /// Per-destination soft cap for the query ledger (`None` = uncapped,
    /// an explicit choice rather than a zero sentinel): destinations
    /// that received at least this many queries are flagged in the
    /// ethics accounting.
    pub destination_cap: Option<u64>,
    /// How probe clients retry transient-looking failures.
    pub retry: RetryPolicy,
    /// Fault injection to install on the network for this run (`None` =
    /// clean delivery).
    pub chaos: Option<ChaosSpec>,
    /// Counterfactual outage to layer on top of the chaos plan (`None` =
    /// the measured world as-is). Shapes observations, so it is part of
    /// the journal's config echo: a scenario journal only resumes under
    /// the same scenario.
    pub scenario: Option<ScenarioSpec>,
    /// Per-destination circuit breakers: when enabled, destinations
    /// whose exchanges keep failing are quarantined — further exchanges
    /// are skipped (not sent, not charged) until a cooldown round
    /// admits a half-open trial.
    pub breaker: BreakerPolicy,
    /// Write-ahead journaling: where to persist completed probes and
    /// periodic state checkpoints (`None` = no journal).
    pub journal: Option<JournalSpec>,
    /// Resume a crashed campaign from this journal: replay its probes,
    /// restore its best checkpoint, and probe only the remainder.
    pub resume_from: Option<PathBuf>,
    /// Stop (gracefully) after this many completed probes, yielding a
    /// truncated dataset — the test/CI hook for simulating a campaign
    /// that dies mid-flight with its journal intact.
    pub stop_after: Option<usize>,
    /// Flight recorder: where to write the per-query trace file (`None`
    /// = tracing off). Tracing is strictly observational — the dataset
    /// is identical with or without it — so it is excluded from the
    /// journal's config echo like the other scheduling-only knobs.
    pub trace: Option<TraceSpec>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 8,
            max_qps: 200,
            second_round: true,
            destination_cap: None,
            retry: RetryPolicy::none(),
            chaos: None,
            scenario: None,
            breaker: BreakerPolicy::none(),
            journal: None,
            resume_from: None,
            stop_after: None,
            trace: None,
        }
    }
}

impl RunnerConfig {
    /// A deterministic echo of every knob that shapes observations,
    /// stored in the journal header and byte-compared on resume.
    /// Worker count, journaling, tracing, and `stop_after` are
    /// deliberately excluded: they change scheduling (or pure
    /// observation), not observations.
    fn config_echo(&self, collection_date: govdns_model::SimDate) -> String {
        format!(
            "qps={} cap={:?} second_round={} retry={:?} chaos={:?} scenario={:?} breaker={:?} \
             date={}",
            self.max_qps,
            self.destination_cap,
            self.second_round,
            self.retry,
            self.chaos,
            self.scenario,
            self.breaker,
            collection_date
        )
    }
}

/// Observability control for a campaign run: the registry every pipeline
/// component records into, plus an optional progress callback.
pub struct CampaignTelemetry {
    registry: Registry,
    progress_every: usize,
    progress: Option<Box<dyn Fn(ProgressEvent) + Send + Sync>>,
    limiter: Mutex<Option<RateLimiter>>,
    tracer: Mutex<Option<Arc<Tracer>>>,
}

impl Default for CampaignTelemetry {
    fn default() -> Self {
        CampaignTelemetry {
            registry: Registry::new(),
            progress_every: 0,
            progress: None,
            limiter: Mutex::new(None),
            tracer: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for CampaignTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignTelemetry")
            .field("registry", &self.registry)
            .field("progress_every", &self.progress_every)
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .finish_non_exhaustive()
    }
}

impl CampaignTelemetry {
    /// A fresh registry with no progress callback.
    pub fn new() -> Self {
        CampaignTelemetry::default()
    }

    /// Invokes `callback` after every `every` probed domains (and once
    /// at the end of the probing stage).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_progress(
        mut self,
        every: usize,
        callback: impl Fn(ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        assert!(every > 0, "progress interval must be positive");
        self.progress_every = every;
        self.progress = Some(Box::new(callback));
        self
    }

    /// The registry the pipeline records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The rate limiter of the most recent run, once a campaign has
    /// started (useful for asserting ledger totals after the fact).
    pub fn limiter(&self) -> Option<RateLimiter> {
        self.limiter.lock().clone()
    }

    /// The flight recorder of the most recent run, when
    /// [`RunnerConfig::trace`] was set — report generation uses it to
    /// append analysis-panic dumps after the trace file is complete.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.tracer.lock().clone()
    }

    fn emit(&self, stage: &str, done: usize, total: usize, queries_issued: u64) {
        if let Some(cb) = &self.progress {
            cb(ProgressEvent { stage: stage.to_owned(), done, total, queries_issued });
        }
    }
}

/// Runs the full §III pipeline over a campaign's inputs.
pub fn run_campaign(campaign: &Campaign<'_>, config: RunnerConfig) -> MeasurementDataset {
    run_campaign_with(campaign, config, &CampaignTelemetry::default())
}

/// Runs the full §III pipeline, recording telemetry into `ctl`.
///
/// Telemetry is strictly observational: the probing behavior (and hence
/// the dataset) is identical with or without it.
///
/// # Panics
///
/// Panics if [`RunnerConfig::resume_from`] names a journal whose header
/// does not match this campaign (different discovered domains or a
/// different observation-shaping config), or if journal I/O fails.
pub fn run_campaign_with(
    campaign: &Campaign<'_>,
    config: RunnerConfig,
    ctl: &CampaignTelemetry,
) -> MeasurementDataset {
    let registry = ctl.registry.clone();
    campaign.network.attach_telemetry(&registry);

    let seed_span = registry.span("seed");
    let seeds = seed::select_seeds(campaign);
    seed_span.finish();

    let discovery_span = registry.span("discovery");
    let mut discovered =
        discovery::discover(campaign, &seeds, DiscoveryConfig::paper(campaign.collection_date));
    discovery_span.finish();

    // Chaos starts at the probing stage: discovery models registry /
    // zone-file inputs, which the injected network faults do not touch.
    // A counterfactual scenario layers its blackhole sets on top of the
    // chaos plan; the layering leaves every rule decision outside the
    // destination set bit-for-bit unchanged.
    let scenario = config.scenario.as_ref().filter(|s| !s.is_empty());
    if config.chaos.is_some() || scenario.is_some() {
        let base = match config.chaos {
            Some(chaos) => chaos.profile.plan(chaos.seed),
            None => FaultPlan::new(0),
        };
        let plan = match scenario {
            Some(s) => base
                .with_blackholed_addrs(s.blackhole_addrs.iter().copied())
                .with_blackholed_prefixes(s.blackhole_prefixes.iter().copied())
                .with_degraded_addrs(s.degraded_addrs.iter().copied())
                .with_degraded_prefixes(s.degraded_prefixes.iter().copied())
                .with_degrade_ppm(s.degrade_ppm),
            None => base,
        };
        campaign.network.install_faults(Some(plan));
    }

    let limiter = RateLimiter::with_telemetry(config.max_qps, config.destination_cap, &registry);
    *ctl.limiter.lock() = Some(limiter.clone());
    let bank = BreakerBank::new(config.breaker);
    let workers = config.workers.max(1);
    registry.gauge("runner.workers").set(workers as i64);
    // Marker gauge for dashboards and regression baselines: this build's
    // per-query hot path uses atomics + sharded tables, never a global
    // stats mutex or shared RNG.
    registry.gauge("net.lock_free").set(1);

    let total = discovered.len();
    let header = JournalHeader {
        names_fingerprint: names_fingerprint(&discovered),
        domains: total as u64,
        config_echo: config.config_echo(campaign.collection_date),
    };

    // Resume: replay the journal up to its best checkpoint and restore
    // every piece of state the checkpoint captured. Probes past the
    // checkpoint have no state snapshot to pair with, so they are
    // re-probed (the journal still shortened the rerun to the
    // checkpoint cadence).
    let mut replayed: Vec<DomainProbe> = Vec::new();
    let mut initial_cache = None;
    let mut initial_clock = 0u64;
    if let Some(resume_path) = &config.resume_from {
        let replay = JournalReplay::load(resume_path);
        assert_eq!(
            replay.header,
            header,
            "journal {} belongs to a different campaign or config",
            resume_path.display()
        );
        let resume_point = replay.checkpoint.as_ref().map_or(0, |cp| cp.probes_done) as usize;
        replayed = replay.probes;
        replayed.truncate(resume_point);
        if let Some(cp) = replay.checkpoint {
            limiter.restore_state(&cp.limiter);
            campaign.network.restore_accounting(cp.traffic, cp.faults, cp.net_per_destination);
            bank.restore(&cp.breakers);
            initial_cache = Some(cp.cache);
            initial_clock = cp.clock_s;
        }
        registry.counter("journal.replayed_probes").add(replayed.len() as u64);
        registry.counter("journal.dropped_bytes").add(replay.dropped_bytes);
        registry.counter("journal.resumes").add(replay.resumes + 1);
    }
    let resume_point = replayed.len();
    // Round-2 reconciliation: the `retried` tally (and the ledger's
    // retry budgets, restored above) must count the replayed probes'
    // second rounds exactly once — the runner is the only caller of
    // `retry_child_side`, so `rounds >= 2` is that marker.
    let replayed_retried = replayed.iter().filter(|p| p.rounds >= 2).count();

    // Journal continuation: appending to the journal we resumed from
    // needs only a resume marker; journaling a resumed campaign to a
    // *different* path makes the new journal self-contained by
    // re-journaling the replayed history and the restored state. The
    // set-up records are written on this thread; the writer then moves
    // into a dedicated sink I/O thread, and workers only ever send
    // completed probes down its bounded channel.
    let journal_writer: Option<JournalWriter> = match (&config.journal, &config.resume_from) {
        (Some(spec), Some(resume_path)) if &spec.path == resume_path => {
            let mut w =
                JournalWriter::append_to(&spec.path).with_flush_threshold(spec.flush_threshold);
            w.resumed(resume_point as u64);
            Some(w)
        }
        (Some(spec), _) => {
            let mut w = JournalWriter::create(&spec.path, &header)
                .with_flush_threshold(spec.flush_threshold);
            for (i, probe) in replayed.iter().enumerate() {
                w.probe(i as u64, probe);
            }
            if resume_point > 0 {
                w.checkpoint(&Checkpoint {
                    probes_done: resume_point as u64,
                    limiter: limiter.export_state(),
                    traffic: campaign.network.stats(),
                    faults: campaign.network.fault_stats(),
                    net_per_destination: campaign.network.per_destination_snapshot(),
                    cache: initial_cache.clone().unwrap_or_default(),
                    clock_s: initial_clock,
                    breakers: bank.snapshot(),
                });
                w.resumed(resume_point as u64);
            }
            Some(w)
        }
        (None, _) => None,
    };
    let journal: Option<Arc<JournalSink>> =
        journal_writer.map(|w| JournalSink::spawn(w, resume_point as u64));
    let checkpoint_every = config.journal.as_ref().map_or(0, |s| s.checkpoint_every.max(1));

    // The flight recorder. Created after resume replay so the trace file
    // starts at the resume point; the sink's reorder buffer then writes
    // domain blocks in campaign index order regardless of worker count.
    let tracer: Option<Arc<Tracer>> = config
        .trace
        .as_ref()
        .map(|spec| Tracer::create(spec, total as u64, resume_point as u64).expect("trace I/O"));
    *ctl.tracer.lock() = tracer.clone();

    let probe_limit = config.stop_after.map_or(total, |s| s.clamp(resume_point, total));

    let mut prefill: Vec<Option<Arc<DomainProbe>>> =
        replayed.into_iter().map(|p| Some(Arc::new(p))).collect();
    prefill.resize_with(total, || None);
    let results: Vec<Mutex<Option<Arc<DomainProbe>>>> =
        prefill.into_iter().map(Mutex::new).collect();
    let next = AtomicUsize::new(resume_point);
    let completed = AtomicUsize::new(resume_point);
    let retried = AtomicUsize::new(replayed_retried);
    let chunk_claims = AtomicU64::new(0);
    let probed_counter = registry.counter("runner.domains_probed");
    let retried_counter = registry.counter("runner.retried");
    let busy_ms = registry.histogram_latency_ms("runner.worker_busy_ms");
    // Per-worker busy times in a lock-free slot array (one slot per
    // worker, each written exactly once at worker exit), so the
    // max/min spread across workers can be reported after the scope
    // drains without the diagnostic itself convoying the workers it
    // measures. A lopsided spread is the signature of workers
    // convoying on a shared lock.
    let busy_slots: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    // Per-worker resolver state, deposited once at worker exit and
    // merged into the journal's final checkpoint after the scope joins.
    type ExitState = (Vec<((DomainName, RecordType), CacheEntry)>, u64);
    let exit_state: Vec<Mutex<Option<ExitState>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    let probing_span = registry.span("round1");
    if let Some(t) = &tracer {
        if let Some(s) = scenario {
            t.stage("scenario", &s.label);
        }
        t.stage("round1", "begin");
    }
    crossbeam::scope(|scope| {
        for w in 0..workers {
            // `move` closures so each worker knows its slot index;
            // shared state crosses as plain references.
            #[allow(clippy::redundant_locals)]
            let (discovered, registry, limiter, bank, tracer, initial_cache, journal) =
                (&discovered, &registry, &limiter, &bank, &tracer, &initial_cache, &journal);
            let (next, completed, retried, chunk_claims, results) =
                (&next, &completed, &retried, &chunk_claims, &results);
            let (probed_counter, retried_counter, busy_ms) =
                (&probed_counter, &retried_counter, &busy_ms);
            let (busy_slot, exit_slot, config) = (&busy_slots[w], &exit_state[w], &config);
            scope.spawn(move |_| {
                // One client (and resolver cache) per worker, as the real
                // pipeline sharded its query load. On resume every worker
                // starts from the checkpointed cache warmth.
                let mut client =
                    ProbeClient::new(campaign.network, campaign.roots.to_vec(), limiter.clone())
                        .with_telemetry(registry)
                        .with_retry(config.retry)
                        .with_breakers(bank.clone());
                if let Some(t) = tracer {
                    client = client.with_tracer(t.worker());
                }
                if let Some(cache) = initial_cache {
                    client.set_clock_s(initial_clock);
                    client.import_cache(cache.clone());
                }
                let capture = |done: u64| Checkpoint {
                    probes_done: done,
                    limiter: limiter.export_state(),
                    traffic: campaign.network.stats(),
                    faults: campaign.network.fault_stats(),
                    net_per_destination: campaign.network.per_destination_snapshot(),
                    cache: client.export_cache(),
                    clock_s: client.clock_s(),
                    breakers: bank.snapshot(),
                };
                let busy_start = Instant::now();
                // Chunk-claimed distribution: grab a contiguous run of
                // domains per `fetch_add` while work is plentiful, fall
                // back to single claims near the tail. With one worker
                // the visit order is the plain sequential order either
                // way.
                loop {
                    let remaining = probe_limit.saturating_sub(next.load(Ordering::Relaxed));
                    let chunk = if remaining < CLAIM_CHUNK * workers { 1 } else { CLAIM_CHUNK };
                    let start = next.fetch_add(chunk, Ordering::Relaxed);
                    if start >= probe_limit {
                        break;
                    }
                    chunk_claims.fetch_add(1, Ordering::Relaxed);
                    let end = start.saturating_add(chunk).min(probe_limit);
                    for (i, slot) in results.iter().enumerate().take(end).skip(start) {
                        let Some(d) = discovered.get(i) else { break };
                        client.trace_begin(i as u64, &d.name);
                        let mut probe = client.probe(&d.name);
                        // Second round: parent listed nameservers, but no
                        // authoritative answer materialized — maybe
                        // transient (§III-B re-probes these).
                        if config.second_round
                            && probe.parent_nonempty()
                            && !probe.has_authoritative_answer()
                        {
                            let retry_span = registry.span("round2");
                            client.retry_child_side(&mut probe);
                            retry_span.finish();
                            retried.fetch_add(1, Ordering::Relaxed);
                            retried_counter.inc();
                        }
                        client.trace_end();
                        // Enqueue to the journal sink before reporting
                        // done: completion accounting never runs ahead
                        // of the record being accepted for append. The
                        // write itself is asynchronous — durability
                        // arrives at the sink thread's next flush
                        // boundary, the same checkpoint-bounded window
                        // the buffered writer always had.
                        let probe = Arc::new(probe);
                        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                        if let Some(journal) = journal {
                            journal.probe(i as u64, Arc::clone(&probe));
                            if done.is_multiple_of(checkpoint_every) {
                                journal.checkpoint(capture(done as u64));
                            }
                        }
                        *slot.lock() = Some(probe);
                        probed_counter.inc();
                        if ctl.progress_every > 0
                            && (done.is_multiple_of(ctl.progress_every) || done == probe_limit)
                        {
                            ctl.emit("probing", done, total, limiter.issued());
                        }
                    }
                }
                // Deposit this worker's resolver state for the final
                // merged checkpoint (written after the scope joins).
                if journal.is_some() {
                    *exit_slot.lock() = Some((client.export_cache(), client.clock_s()));
                }
                // Worker utilization: how long each worker spent probing.
                let elapsed_ms = busy_start.elapsed().as_secs_f64() * 1e3;
                busy_ms.record(elapsed_ms);
                busy_slot.store(elapsed_ms.to_bits(), Ordering::Relaxed);
            });
        }
    })
    .expect("probe workers do not panic");
    probing_span.finish();
    if let Some(t) = &tracer {
        t.stage("round1", "end");
        t.finish();
        registry.counter("trace.dumps_dropped").add(t.dumps_dropped());
    }

    // Worker-balance gauges: busiest and idlest worker, and their ratio
    // as a percentage (100 = perfectly even). Healthy lock-free probing
    // keeps the spread close to 100; a convoyed run drives it up.
    {
        let busy: Vec<f64> =
            busy_slots.iter().map(|s| f64::from_bits(s.load(Ordering::Relaxed))).collect();
        let max = busy.iter().copied().fold(0.0_f64, f64::max);
        let min = busy.iter().copied().fold(f64::INFINITY, f64::min);
        if max > 0.0 && min.is_finite() {
            registry.gauge("runner.worker_busy_max_ms").set(max.round() as i64);
            registry.gauge("runner.worker_busy_min_ms").set(min.round() as i64);
            match worker_busy_spread_pct(max, min) {
                Some(spread) => {
                    registry.gauge("runner.worker_busy_spread_pct").set(spread.round() as i64);
                }
                None => {
                    // The idlest worker finished in ~0 ms (a tiny
                    // campaign, not a convoy): a ratio against zero is
                    // noise, so flag it instead of faking a spread.
                    registry.gauge("runner.worker_busy_spread_unreliable").set(1);
                }
            }
        }
    }

    if let Some(sink) = &journal {
        // Join the sink thread (it drains the channel first) and write
        // the campaign's single exit checkpoint on this thread: every
        // worker's resolver cache merged into one deterministic union
        // (entries under the same key are identical — the cache is a
        // pure function of the world at a fixed virtual clock), so a
        // resume picks up the full warmth the run accumulated. With one
        // worker this is byte-for-byte the old per-worker exit
        // checkpoint.
        let mut w = sink.finish();
        let mut cache: BTreeMap<(DomainName, RecordType), CacheEntry> = BTreeMap::new();
        let mut clock_s = initial_clock;
        for slot in &exit_state {
            if let Some((entries, clock)) = slot.lock().take() {
                clock_s = clock_s.max(clock);
                for (key, entry) in entries {
                    cache.entry(key).or_insert(entry);
                }
            }
        }
        w.checkpoint(&Checkpoint {
            probes_done: completed.load(Ordering::Relaxed) as u64,
            limiter: limiter.export_state(),
            traffic: campaign.network.stats(),
            faults: campaign.network.fault_stats(),
            net_per_destination: campaign.network.per_destination_snapshot(),
            cache: cache.into_iter().collect(),
            clock_s,
            breakers: bank.snapshot(),
        });
        if probe_limit == total {
            w.complete(total as u64);
        }
        registry.counter("journal.records_appended").add(w.records());
    }

    // Sink-pipeline health: total nanoseconds any worker spent blocked
    // on a full sink channel (zero = the worker path never waited on
    // output I/O), the deepest either queue got, and how many chunk
    // claims the distribution made. Always set, so tests can assert the
    // lock-free contract even on sink-less runs.
    {
        let mut wait_ns = 0u64;
        let mut depth_hwm = 0u64;
        if let Some(t) = &tracer {
            wait_ns += t.wait_ns();
            depth_hwm = depth_hwm.max(t.queue_high_water());
        }
        if let Some(s) = &journal {
            wait_ns += s.wait_ns();
            depth_hwm = depth_hwm.max(s.queue_high_water());
        }
        registry.gauge("runner.sink_wait_ns").set(wait_ns as i64);
        registry.gauge("runner.sink_queue_depth").set(depth_hwm as i64);
        registry.gauge("runner.chunk_claims").set(chunk_claims.load(Ordering::Relaxed) as i64);
        // Structural marker: workers reach every sink through bounded
        // channels, never a mutex.
        registry.gauge("runner.sink_lock_free").set(1);
    }

    // A graceful early stop yields a truncated dataset: the contiguous
    // prefix of completed probes, with the domain list cut to match.
    // The sink thread has joined, so each Arc is sole-owned and unwraps
    // without cloning.
    let mut probes: Vec<DomainProbe> = Vec::with_capacity(total);
    for slot in results {
        match slot.into_inner() {
            Some(p) => probes.push(Arc::try_unwrap(p).unwrap_or_else(|a| (*a).clone())),
            None => break,
        }
    }
    discovered.truncate(probes.len());

    registry.set_ledger(limiter.ledger());
    registry.set_toplist(
        "busiest destinations",
        campaign
            .network
            .busiest_destinations(10)
            .into_iter()
            .map(|(addr, count)| (addr.to_string(), count))
            .collect(),
    );
    if config.breaker.is_enabled() {
        registry.set_toplist(
            "quarantined destinations",
            bank.quarantined()
                .into_iter()
                .map(|(addr, denied)| (addr.to_string(), denied))
                .collect(),
        );
    }

    MeasurementDataset {
        seeds,
        discovered,
        probes,
        traffic: campaign.network.stats(),
        faults: campaign.network.fault_stats(),
        collection_date: campaign.collection_date,
        retried: retried.into_inner(),
        telemetry: registry.snapshot(),
    }
}

/// FNV-1a fingerprint of the discovered-domain list, in probing order —
/// the journal header's campaign identity.
fn names_fingerprint(discovered: &[crate::discovery::DiscoveredDomain]) -> u64 {
    let mut joined = String::new();
    for d in discovered {
        joined.push_str(&d.name.to_string());
        joined.push('\n');
    }
    fnv64(joined.as_bytes())
}

/// Worker-balance spread as a percentage of the idlest worker's busy
/// time (100 = perfectly even), or `None` when the idlest worker's time
/// is zero — dividing by ~0 yields an arbitrary huge number that would
/// read as a catastrophic convoy, so the gauge is left unset and a
/// `runner.worker_busy_spread_unreliable` marker is emitted instead.
fn worker_busy_spread_pct(max: f64, min: f64) -> Option<f64> {
    (min > 0.0).then_some((max / min) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::worker_busy_spread_pct;

    #[test]
    fn spread_is_ratio_of_busiest_to_idlest() {
        assert_eq!(worker_busy_spread_pct(200.0, 100.0), Some(200.0));
        assert_eq!(worker_busy_spread_pct(150.0, 150.0), Some(100.0));
    }

    #[test]
    fn zero_min_is_unreliable_not_a_sentinel() {
        // The old behaviour reported u16::MAX as if it were a measured
        // spread; a zero-busy idlest worker must yield no spread at all.
        assert_eq!(worker_busy_spread_pct(200.0, 0.0), None);
    }
}
