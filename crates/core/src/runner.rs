//! The campaign runner: seeds → discovery → parallel probing → second
//! round → dataset.
//!
//! Observability: [`run_campaign_with`] accepts a [`CampaignTelemetry`]
//! that wires the whole pipeline into one
//! [`Registry`](govdns_telemetry::Registry) — per-stage wall-clock
//! spans, network counters, worker utilization, progress callbacks, and
//! the §III-D query ledger. The resulting snapshot is embedded in the
//! returned [`MeasurementDataset`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use govdns_simnet::ChaosProfile;
use govdns_telemetry::{ProgressEvent, Registry};

use crate::discovery::{self, DiscoveryConfig};
use crate::probe::{DomainProbe, ProbeClient, RetryPolicy};
use crate::ratelimit::RateLimiter;
use crate::seed;
use crate::{Campaign, MeasurementDataset};

/// Chaos selection for a campaign run: which named fault preset to
/// install on the network, under which seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChaosSpec {
    /// The fault preset.
    pub profile: ChaosProfile,
    /// Seed for the plan's deterministic fault decisions (independent of
    /// the world seed so the same internet can be stressed differently).
    pub seed: u64,
}

/// Runner parameters.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Probe worker threads.
    pub workers: usize,
    /// Query-rate cap (queries per second, accounted not slept).
    pub max_qps: u32,
    /// Whether to run the second round for domains whose parent returned
    /// NS records but no nameserver authoritatively answered.
    pub second_round: bool,
    /// Per-destination soft cap for the query ledger (`None` = uncapped,
    /// an explicit choice rather than a zero sentinel): destinations
    /// that received at least this many queries are flagged in the
    /// ethics accounting.
    pub destination_cap: Option<u64>,
    /// How probe clients retry transient-looking failures.
    pub retry: RetryPolicy,
    /// Fault injection to install on the network for this run (`None` =
    /// clean delivery).
    pub chaos: Option<ChaosSpec>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 8,
            max_qps: 200,
            second_round: true,
            destination_cap: None,
            retry: RetryPolicy::none(),
            chaos: None,
        }
    }
}

/// Observability control for a campaign run: the registry every pipeline
/// component records into, plus an optional progress callback.
pub struct CampaignTelemetry {
    registry: Registry,
    progress_every: usize,
    progress: Option<Box<dyn Fn(ProgressEvent) + Send + Sync>>,
    limiter: Mutex<Option<RateLimiter>>,
}

impl Default for CampaignTelemetry {
    fn default() -> Self {
        CampaignTelemetry {
            registry: Registry::new(),
            progress_every: 0,
            progress: None,
            limiter: Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for CampaignTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignTelemetry")
            .field("registry", &self.registry)
            .field("progress_every", &self.progress_every)
            .field("progress", &self.progress.as_ref().map(|_| "<callback>"))
            .finish_non_exhaustive()
    }
}

impl CampaignTelemetry {
    /// A fresh registry with no progress callback.
    pub fn new() -> Self {
        CampaignTelemetry::default()
    }

    /// Invokes `callback` after every `every` probed domains (and once
    /// at the end of the probing stage).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    #[must_use]
    pub fn with_progress(
        mut self,
        every: usize,
        callback: impl Fn(ProgressEvent) + Send + Sync + 'static,
    ) -> Self {
        assert!(every > 0, "progress interval must be positive");
        self.progress_every = every;
        self.progress = Some(Box::new(callback));
        self
    }

    /// The registry the pipeline records into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The rate limiter of the most recent run, once a campaign has
    /// started (useful for asserting ledger totals after the fact).
    pub fn limiter(&self) -> Option<RateLimiter> {
        self.limiter.lock().clone()
    }

    fn emit(&self, stage: &str, done: usize, total: usize, queries_issued: u64) {
        if let Some(cb) = &self.progress {
            cb(ProgressEvent { stage: stage.to_owned(), done, total, queries_issued });
        }
    }
}

/// Runs the full §III pipeline over a campaign's inputs.
pub fn run_campaign(campaign: &Campaign<'_>, config: RunnerConfig) -> MeasurementDataset {
    run_campaign_with(campaign, config, &CampaignTelemetry::default())
}

/// Runs the full §III pipeline, recording telemetry into `ctl`.
///
/// Telemetry is strictly observational: the probing behavior (and hence
/// the dataset) is identical with or without it.
pub fn run_campaign_with(
    campaign: &Campaign<'_>,
    config: RunnerConfig,
    ctl: &CampaignTelemetry,
) -> MeasurementDataset {
    let registry = ctl.registry.clone();
    campaign.network.attach_telemetry(&registry);

    let seed_span = registry.span("seed");
    let seeds = seed::select_seeds(campaign);
    seed_span.finish();

    let discovery_span = registry.span("discovery");
    let discovered =
        discovery::discover(campaign, &seeds, DiscoveryConfig::paper(campaign.collection_date));
    discovery_span.finish();

    // Chaos starts at the probing stage: discovery models registry /
    // zone-file inputs, which the injected network faults do not touch.
    if let Some(chaos) = config.chaos {
        campaign.network.install_faults(Some(chaos.profile.plan(chaos.seed)));
    }

    let limiter = RateLimiter::with_telemetry(config.max_qps, config.destination_cap, &registry);
    *ctl.limiter.lock() = Some(limiter.clone());
    let workers = config.workers.max(1);
    registry.gauge("runner.workers").set(workers as i64);

    let results: Vec<Mutex<Option<DomainProbe>>> =
        (0..discovered.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let retried = AtomicUsize::new(0);
    let total = discovered.len();
    let probed_counter = registry.counter("runner.domains_probed");
    let retried_counter = registry.counter("runner.retried");
    let busy_ms = registry.histogram_latency_ms("runner.worker_busy_ms");

    let probing_span = registry.span("round1");
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| {
                // One client (and resolver cache) per worker, as the real
                // pipeline sharded its query load.
                let client =
                    ProbeClient::new(campaign.network, campaign.roots.to_vec(), limiter.clone())
                        .with_telemetry(&registry)
                        .with_retry(config.retry);
                let busy_start = Instant::now();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(d) = discovered.get(i) else { break };
                    let mut probe = client.probe(&d.name);
                    // Second round: parent listed nameservers, but no
                    // authoritative answer materialized — maybe
                    // transient (§III-B re-probes these).
                    if config.second_round
                        && probe.parent_nonempty()
                        && !probe.has_authoritative_answer()
                    {
                        let retry_span = registry.span("round2");
                        client.retry_child_side(&mut probe);
                        retry_span.finish();
                        retried.fetch_add(1, Ordering::Relaxed);
                        retried_counter.inc();
                    }
                    *results[i].lock() = Some(probe);
                    probed_counter.inc();
                    let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
                    if ctl.progress_every > 0
                        && (done.is_multiple_of(ctl.progress_every) || done == total)
                    {
                        ctl.emit("probing", done, total, limiter.issued());
                    }
                }
                // Worker utilization: how long each worker spent probing.
                busy_ms.record(busy_start.elapsed().as_secs_f64() * 1e3);
            });
        }
    })
    .expect("probe workers do not panic");
    probing_span.finish();

    let probes: Vec<DomainProbe> =
        results.into_iter().map(|m| m.into_inner().expect("every index was processed")).collect();

    registry.set_ledger(limiter.ledger());
    registry.set_toplist(
        "busiest destinations",
        campaign
            .network
            .busiest_destinations(10)
            .into_iter()
            .map(|(addr, count)| (addr.to_string(), count))
            .collect(),
    );

    MeasurementDataset {
        seeds,
        discovered,
        probes,
        traffic: campaign.network.stats(),
        faults: campaign.network.fault_stats(),
        collection_date: campaign.collection_date,
        retried: retried.into_inner(),
        telemetry: registry.snapshot(),
    }
}
