//! One-call reproduction of every table and figure in the paper's
//! evaluation, plus the §III funnel and traffic/ethics accounting.
//!
//! Analyses are *panic-isolated*: each stage runs under `catch_unwind`
//! with its own `analysis.<stage>` span, so one analysis blowing up
//! degrades the report to a partial one — the failed stage renders as
//! an `analysis.failed` entry while every other section survives.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use crate::analysis::concentration::ConcentrationAnalysis;
use crate::analysis::consistency::ConsistencyAnalysis;
use crate::analysis::delegation::DelegationAnalysis;
use crate::analysis::diversity::DiversityTable;
use crate::analysis::longitudinal::Longitudinal;
use crate::analysis::providers::ProviderAnalysis;
use crate::analysis::remedies::RemediationSummary;
use crate::analysis::replication::{
    ActiveReplication, DomainsPerCountry, PrivateShare, SingleNsChurn, YearlyTotals,
};
use crate::analysis::smells::{SmellAnalysis, SmellKind};
use crate::{
    run_campaign_with, Campaign, CampaignTelemetry, Funnel, MeasurementDataset, RunnerConfig,
};

/// Level mix of the studied domains (§III-B).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LevelMix {
    /// Second-level share (%).
    pub second: f64,
    /// Third-level share (%).
    pub third: f64,
    /// Fourth-level share (%).
    pub fourth: f64,
    /// Fifth-level-and-deeper share (%).
    pub fifth_plus: f64,
}

impl LevelMix {
    /// Computes the mix over discovered domains.
    pub fn compute(ds: &MeasurementDataset) -> Self {
        let total = ds.discovered.len();
        let mut counts = [0usize; 4];
        for d in &ds.discovered {
            let idx = match d.name.level() {
                0..=2 => 0,
                3 => 1,
                4 => 2,
                _ => 3,
            };
            counts[idx] += 1;
        }
        LevelMix {
            second: crate::stats::pct(counts[0], total),
            third: crate::stats::pct(counts[1], total),
            fourth: crate::stats::pct(counts[2], total),
            fifth_plus: crate::stats::pct(counts[3], total),
        }
    }
}

/// How trustworthy the measurement itself was: the share of answers
/// that needed retries or a second round, the retry-budget spend, and
/// the injected-fault tally (zero on a clean network). Chaos runs use
/// this section to check the probing machinery absorbed the faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasurementHealth {
    /// Responsive domains whose answers needed retries or round 2.
    pub degraded_domains: usize,
    /// Same, as a share of responsive domains.
    pub degraded_pct: f64,
    /// Domains first answered authoritatively in the second round.
    pub recovered_in_round2: usize,
    /// Backoff retries issued (`probe.retry.attempts`).
    pub retry_attempts: u64,
    /// Exchanges rescued by a retry (`probe.retry.recovered`).
    pub retry_recovered: u64,
    /// Exchanges that failed every attempt (`probe.retry.exhausted`).
    pub retry_exhausted: u64,
    /// Retries denied by the per-destination budget.
    pub retry_budget_denied: u64,
    /// Injected faults that changed an outcome (delays excluded).
    pub faults_injected: u64,
    /// Injected fault breakdown, from the network's own ledger.
    pub faults: govdns_simnet::FaultStats,
    /// Circuit-breaker trips (`probe.breaker.tripped`).
    pub breaker_tripped: u64,
    /// Exchanges skipped because a breaker was open
    /// (`probe.breaker.denied`).
    pub breaker_denied: u64,
    /// Breakers closed again by a successful half-open trial
    /// (`probe.breaker.reclosed`).
    pub breaker_reclosed: u64,
    /// Breakers re-opened by a failed half-open trial
    /// (`probe.breaker.reopened`).
    pub breaker_reopened: u64,
    /// Destinations a breaker quarantined at least once, with the
    /// number of exchanges denied while quarantined — from the
    /// `quarantined destinations` toplist. Empty when breakers were
    /// disabled or nothing tripped.
    pub quarantined: Vec<(String, u64)>,
    /// Countries ranked by degraded-domain count:
    /// `(country, responsive, degraded)`, worst first.
    pub flaky_countries: Vec<(govdns_world::CountryCode, usize, usize)>,
    /// Exemplar causal timelines for degraded domains, reconstructed
    /// from the flight recorder's trace file (empty when tracing was
    /// off or no degraded domain was sampled).
    pub exemplars: Vec<String>,
    /// Operational smell verdicts emitted by the smell pass (§V).
    #[serde(default)]
    pub smell_verdicts: usize,
    /// Distinct domains with at least one smell verdict.
    #[serde(default)]
    pub smell_domains: usize,
}

impl MeasurementHealth {
    /// Computes the health view over a finished dataset.
    pub fn compute(ds: &MeasurementDataset) -> Self {
        let mut responsive = 0usize;
        let mut per_country: std::collections::BTreeMap<govdns_world::CountryCode, (usize, usize)> =
            std::collections::BTreeMap::new();
        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            responsive += 1;
            let slot = per_country.entry(ds.country_of(i)).or_insert((0, 0));
            slot.0 += 1;
            if probe.degraded() {
                slot.1 += 1;
            }
        }
        let degraded_domains = ds.degraded_count();
        let mut flaky_countries: Vec<(govdns_world::CountryCode, usize, usize)> = per_country
            .into_iter()
            .filter(|&(_, (_, degraded))| degraded > 0)
            .map(|(c, (total, degraded))| (c, total, degraded))
            .collect();
        flaky_countries.sort_by_key(|&(c, _, degraded)| (std::cmp::Reverse(degraded), c));
        flaky_countries.truncate(10);
        let counter = |name: &str| ds.telemetry.counters.get(name).copied().unwrap_or(0);
        MeasurementHealth {
            degraded_domains,
            degraded_pct: crate::stats::pct(degraded_domains, responsive),
            recovered_in_round2: ds.recovered_in_round2_count(),
            retry_attempts: counter("probe.retry.attempts"),
            retry_recovered: counter("probe.retry.recovered"),
            retry_exhausted: counter("probe.retry.exhausted"),
            retry_budget_denied: counter("probe.retry.budget_denied"),
            faults_injected: ds.faults.injected(),
            faults: ds.faults,
            breaker_tripped: counter("probe.breaker.tripped"),
            breaker_denied: counter("probe.breaker.denied"),
            breaker_reclosed: counter("probe.breaker.reclosed"),
            breaker_reopened: counter("probe.breaker.reopened"),
            quarantined: ds
                .telemetry
                .toplists
                .get("quarantined destinations")
                .cloned()
                .unwrap_or_default(),
            flaky_countries,
            exemplars: Vec::new(),
            smell_verdicts: 0,
            smell_domains: 0,
        }
    }

    /// Renders the health view as a `metric,value` table.
    pub fn table(&self) -> crate::tables::TextTable {
        let mut t = crate::tables::TextTable::new(["metric", "value"]);
        let mut row = |name: &str, value: String| t.push_row([name.to_owned(), value]);
        row("degraded_domains", self.degraded_domains.to_string());
        row("degraded_pct", format!("{:.1}", self.degraded_pct));
        row("recovered_in_round2", self.recovered_in_round2.to_string());
        row("retry_attempts", self.retry_attempts.to_string());
        row("retry_recovered", self.retry_recovered.to_string());
        row("retry_exhausted", self.retry_exhausted.to_string());
        row("retry_budget_denied", self.retry_budget_denied.to_string());
        row("faults_injected", self.faults_injected.to_string());
        row("fault_flap_timeouts", self.faults.flap_timeouts.to_string());
        row("fault_losses", self.faults.losses.to_string());
        row("fault_refused", self.faults.refused.to_string());
        row("fault_truncated", self.faults.truncated.to_string());
        row("fault_delayed", self.faults.delayed.to_string());
        row("fault_outages", self.faults.outages.to_string());
        row("breaker_tripped", self.breaker_tripped.to_string());
        row("breaker_denied", self.breaker_denied.to_string());
        row("breaker_reclosed", self.breaker_reclosed.to_string());
        row("breaker_reopened", self.breaker_reopened.to_string());
        row("quarantined_destinations", self.quarantined.len().to_string());
        row("smell_verdicts", self.smell_verdicts.to_string());
        row("smell_domains", self.smell_domains.to_string());
        t
    }
}

/// Forcing analysis stages to fail, for exercising the partial-report
/// path without a genuinely buggy analysis.
///
/// Two triggers: [`arm`] marks a stage for the *current thread* (safe
/// under parallel tests), and the `GOVDNS_FAIL_ANALYSIS` environment
/// variable marks one process-wide (the CLI/CI hook).
pub mod failpoint {
    use std::cell::RefCell;

    thread_local! {
        static ARMED: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// Arms the failpoint: the named analysis stage panics on this
    /// thread until [`disarm`] is called.
    pub fn arm(stage: &str) {
        ARMED.with(|a| *a.borrow_mut() = Some(stage.to_owned()));
    }

    /// Disarms the thread-local failpoint.
    pub fn disarm() {
        ARMED.with(|a| *a.borrow_mut() = None);
    }

    pub(crate) fn hit(stage: &str) -> bool {
        ARMED.with(|a| a.borrow().as_deref() == Some(stage))
            || std::env::var("GOVDNS_FAIL_ANALYSIS").is_ok_and(|v| v == stage)
    }
}

/// One analysis stage that panicked during report generation: the
/// partial report carries these instead of aborting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisFailure {
    /// Stage name (matches the `analysis.<stage>` span).
    pub stage: String,
    /// The panic payload, stringified.
    pub message: String,
}

/// Picks up to three degraded domains and renders their causal
/// timelines from the trace file — the `MeasurementHealth` exemplars.
/// Long timelines keep only their last ten events (the decision that
/// classified the domain is at the end).
fn trace_exemplars(dataset: &MeasurementDataset, log: &govdns_trace::TraceLog) -> Vec<String> {
    const EXEMPLARS: usize = 3;
    const TAIL_EVENTS: usize = 10;
    let mut out = Vec::new();
    for (i, probe) in dataset.probes.iter().enumerate() {
        if out.len() >= EXEMPLARS {
            break;
        }
        if !probe.degraded() {
            continue;
        }
        let name = dataset.discovered[i].name.to_string();
        let Some(block) = log.domain(&name) else { continue };
        let lines = block.timeline();
        let skip = lines.len().saturating_sub(TAIL_EVENTS);
        let mut s = format!("{name} ({} events):", block.events.len());
        if skip > 0 {
            let _ = write!(s, "\n  … {skip} earlier events elided");
        }
        for line in &lines[skip..] {
            let _ = write!(s, "\n  {line}");
        }
        out.push(s);
    }
    out
}

/// Runs one analysis stage under `catch_unwind`, recording a span for
/// it; a panic yields the stage's `Default` value plus a failure entry.
fn guarded<T: Default>(
    registry: Option<&govdns_telemetry::Registry>,
    failures: &mut Vec<AnalysisFailure>,
    stage: &str,
    body: impl FnOnce() -> T,
) -> T {
    let span = registry.map(|r| r.span(&format!("analysis.{stage}")));
    let result = catch_unwind(AssertUnwindSafe(|| {
        assert!(!failpoint::hit(stage), "forced failure (failpoint) in analysis stage {stage}");
        body()
    }));
    if let Some(span) = span {
        span.finish();
    }
    match result {
        Ok(value) => value,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            failures.push(AnalysisFailure { stage: stage.to_owned(), message });
            T::default()
        }
    }
}

/// Everything the paper's evaluation section reports, regenerated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// The measurement dataset the analyses ran on.
    pub dataset: MeasurementDataset,
    /// §III-B funnel.
    pub funnel: Funnel,
    /// §III-B level mix.
    pub levels: LevelMix,
    /// Figs 2–3.
    pub yearly: YearlyTotals,
    /// Fig 4.
    pub per_country_2020: DomainsPerCountry,
    /// Fig 6.
    pub churn: SingleNsChurn,
    /// Fig 7.
    pub private_share: PrivateShare,
    /// Figs 8–9 and §IV-A headlines.
    pub active_replication: ActiveReplication,
    /// Table I.
    pub diversity: DiversityTable,
    /// Tables II–III.
    pub providers: ProviderAnalysis,
    /// Figs 10–12.
    pub delegation: DelegationAnalysis,
    /// Figs 13–14.
    pub consistency: ConsistencyAnalysis,
    /// §IV-A text: per-`d_gov` provider concentration.
    pub concentration: ConcentrationAnalysis,
    /// §V-B: the aggregate remediation workload.
    pub remedies: RemediationSummary,
    /// §V: operational smell verdicts with proposed refactorings
    /// (evidence chains attach when a trace log is available).
    #[serde(default)]
    pub smells: SmellAnalysis,
    /// Chaos hardening: retry spend, fault tally, degraded share.
    pub health: MeasurementHealth,
    /// Ethics accounting: queries received by the single busiest server.
    pub busiest_server_queries: u64,
    /// Analysis stages that panicked: their sections hold `Default`
    /// placeholder values and the report renders as partial.
    pub analysis_failures: Vec<AnalysisFailure>,
}

impl Report {
    /// Runs the full pipeline and all analyses.
    pub fn generate(campaign: &Campaign<'_>, config: RunnerConfig) -> Self {
        Report::generate_with(campaign, config, &CampaignTelemetry::default())
    }

    /// Runs the full pipeline and all analyses, recording telemetry
    /// into `ctl` — including a wall-clock span for the analysis stage
    /// itself. The final snapshot (pipeline + analysis) is embedded in
    /// the report's dataset.
    pub fn generate_with(
        campaign: &Campaign<'_>,
        config: RunnerConfig,
        ctl: &CampaignTelemetry,
    ) -> Self {
        let dataset = run_campaign_with(campaign, config, ctl);
        let analysis_span = ctl.registry().span("analysis");
        let mut report = Report::from_dataset_guarded(campaign, dataset, Some(ctl.registry()));
        analysis_span.finish();
        report.busiest_server_queries =
            campaign.network.busiest_destinations(1).first().map(|&(_, c)| c).unwrap_or(0);
        if let Some(tracer) = ctl.tracer() {
            // A panicked analysis gets the flight recorder's last-seen
            // events appended to the trace file, tagged with its stage.
            for failure in &report.analysis_failures {
                tracer.analysis_dump(&failure.stage);
            }
            // Reading the file back (rather than holding blocks in
            // memory) keeps the runner's memory bounded and exercises
            // the same reader the inspection CLI uses.
            if let Ok(log) = govdns_trace::read_trace(&tracer.spec().path) {
                report.health.exemplars = trace_exemplars(&report.dataset, &log);
                report.smells.attach_evidence(&log);
            }
        }
        let registry = ctl.registry();
        registry.counter("smell.detectors_run").add(SmellKind::all().len() as u64);
        registry.counter("smell.verdicts.total").add(report.smells.verdicts.len() as u64);
        for (kind, count) in &report.smells.by_kind {
            registry.counter(&format!("smell.verdicts.{kind}")).add(*count as u64);
        }
        registry.counter("smell.evidence.cited").add(report.smells.evidence_cited);
        // Re-freeze so the embedded snapshot covers the analysis span.
        report.dataset.telemetry = ctl.registry().snapshot();
        report
    }

    /// Runs the analyses over an existing dataset (reuse between
    /// experiments).
    pub fn from_dataset(campaign: &Campaign<'_>, dataset: MeasurementDataset) -> Self {
        Report::from_dataset_guarded(campaign, dataset, None)
    }

    /// The domains worth archiving when this run failed — the corpus
    /// capture hook. Domains cited by flight-recorder dumps come first
    /// (they are where an incident actually fired), then sampled
    /// degraded domains, deduplicated, at most `cap` names. Only
    /// domains with a block in `log` are returned: a corpus case must
    /// carry the recorded event stream it will later be replayed
    /// against.
    pub fn offending_domains(&self, log: &govdns_trace::TraceLog, cap: usize) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut push = |name: &str| {
            if out.len() < cap && log.domain(name).is_some() && !out.iter().any(|n| n == name) {
                out.push(name.to_owned());
            }
        };
        for dump in &log.dumps {
            if let Some(domain) = &dump.domain {
                push(domain);
            }
        }
        for (i, probe) in self.dataset.probes.iter().enumerate() {
            if probe.degraded() {
                push(&self.dataset.discovered[i].name.to_string());
            }
        }
        out
    }

    /// The panic-isolated analysis pass: every stage runs under its own
    /// guard, so a panicking analysis degrades its section to `Default`
    /// and records an [`AnalysisFailure`] instead of tearing down the
    /// whole report. With a registry, each stage gets an
    /// `analysis.<stage>` span.
    fn from_dataset_guarded(
        campaign: &Campaign<'_>,
        dataset: MeasurementDataset,
        registry: Option<&govdns_telemetry::Registry>,
    ) -> Self {
        let mut failures = Vec::new();
        let f = &mut failures;
        // The longitudinal reconstruction feeds four downstream stages;
        // if it fails they are skipped (marked failed), not run against
        // fabricated history.
        let lon = guarded(registry, f, "longitudinal", || {
            Some(Longitudinal::build(campaign, &dataset.seeds))
        });
        fn skipped<T: Default>(failures: &mut Vec<AnalysisFailure>, stage: &str) -> T {
            failures.push(AnalysisFailure {
                stage: stage.to_owned(),
                message: "skipped: longitudinal reconstruction failed".to_owned(),
            });
            T::default()
        }
        let per_country_2020 = match &lon {
            Some(lon) => {
                guarded(registry, f, "per_country", || DomainsPerCountry::compute(lon, 2020))
            }
            None => skipped(f, "per_country"),
        };
        let churn = match &lon {
            Some(lon) => guarded(registry, f, "churn", || SingleNsChurn::compute(lon)),
            None => skipped(f, "churn"),
        };
        let private_share = match &lon {
            Some(lon) => guarded(registry, f, "private_share", || PrivateShare::compute(lon)),
            None => skipped(f, "private_share"),
        };
        let providers = match &lon {
            Some(lon) => {
                guarded(registry, f, "providers", || ProviderAnalysis::compute(lon, campaign))
            }
            None => skipped(f, "providers"),
        };
        let mut report = Report {
            funnel: dataset.funnel(),
            levels: LevelMix::compute(&dataset),
            yearly: guarded(registry, f, "yearly", || {
                YearlyTotals::compute_raw(campaign, &dataset.seeds)
            }),
            per_country_2020,
            churn,
            private_share,
            active_replication: guarded(registry, f, "replication", || {
                ActiveReplication::compute(&dataset)
            }),
            diversity: guarded(registry, f, "diversity", || {
                DiversityTable::compute(&dataset, campaign)
            }),
            providers,
            delegation: guarded(registry, f, "delegation", || {
                DelegationAnalysis::compute(&dataset, campaign)
            }),
            consistency: guarded(registry, f, "consistency", || {
                ConsistencyAnalysis::compute(&dataset, campaign)
            }),
            concentration: guarded(registry, f, "concentration", || {
                ConcentrationAnalysis::compute(&dataset, campaign)
            }),
            remedies: guarded(registry, f, "remedies", || {
                RemediationSummary::compute(&dataset, campaign)
            }),
            smells: guarded(registry, f, "smells", || SmellAnalysis::compute(&dataset, campaign)),
            health: MeasurementHealth::compute(&dataset),
            busiest_server_queries: 0,
            analysis_failures: failures,
            dataset,
        };
        report.health.smell_verdicts = report.smells.verdicts.len();
        report.health.smell_domains = report.smells.domains_affected;
        report
    }

    /// Writes every table and figure as CSV into `dir` (created if
    /// absent), plus the one-row-per-domain dataset summary.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered.
    pub fn write_csv_bundle(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let write = |name: &str, csv: String| std::fs::write(dir.join(name), csv);
        // Files produced by a panicked stage are *omitted* (their data
        // is a `Default` placeholder); `analysis_failed.csv` below names
        // the missing stages.
        let failed = |stage: &str| self.analysis_failures.iter().any(|f| f.stage == stage);
        let staged = |stage: &str, name: &str, csv: &dyn Fn() -> String| -> std::io::Result<()> {
            if failed(stage) {
                Ok(())
            } else {
                std::fs::write(dir.join(name), csv())
            }
        };
        staged("yearly", "fig02_03_yearly.csv", &|| self.yearly.table().to_csv())?;
        staged("per_country", "fig04_domains_per_country.csv", &|| {
            self.per_country_2020.table().to_csv()
        })?;
        staged("churn", "fig06_d1ns_churn.csv", &|| self.churn.table().to_csv())?;
        staged("private_share", "fig07_private_share.csv", &|| {
            self.private_share.table().to_csv()
        })?;
        staged("replication", "fig08_d1ns_stale.csv", &|| {
            self.active_replication.stale_table().to_csv()
        })?;
        staged("replication", "fig09_ns_cdf.csv", &|| {
            self.active_replication.cdf_table().to_csv()
        })?;
        staged("diversity", "table1_diversity.csv", &|| self.diversity.table().to_csv())?;
        staged("providers", "table2_major_providers.csv", &|| self.providers.table2().to_csv())?;
        staged("providers", "table3_top_providers_2011.csv", &|| {
            self.providers.table3(2011).to_csv()
        })?;
        staged("providers", "table3_top_providers_2020.csv", &|| {
            self.providers.table3(2020).to_csv()
        })?;
        staged("delegation", "fig10_defective_by_country.csv", &|| {
            self.delegation.per_country_table().to_csv()
        })?;
        staged("delegation", "fig11_available_dns.csv", &|| {
            self.delegation.available_table().to_csv()
        })?;
        staged("delegation", "fig12_costs.csv", &|| self.delegation.cost_table().to_csv())?;
        staged("consistency", "fig13_consistency.csv", &|| {
            self.consistency.summary_table().to_csv()
        })?;
        staged("consistency", "fig14_disagreement.csv", &|| {
            self.consistency.per_country_table().to_csv()
        })?;
        staged("concentration", "concentration.csv", &|| self.concentration.table(30).to_csv())?;
        staged("smells", "smells.csv", &|| self.smells.to_csv())?;
        write("dataset_summary.csv", self.dataset.to_summary_csv())?;
        write("telemetry_scalars.csv", self.dataset.telemetry.scalars_csv())?;
        write("telemetry_stages.csv", self.dataset.telemetry.stages_csv())?;
        write("telemetry_histograms.csv", self.dataset.telemetry.histograms_csv())?;
        write("telemetry_toplists.csv", self.dataset.telemetry.toplists_csv())?;
        write("telemetry_ledger.csv", self.dataset.telemetry.ledger_csv())?;
        write("telemetry.prom", self.dataset.telemetry.render_prometheus())?;
        write("measurement_health.csv", self.health.table().to_csv())?;
        if !self.analysis_failures.is_empty() {
            let mut t = crate::tables::TextTable::new(["stage", "message"]);
            for failure in &self.analysis_failures {
                t.push_row([failure.stage.clone(), failure.message.clone()]);
            }
            write("analysis_failed.csv", t.to_csv())?;
        }
        Ok(())
    }

    /// Renders the full report as plain text — the same rows and series
    /// the paper's tables and figures carry.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let failed = |stage: &str| self.analysis_failures.iter().any(|f| f.stage == stage);
        let mut section = |title: &str, body: String| {
            let _ = writeln!(out, "== {title} ==\n{body}");
        };
        // Sections tied to an analysis stage wrap their body in
        // `stage_body!`, which renders a placeholder — *without
        // evaluating the body* — when that stage panicked.
        macro_rules! stage_body {
            ($stage:literal, $body:expr) => {
                if failed($stage) {
                    format!(
                        "(unavailable — analysis stage `{}` panicked; see `analysis.failed`)\n",
                        $stage
                    )
                } else {
                    $body
                }
            };
        }

        section(
            "collection funnel (§III-B)",
            format!(
                "queried: {}\nparent-responsive: {}\nparent-nonempty: {}\nchild-responsive: {}\nsecond-round probes: {}\nqueries: {} ({} bytes out, {} bytes in)\n",
                self.funnel.queried,
                self.funnel.parent_responsive,
                self.funnel.parent_nonempty,
                self.funnel.child_responsive,
                self.dataset.retried,
                self.dataset.traffic.queries_sent,
                self.dataset.traffic.bytes_sent,
                self.dataset.traffic.bytes_received,
            ),
        );
        if self.busiest_server_queries > 0 {
            section(
                "ethics accounting (§III-D)",
                format!(
                    "busiest single server received {} queries of {} total ({:.2}%)
",
                    self.busiest_server_queries,
                    self.dataset.traffic.queries_sent,
                    100.0 * self.busiest_server_queries as f64
                        / self.dataset.traffic.queries_sent.max(1) as f64,
                ),
            );
        }
        section(
            "domain levels (§III-B)",
            format!(
                "second: {:.1}%  third: {:.1}%  fourth: {:.1}%  fifth+: {:.1}%\n",
                self.levels.second, self.levels.third, self.levels.fourth, self.levels.fifth_plus
            ),
        );
        section(
            "Fig 2/3 — PDNS domains, countries, nameservers per year",
            stage_body!("yearly", self.yearly.table().to_text()),
        );
        section(
            "Fig 4 — domains per country, 2020 (top 20)",
            stage_body!("per_country", {
                let mut t = crate::tables::TextTable::new(["country", "domains"]);
                for (c, n) in self.per_country_2020.rows.iter().take(20) {
                    t.push_row([c.to_string(), n.to_string()]);
                }
                t.to_text()
            }),
        );
        section(
            "Fig 6 — single-NS cohort churn",
            stage_body!("churn", self.churn.table().to_text()),
        );
        section(
            "Fig 7 — private ADNS share per year",
            stage_body!("private_share", self.private_share.table().to_text()),
        );
        section(
            "Fig 8 — stale single-NS domains by d_gov",
            stage_body!(
                "replication",
                format!(
                    "overall: {} d1NS, {:.1}% without any authoritative response\n{}",
                    self.active_replication.d1ns_total,
                    self.active_replication.d1ns_stale_share,
                    self.active_replication.stale_table().to_text()
                )
            ),
        );
        section(
            "Fig 9 — nameservers per domain (CDF)",
            stage_body!(
                "replication",
                format!(
                    "≥2 NS: {:.1}%  |  countries with no under-replicated domain: {}\n{}",
                    self.active_replication.multi_ns_share,
                    self.active_replication.all_replicated_countries,
                    self.active_replication.cdf_table().to_text()
                )
            ),
        );
        section(
            "Table I — diversity of nameserver placement",
            stage_body!(
                "diversity",
                format!(
                    "{}\nsecond-level multi-/24: {:.1}%  deeper: {:.1}%\n",
                    self.diversity.table().to_text(),
                    self.diversity.second_level_multi_24_pct,
                    self.diversity.deeper_multi_24_pct
                )
            ),
        );
        section(
            "Table II — major providers, 2011 vs 2020",
            stage_body!("providers", self.providers.table2().to_text()),
        );
        section(
            "Table III — top providers by countries, 2011",
            stage_body!("providers", self.providers.table3(2011).to_text()),
        );
        section(
            "Table III — top providers by countries, 2020",
            stage_body!("providers", self.providers.table3(2020).to_text()),
        );
        section(
            "centralization headline",
            stage_body!(
                "providers",
                format!(
                    "countries on the most widespread provider: {} (2011) → {} (2020)\n",
                    self.providers.top_provider_countries(2011),
                    self.providers.top_provider_countries(2020)
                )
            ),
        );
        section(
            "Fig 10 — defective delegations",
            stage_body!(
                "delegation",
                format!(
                    "any: {} ({:.1}%)  partial(parent): {} ({:.1}%)  full: {}\n{}",
                    self.delegation.any_defective,
                    self.delegation.any_defective_pct(),
                    self.delegation.partial_parent,
                    self.delegation.partial_parent_pct(),
                    self.delegation.fully_defective,
                    self.delegation.per_country_table().to_text()
                )
            ),
        );
        section(
            "Fig 11 — registrable dangling NS domains",
            stage_body!(
                "delegation",
                format!(
                    "available d_ns: {}  affected domains: {}  countries: {}  fully stale: {}\n{}",
                    self.delegation.available.len(),
                    self.delegation.affected_domains,
                    self.delegation.affected_countries,
                    self.delegation.affected_fully_stale,
                    self.delegation.available_table().to_text()
                )
            ),
        );
        section(
            "Fig 12 — registration cost of available d_ns",
            stage_body!("delegation", self.delegation.cost_table().to_text()),
        );
        section(
            "Fig 13 — parent/child consistency",
            stage_body!(
                "consistency",
                format!(
                    "{}\nP=C second-level: {:.1}%  deeper: {:.1}%  |  P≠C with partial lame: {:.1}%\n",
                    self.consistency.summary_table().to_text(),
                    self.consistency.equal_pct_second_level,
                    self.consistency.equal_pct_deeper,
                    self.consistency.disagree_with_lame_pct
                )
            ),
        );
        section(
            "Fig 14 — disagreement by country",
            stage_body!("consistency", self.consistency.per_country_table().to_text()),
        );
        section(
            "§IV-A (text) — provider concentration per d_gov",
            stage_body!("concentration", self.concentration.table(12).to_text()),
        );
        section(
            "§IV-D — inconsistency-only hijack surface",
            stage_body!(
                "consistency",
                format!(
                    "registrable d_ns: {}  affected domains: {}  countries: {}  min price: {}\n",
                    self.consistency.parked.len(),
                    self.consistency.parked_affected_domains,
                    self.consistency.parked_affected_countries,
                    self.consistency
                        .parked_min_price
                        .map_or("-".to_owned(), |p| format!("{p:.2} USD")),
                )
            ),
        );
        if !self.dataset.telemetry.counters.is_empty() || !self.dataset.telemetry.stages.is_empty()
        {
            section("pipeline telemetry", self.dataset.telemetry.render_text());
        }
        section(
            "§V-B — remediation workload",
            stage_body!(
                "remedies",
                format!(
                    "domains needing action: {} of {}\nstale delegations to remove: {}\nNS records to fix or drop: {}\nparent syncs (CSYNC/EPP): {}\nhijack exposures to close: {}\nplacement advisories: {}\nflakiness follow-ups: {}\nquarantine follow-ups: {}\n",
                    self.remedies.needing_action,
                    self.remedies.domains,
                    self.remedies.removals,
                    self.remedies.ns_fixes,
                    self.remedies.synchronizations,
                    self.remedies.hijack_exposures,
                    self.remedies.placement_advice,
                    self.remedies.flakiness_followups,
                    self.remedies.quarantine_followups,
                )
            ),
        );
        section(
            "§V — operational smells (trace-cited)",
            stage_body!(
                "smells",
                format!(
                    "verdicts: {} across {} domains  |  evidence events cited: {}\n{}worst verdicts:\n{}",
                    self.smells.verdicts.len(),
                    self.smells.domains_affected,
                    self.smells.evidence_cited,
                    self.smells.table().to_text(),
                    self.smells.verdict_table(10).to_text(),
                )
            ),
        );
        {
            let mut body = self.health.table().to_text();
            if !self.health.quarantined.is_empty() {
                let mut t = crate::tables::TextTable::new(["destination", "denied"]);
                for (dst, denied) in &self.health.quarantined {
                    t.push_row([dst.clone(), denied.to_string()]);
                }
                let _ = write!(body, "quarantined destinations:\n{}", t.to_text());
            }
            if !self.health.flaky_countries.is_empty() {
                let mut t = crate::tables::TextTable::new(["country", "responsive", "degraded"]);
                for &(c, total, degraded) in &self.health.flaky_countries {
                    t.push_row([c.to_string(), total.to_string(), degraded.to_string()]);
                }
                let _ = write!(body, "flakiest countries:\n{}", t.to_text());
            }
            if !self.health.exemplars.is_empty() {
                let _ = writeln!(body, "exemplar degraded-domain timelines (flight recorder):");
                for exemplar in &self.health.exemplars {
                    let _ = writeln!(body, "{exemplar}");
                }
            }
            section("measurement health (§III-B re-probes, chaos)", body);
        }
        if !self.analysis_failures.is_empty() {
            let mut body = String::new();
            let _ = writeln!(
                body,
                "PARTIAL REPORT: {} analysis stage(s) did not complete.",
                self.analysis_failures.len()
            );
            for failure in &self.analysis_failures {
                let _ = writeln!(body, "  {}: {}", failure.stage, failure.message);
            }
            section("analysis.failed", body);
        }
        out
    }
}
