//! Write-ahead observation journal: crash-safe campaign persistence.
//!
//! Every completed [`DomainProbe`] is appended to an on-disk journal as
//! a length-prefixed, checksummed JSON record, and the full mutable
//! pipeline state (rate-limiter ledger, network accounting, resolver
//! cache, circuit breakers) is checkpointed every few probes. A
//! campaign killed mid-flight is resumed by replaying the journal: the
//! runner restores the checkpointed state, fills in the already-probed
//! domains, and re-probes only the remainder — producing a dataset
//! byte-identical to the uninterrupted run (see `runner.rs`).
//!
//! # Record framing
//!
//! ```text
//! J1 <16-hex fnv64(payload)> <8-hex payload length>\n
//! <payload>\n
//! ```
//!
//! The payload is a single JSON object with a `"kind"` field: `header`
//! (config echo + discovered-name fingerprint, always first), `probe`
//! (one observation), `checkpoint` (full pipeline state), `resumed`
//! (a resume boundary marker), or `complete` (clean end-of-campaign).
//! A torn or corrupt tail — the half-written record a crash leaves
//! behind — fails its length or checksum test and is silently dropped;
//! everything before it is intact by construction (records are flushed
//! in order). A record that passes its checksum but fails to decode is
//! a version mismatch and panics.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

use govdns_model::{DomainName, RecordData, RecordType, ResourceRecord, Soa};
use govdns_simnet::{CacheEntry, FaultStats, TrafficStats};

use crate::probe::{
    BreakerPhase, BreakerSnapshot, DomainProbe, ResponseClass, ServerObservation, ServerProbe,
};
use crate::ratelimit::LimiterState;

/// Where (and how often) a campaign journals itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalSpec {
    /// Journal file path (created/truncated at campaign start).
    pub path: PathBuf,
    /// Full-state checkpoint cadence, in completed probes. The journal
    /// also checkpoints once more when the probing loop drains.
    pub checkpoint_every: usize,
    /// Buffered probe bytes that trigger a flush
    /// ([`DEFAULT_FLUSH_THRESHOLD`] unless overridden). Zero degrades
    /// to a flush after every probe record — maximum durability, one
    /// write syscall per probe.
    pub flush_threshold: usize,
}

impl JournalSpec {
    /// A spec with the default checkpoint cadence (every 32 probes) and
    /// flush threshold.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalSpec {
            path: path.into(),
            checkpoint_every: 32,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
        }
    }

    /// Sets the probe append-buffer flush threshold (builder style).
    #[must_use]
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold = bytes;
        self
    }
}

/// The journal's first record: enough of the campaign's identity to
/// refuse resuming against a different campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// FNV-1a fingerprint of the discovered (sorted) domain list.
    pub names_fingerprint: u64,
    /// Number of domains the campaign will probe.
    pub domains: u64,
    /// A deterministic echo of every `RunnerConfig` knob that shapes
    /// observations (worker count excluded — it may legally differ
    /// between the crashed and the resuming run).
    pub config_echo: String,
}

/// A full-state checkpoint: everything the pipeline mutates while
/// probing, captured after `probes_done` completed probes.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Completed probes at capture time.
    pub probes_done: u64,
    /// Rate-limiter ledger (issued totals, per-round, per-destination,
    /// retry budgets).
    pub limiter: LimiterState,
    /// Network traffic accounting.
    pub traffic: TrafficStats,
    /// Injected-fault accounting.
    pub faults: FaultStats,
    /// Per-destination query counts (feeds `RefusedBurst` decisions and
    /// the busiest-destinations toplist).
    pub net_per_destination: Vec<(Ipv4Addr, u64)>,
    /// Stub-resolver cache entries, in export order (each carries its
    /// virtual-clock expiry).
    pub cache: Vec<((DomainName, RecordType), CacheEntry)>,
    /// The resolver's virtual clock at capture time, seconds. Campaigns
    /// leave it at zero; recovery sweeps advance it, and resume must
    /// restore it before re-importing the cache so expiry decisions
    /// replay identically. Old journals without the field decode as
    /// zero.
    pub clock_s: u64,
    /// Circuit-breaker bank state.
    pub breakers: Vec<BreakerSnapshot>,
}

/// Appends records to a journal file.
///
/// Probe appends are buffered (flushed once the buffer passes the
/// spec's flush threshold, [`DEFAULT_FLUSH_THRESHOLD`] by default) so a
/// high-throughput campaign does not pay one syscall + fsync-adjacent
/// flush per probe; every durability boundary — header, checkpoint,
/// resume marker, completion — flushes the buffer explicitly, so a kill
/// between probes can lose at most the tail written since the last
/// checkpoint, which is exactly the window checkpoint replay already
/// tolerates.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    records: u64,
    /// Framed records accepted but not yet written to the OS.
    buf: Vec<u8>,
    /// Buffered bytes that trigger a flush after a probe append.
    flush_threshold: usize,
}

/// Default buffered probe bytes that trigger a flush; checkpoints and
/// drops flush regardless of the threshold.
pub const DEFAULT_FLUSH_THRESHOLD: usize = 64 * 1024;

impl JournalWriter {
    /// Creates (truncating) a journal at `path` and writes the header.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be created or written — a campaign
    /// that cannot persist its journal must fail loudly, not silently
    /// lose crash safety.
    pub fn create(path: &Path, header: &JournalHeader) -> Self {
        let file = File::create(path)
            .unwrap_or_else(|e| panic!("journal: cannot create {}: {e}", path.display()));
        let mut w = JournalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            buf: Vec::new(),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
        };
        w.write_record(&header_to_value(header));
        w.flush();
        w
    }

    /// Opens an existing journal for appending (the resume-in-place
    /// path); the caller has already validated its header.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be opened.
    pub fn append_to(path: &Path) -> Self {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("journal: cannot append to {}: {e}", path.display()));
        JournalWriter {
            file,
            path: path.to_path_buf(),
            records: 0,
            buf: Vec::new(),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
        }
    }

    /// Overrides the probe append-buffer flush threshold (builder
    /// style). Zero flushes after every probe record.
    #[must_use]
    pub fn with_flush_threshold(mut self, bytes: usize) -> Self {
        self.flush_threshold = bytes;
        self
    }

    /// Appends one completed probe, with its position in the campaign's
    /// domain order. Buffered: becomes durable at the next flush point
    /// (a checkpoint, an explicit [`flush`](JournalWriter::flush), drop,
    /// or the buffer passing the flush threshold).
    pub fn probe(&mut self, index: u64, probe: &DomainProbe) {
        let mut obj = vec![
            ("kind".to_string(), Value::str("probe")),
            ("index".to_string(), Value::Num(index)),
            ("probe".to_string(), probe_to_value(probe)),
        ];
        self.write_record(&Value::Obj(std::mem::take(&mut obj)));
        if self.buf.len() >= self.flush_threshold {
            self.flush();
        }
    }

    /// Appends a full-state checkpoint and flushes: checkpoints are the
    /// durability boundary a resumed campaign restarts from.
    pub fn checkpoint(&mut self, cp: &Checkpoint) {
        self.write_record(&checkpoint_to_value(cp));
        self.flush();
    }

    /// Marks a resume boundary: a fresh process picked the campaign up
    /// with `probes_done` observations already replayed. Flushes.
    pub fn resumed(&mut self, probes_done: u64) {
        self.write_record(&Value::Obj(vec![
            ("kind".to_string(), Value::str("resumed")),
            ("probes_done".to_string(), Value::Num(probes_done)),
        ]));
        self.flush();
    }

    /// Marks a clean end of campaign after `probes` observations.
    /// Flushes.
    pub fn complete(&mut self, probes: u64) {
        self.write_record(&Value::Obj(vec![
            ("kind".to_string(), Value::str("complete")),
            ("probes".to_string(), Value::Num(probes)),
        ]));
        self.flush();
    }

    /// Records written through this writer (excludes replayed history).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes every buffered record to the OS.
    ///
    /// # Panics
    ///
    /// Panics if the write fails — same loud-failure contract as
    /// [`create`](JournalWriter::create).
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.file
            .write_all(&self.buf)
            .and_then(|()| self.file.flush())
            .unwrap_or_else(|e| panic!("journal: write to {} failed: {e}", self.path.display()));
        self.buf.clear();
    }

    fn write_record(&mut self, value: &Value) {
        let mut payload = String::new();
        value.encode(&mut payload);
        let _ = write!(
            self.buf,
            "J1 {:016x} {:08x}\n{payload}\n",
            fnv64(payload.as_bytes()),
            payload.len()
        );
        self.records += 1;
    }
}

impl Drop for JournalWriter {
    /// Best-effort flush of any buffered tail; a panic mid-campaign
    /// still lands everything written so far, while a hard kill falls
    /// back to the last checkpoint as designed.
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            let _ = self.file.write_all(&self.buf).and_then(|()| self.file.flush());
            self.buf.clear();
        }
    }
}

/// Everything a journal replay recovered, ready for the runner to
/// resume from.
#[derive(Debug, Clone)]
pub struct JournalReplay {
    /// The validated header.
    pub header: JournalHeader,
    /// The contiguous prefix of completed probes (index 0..n in
    /// campaign domain order).
    pub probes: Vec<DomainProbe>,
    /// The most advanced checkpoint whose `probes_done` does not exceed
    /// the contiguous probe prefix.
    pub checkpoint: Option<Checkpoint>,
    /// Valid records read (all kinds).
    pub records: u64,
    /// Bytes of torn/corrupt tail dropped.
    pub dropped_bytes: u64,
    /// Resume boundaries already present in the journal.
    pub resumes: u64,
    /// Whether the journal ends in a clean `complete` record.
    pub completed: bool,
}

impl JournalReplay {
    /// Reads and validates a journal.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be read, does not begin with a valid
    /// header record, or contains a checksummed record that fails to
    /// decode (a format-version mismatch).
    pub fn load(path: &Path) -> Self {
        let bytes = std::fs::read(path)
            .unwrap_or_else(|e| panic!("journal: cannot read {}: {e}", path.display()));
        let mut offset = 0usize;
        let mut records: Vec<Value> = Vec::new();
        while offset < bytes.len() {
            match read_frame(&bytes, offset) {
                Some((payload, next)) => {
                    let value = parse_json(payload).unwrap_or_else(|e| {
                        panic!("journal: {} record {}: {e}", path.display(), records.len())
                    });
                    records.push(value);
                    offset = next;
                }
                // Torn tail: drop the remainder.
                None => break,
            }
        }
        let dropped_bytes = (bytes.len() - offset) as u64;
        let first = records
            .first()
            .unwrap_or_else(|| panic!("journal: {} has no intact records", path.display()));
        assert_eq!(
            first.get("kind").and_then(Value::as_str),
            Some("header"),
            "journal: {} does not begin with a header record",
            path.display()
        );
        let header = header_from_value(first);

        let mut probes: Vec<DomainProbe> = Vec::new();
        let mut checkpoint: Option<Checkpoint> = None;
        let mut resumes = 0u64;
        let mut completed = false;
        for record in &records[1..] {
            match record.get("kind").and_then(Value::as_str) {
                Some("probe") => {
                    let index = record.get("index").and_then(Value::as_num).expect("probe index");
                    // Only the contiguous prefix is trustworthy: with a
                    // single worker this is every record, with many it
                    // is everything up to the first gap.
                    if index == probes.len() as u64 {
                        probes.push(probe_from_value(record.get("probe").expect("probe payload")));
                    }
                }
                Some("checkpoint") => {
                    let cp = checkpoint_from_value(record);
                    if cp.probes_done <= probes.len() as u64
                        && checkpoint.as_ref().is_none_or(|b| cp.probes_done >= b.probes_done)
                    {
                        checkpoint = Some(cp);
                    }
                }
                Some("resumed") => resumes += 1,
                Some("complete") => completed = true,
                kind => panic!("journal: unknown record kind {kind:?}"),
            }
        }
        JournalReplay {
            header,
            probes,
            checkpoint,
            records: records.len() as u64,
            dropped_bytes,
            resumes,
            completed,
        }
    }
}

/// Reads one frame starting at `offset`; returns the payload slice and
/// the offset past the frame, or `None` if the frame is incomplete or
/// fails its checksum.
fn read_frame(bytes: &[u8], offset: usize) -> Option<(&str, usize)> {
    // "J1 " + 16 hex + " " + 8 hex + "\n" = 29 bytes.
    let head = bytes.get(offset..offset + 29)?;
    if &head[..3] != b"J1 " || head[19] != b' ' || head[28] != b'\n' {
        return None;
    }
    let sum = u64::from_str_radix(std::str::from_utf8(&head[3..19]).ok()?, 16).ok()?;
    let len = usize::from_str_radix(std::str::from_utf8(&head[20..28]).ok()?, 16).ok()?;
    let start = offset + 29;
    let payload = bytes.get(start..start + len)?;
    if bytes.get(start + len) != Some(&b'\n') || fnv64(payload) != sum {
        return None;
    }
    Some((std::str::from_utf8(payload).ok()?, start + len + 1))
}

/// FNV-1a, 64-bit — the same stable fingerprint the examples print for
/// datasets, reused as the record checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------
// Minimal JSON: the journal's payloads are built and parsed with a
// private value tree. Every number the pipeline persists is an unsigned
// integer, so `Num` is u64; object order is insertion order, and the
// encoders below always build keys in a fixed order, keeping encoding
// deterministic.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn encode(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Str(s) => encode_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(out, k);
                    out.push(':');
                    v.encode(out);
                }
                out.push('}');
            }
        }
    }
}

fn encode_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(format!("expected , or ] at {pos}, got {other:?}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected : at {pos}"));
                }
                *pos += 1;
                entries.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    other => return Err(format!("expected , or }} at {pos}, got {other:?}")),
                }
            }
        }
        Some(b) if b.is_ascii_digit() => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            std::str::from_utf8(&bytes[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at {start}"))
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(
                    std::str::from_utf8(&bytes[chunk_start..*pos]).map_err(|e| e.to_string())?,
                );
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at {pos}"))?;
                        out.push(
                            char::from_u32(hex).ok_or_else(|| format!("bad codepoint at {pos}"))?,
                        );
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at {pos}")),
                }
                *pos += 1;
                chunk_start = *pos;
            }
            Some(_) => *pos += 1,
        }
    }
}

// ---------------------------------------------------------------------
// Codecs. Encoders build objects with keys in a fixed order; decoders
// look keys up by name and panic on absence — a checksummed record that
// lacks a field is a format-version mismatch, not a torn write.
// ---------------------------------------------------------------------

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn need<'v>(value: &'v Value, key: &str) -> &'v Value {
    value.get(key).unwrap_or_else(|| panic!("journal: record missing field {key:?}"))
}

fn need_num(value: &Value, key: &str) -> u64 {
    need(value, key).as_num().unwrap_or_else(|| panic!("journal: field {key:?} is not a number"))
}

fn need_bool(value: &Value, key: &str) -> bool {
    need(value, key).as_bool().unwrap_or_else(|| panic!("journal: field {key:?} is not a bool"))
}

fn need_str<'v>(value: &'v Value, key: &str) -> &'v str {
    need(value, key).as_str().unwrap_or_else(|| panic!("journal: field {key:?} is not a string"))
}

fn need_arr<'v>(value: &'v Value, key: &str) -> &'v [Value] {
    need(value, key).as_arr().unwrap_or_else(|| panic!("journal: field {key:?} is not an array"))
}

fn name_to_value(name: &DomainName) -> Value {
    Value::Str(name.to_string())
}

fn name_from_value(value: &Value) -> DomainName {
    let s = value.as_str().expect("journal: name is not a string");
    s.parse().unwrap_or_else(|e| panic!("journal: bad domain name {s:?}: {e:?}"))
}

fn addr_to_value(addr: Ipv4Addr) -> Value {
    Value::Str(addr.to_string())
}

fn addr_from_value(value: &Value) -> Ipv4Addr {
    let s = value.as_str().expect("journal: address is not a string");
    s.parse().unwrap_or_else(|e| panic!("journal: bad address {s:?}: {e}"))
}

fn addr_counts_to_value(counts: &[(Ipv4Addr, u64)]) -> Value {
    Value::Arr(
        counts
            .iter()
            .map(|&(addr, n)| Value::Arr(vec![addr_to_value(addr), Value::Num(n)]))
            .collect(),
    )
}

fn addr_counts_from_value(value: &Value) -> Vec<(Ipv4Addr, u64)> {
    value
        .as_arr()
        .expect("journal: address counts are not an array")
        .iter()
        .map(|pair| {
            let pair = pair.as_arr().expect("journal: address count is not a pair");
            (addr_from_value(&pair[0]), pair[1].as_num().expect("journal: count"))
        })
        .collect()
}

fn header_to_value(header: &JournalHeader) -> Value {
    obj(vec![
        ("kind", Value::str("header")),
        ("names_fingerprint", Value::Num(header.names_fingerprint)),
        ("domains", Value::Num(header.domains)),
        ("config_echo", Value::Str(header.config_echo.clone())),
    ])
}

fn header_from_value(value: &Value) -> JournalHeader {
    JournalHeader {
        names_fingerprint: need_num(value, "names_fingerprint"),
        domains: need_num(value, "domains"),
        config_echo: need_str(value, "config_echo").to_string(),
    }
}

fn class_to_value(class: &ResponseClass) -> Value {
    match class {
        ResponseClass::Authoritative(targets) => obj(vec![
            ("t", Value::str("auth")),
            ("targets", Value::Arr(targets.iter().map(name_to_value).collect())),
        ]),
        ResponseClass::Referral { cut, targets, glue } => obj(vec![
            ("t", Value::str("referral")),
            ("cut", name_to_value(cut)),
            ("targets", Value::Arr(targets.iter().map(name_to_value).collect())),
            (
                "glue",
                Value::Arr(
                    glue.iter()
                        .map(|(host, addr)| {
                            Value::Arr(vec![name_to_value(host), addr_to_value(*addr)])
                        })
                        .collect(),
                ),
            ),
        ]),
        ResponseClass::Empty(rcode) => {
            obj(vec![("t", Value::str("empty")), ("rcode", Value::Num(u64::from(*rcode)))])
        }
        ResponseClass::Rejected(rcode) => {
            obj(vec![("t", Value::str("rejected")), ("rcode", Value::Num(u64::from(*rcode)))])
        }
        ResponseClass::Truncated => obj(vec![("t", Value::str("truncated"))]),
        ResponseClass::Timeout => obj(vec![("t", Value::str("timeout"))]),
        ResponseClass::Skipped => obj(vec![("t", Value::str("skipped"))]),
    }
}

#[allow(clippy::cast_possible_truncation)]
fn class_from_value(value: &Value) -> ResponseClass {
    let names = |key: &str| need_arr(value, key).iter().map(name_from_value).collect();
    match need_str(value, "t") {
        "auth" => ResponseClass::Authoritative(names("targets")),
        "referral" => ResponseClass::Referral {
            cut: name_from_value(need(value, "cut")),
            targets: names("targets"),
            glue: need_arr(value, "glue")
                .iter()
                .map(|pair| {
                    let pair = pair.as_arr().expect("journal: glue is not a pair");
                    (name_from_value(&pair[0]), addr_from_value(&pair[1]))
                })
                .collect(),
        },
        "empty" => ResponseClass::Empty(need_num(value, "rcode") as u8),
        "rejected" => ResponseClass::Rejected(need_num(value, "rcode") as u8),
        "truncated" => ResponseClass::Truncated,
        "timeout" => ResponseClass::Timeout,
        "skipped" => ResponseClass::Skipped,
        t => panic!("journal: unknown response class tag {t:?}"),
    }
}

fn observation_to_value(o: &ServerObservation) -> Value {
    obj(vec![
        ("addr", addr_to_value(o.addr)),
        ("class", class_to_value(&o.class)),
        ("attempts", Value::Num(u64::from(o.attempts))),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn observation_from_value(value: &Value) -> ServerObservation {
    ServerObservation {
        addr: addr_from_value(need(value, "addr")),
        class: class_from_value(need(value, "class")),
        attempts: need_num(value, "attempts") as u32,
    }
}

fn server_to_value(s: &ServerProbe) -> Value {
    obj(vec![
        ("host", name_to_value(&s.host)),
        ("in_parent", Value::Bool(s.in_parent)),
        ("in_child", Value::Bool(s.in_child)),
        ("addrs", Value::Arr(s.addrs.iter().map(|&a| addr_to_value(a)).collect())),
        ("observations", Value::Arr(s.observations.iter().map(observation_to_value).collect())),
        ("recovered_in_round2", Value::Bool(s.recovered_in_round2)),
    ])
}

fn server_from_value(value: &Value) -> ServerProbe {
    ServerProbe {
        host: name_from_value(need(value, "host")),
        in_parent: need_bool(value, "in_parent"),
        in_child: need_bool(value, "in_child"),
        addrs: need_arr(value, "addrs").iter().map(addr_from_value).collect(),
        observations: need_arr(value, "observations").iter().map(observation_from_value).collect(),
        recovered_in_round2: need_bool(value, "recovered_in_round2"),
    }
}

/// Full-fidelity SOA codec: all seven fields round-trip (the dataset's
/// `canonical_json` prints only three, which is not enough to rebuild
/// the in-memory record).
fn soa_to_value(soa: &Soa) -> Value {
    obj(vec![
        ("mname", name_to_value(&soa.mname)),
        ("rname", name_to_value(&soa.rname)),
        ("serial", Value::Num(u64::from(soa.serial))),
        ("refresh", Value::Num(u64::from(soa.refresh))),
        ("retry", Value::Num(u64::from(soa.retry))),
        ("expire", Value::Num(u64::from(soa.expire))),
        ("minimum", Value::Num(u64::from(soa.minimum))),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn soa_from_value(value: &Value) -> Soa {
    Soa {
        mname: name_from_value(need(value, "mname")),
        rname: name_from_value(need(value, "rname")),
        serial: need_num(value, "serial") as u32,
        refresh: need_num(value, "refresh") as u32,
        retry: need_num(value, "retry") as u32,
        expire: need_num(value, "expire") as u32,
        minimum: need_num(value, "minimum") as u32,
    }
}

fn probe_to_value(p: &DomainProbe) -> Value {
    obj(vec![
        ("domain", name_to_value(&p.domain)),
        ("parent_zone", p.parent_zone.as_ref().map_or(Value::Null, name_to_value)),
        ("parent_addrs", Value::Arr(p.parent_addrs.iter().map(|&a| addr_to_value(a)).collect())),
        (
            "parent_observations",
            Value::Arr(p.parent_observations.iter().map(observation_to_value).collect()),
        ),
        ("parent_ns", Value::Arr(p.parent_ns.iter().map(name_to_value).collect())),
        ("child_ns", Value::Arr(p.child_ns.iter().map(name_to_value).collect())),
        ("servers", Value::Arr(p.servers.iter().map(server_to_value).collect())),
        ("soa", p.soa.as_ref().map_or(Value::Null, soa_to_value)),
        ("queries", Value::Num(u64::from(p.queries))),
        ("elapsed_ms", Value::Num(u64::from(p.elapsed_ms))),
        ("rounds", Value::Num(u64::from(p.rounds))),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn probe_from_value(value: &Value) -> DomainProbe {
    let opt = |key: &str| match need(value, key) {
        Value::Null => None,
        v => Some(v),
    };
    DomainProbe {
        domain: name_from_value(need(value, "domain")),
        parent_zone: opt("parent_zone").map(name_from_value),
        parent_addrs: need_arr(value, "parent_addrs").iter().map(addr_from_value).collect(),
        parent_observations: need_arr(value, "parent_observations")
            .iter()
            .map(observation_from_value)
            .collect(),
        parent_ns: need_arr(value, "parent_ns").iter().map(name_from_value).collect(),
        child_ns: need_arr(value, "child_ns").iter().map(name_from_value).collect(),
        servers: need_arr(value, "servers").iter().map(server_from_value).collect(),
        soa: opt("soa").map(soa_from_value),
        queries: need_num(value, "queries") as u32,
        elapsed_ms: need_num(value, "elapsed_ms") as u32,
        rounds: need_num(value, "rounds") as u8,
    }
}

fn record_data_to_value(data: &RecordData) -> Value {
    match data {
        RecordData::A(a) => obj(vec![("t", Value::str("a")), ("v", Value::Str(a.to_string()))]),
        RecordData::Ns(n) => obj(vec![("t", Value::str("ns")), ("v", name_to_value(n))]),
        RecordData::Cname(n) => obj(vec![("t", Value::str("cname")), ("v", name_to_value(n))]),
        RecordData::Soa(s) => obj(vec![("t", Value::str("soa")), ("v", soa_to_value(s))]),
        RecordData::Ptr(n) => obj(vec![("t", Value::str("ptr")), ("v", name_to_value(n))]),
        RecordData::Txt(t) => obj(vec![("t", Value::str("txt")), ("v", Value::Str(t.clone()))]),
        RecordData::Aaaa(a) => {
            obj(vec![("t", Value::str("aaaa")), ("v", Value::Str(a.to_string()))])
        }
    }
}

fn record_data_from_value(value: &Value) -> RecordData {
    let v = need(value, "v");
    match need_str(value, "t") {
        "a" => RecordData::A(addr_from_value(v)),
        "ns" => RecordData::Ns(name_from_value(v)),
        "cname" => RecordData::Cname(name_from_value(v)),
        "soa" => RecordData::Soa(soa_from_value(v)),
        "ptr" => RecordData::Ptr(name_from_value(v)),
        "txt" => RecordData::Txt(v.as_str().expect("journal: txt payload").to_string()),
        "aaaa" => RecordData::Aaaa(
            v.as_str().and_then(|s| s.parse().ok()).expect("journal: bad AAAA payload"),
        ),
        t => panic!("journal: unknown record data tag {t:?}"),
    }
}

fn resource_record_to_value(rr: &ResourceRecord) -> Value {
    obj(vec![
        ("name", name_to_value(&rr.name)),
        ("ttl", Value::Num(u64::from(rr.ttl))),
        ("data", record_data_to_value(&rr.data)),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn resource_record_from_value(value: &Value) -> ResourceRecord {
    ResourceRecord {
        name: name_from_value(need(value, "name")),
        ttl: need_num(value, "ttl") as u32,
        data: record_data_from_value(need(value, "data")),
    }
}

fn limiter_to_value(state: &LimiterState) -> Value {
    obj(vec![
        ("issued", Value::Num(state.issued)),
        ("per_round", Value::Arr(state.per_round.iter().map(|&n| Value::Num(n)).collect())),
        ("per_destination", addr_counts_to_value(&state.per_destination)),
        ("per_destination_retries", addr_counts_to_value(&state.per_destination_retries)),
    ])
}

fn limiter_from_value(value: &Value) -> LimiterState {
    let rounds = need_arr(value, "per_round");
    assert_eq!(rounds.len(), 5, "journal: per_round must have 5 slots");
    let mut per_round = [0u64; 5];
    for (slot, v) in per_round.iter_mut().zip(rounds) {
        *slot = v.as_num().expect("journal: per_round entry");
    }
    LimiterState {
        issued: need_num(value, "issued"),
        per_round,
        per_destination: addr_counts_from_value(need(value, "per_destination")),
        per_destination_retries: addr_counts_from_value(need(value, "per_destination_retries")),
    }
}

fn breaker_to_value(s: &BreakerSnapshot) -> Value {
    obj(vec![
        ("addr", addr_to_value(s.addr)),
        ("phase", Value::str(s.phase.as_str())),
        ("consecutive_failures", Value::Num(u64::from(s.consecutive_failures))),
        ("opened_rank", Value::Num(u64::from(s.opened_rank))),
        ("trips", Value::Num(s.trips)),
        ("denied", Value::Num(s.denied)),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn breaker_from_value(value: &Value) -> BreakerSnapshot {
    let phase = need_str(value, "phase");
    BreakerSnapshot {
        addr: addr_from_value(need(value, "addr")),
        phase: BreakerPhase::parse(phase)
            .unwrap_or_else(|| panic!("journal: unknown breaker phase {phase:?}")),
        consecutive_failures: need_num(value, "consecutive_failures") as u32,
        opened_rank: need_num(value, "opened_rank") as u32,
        trips: need_num(value, "trips"),
        denied: need_num(value, "denied"),
    }
}

fn checkpoint_to_value(cp: &Checkpoint) -> Value {
    obj(vec![
        ("kind", Value::str("checkpoint")),
        ("probes_done", Value::Num(cp.probes_done)),
        ("limiter", limiter_to_value(&cp.limiter)),
        (
            "traffic",
            obj(vec![
                ("queries_sent", Value::Num(cp.traffic.queries_sent)),
                ("responses_received", Value::Num(cp.traffic.responses_received)),
                ("timeouts", Value::Num(cp.traffic.timeouts)),
                ("bytes_sent", Value::Num(cp.traffic.bytes_sent)),
                ("bytes_received", Value::Num(cp.traffic.bytes_received)),
                ("total_wait_ms", Value::Num(cp.traffic.total_wait_ms)),
            ]),
        ),
        (
            "faults",
            obj(vec![
                ("flap_timeouts", Value::Num(cp.faults.flap_timeouts)),
                ("losses", Value::Num(cp.faults.losses)),
                ("refused", Value::Num(cp.faults.refused)),
                ("truncated", Value::Num(cp.faults.truncated)),
                ("delayed", Value::Num(cp.faults.delayed)),
                ("outages", Value::Num(cp.faults.outages)),
            ]),
        ),
        ("net_per_destination", addr_counts_to_value(&cp.net_per_destination)),
        (
            "cache",
            Value::Arr(
                cp.cache
                    .iter()
                    .map(|((name, rtype), entry)| {
                        Value::Arr(vec![
                            name_to_value(name),
                            Value::Num(u64::from(rtype.code())),
                            Value::Arr(
                                entry.records.iter().map(resource_record_to_value).collect(),
                            ),
                            Value::Num(entry.expires_at_s),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("clock_s", Value::Num(cp.clock_s)),
        ("breakers", Value::Arr(cp.breakers.iter().map(breaker_to_value).collect())),
    ])
}

#[allow(clippy::cast_possible_truncation)]
fn checkpoint_from_value(value: &Value) -> Checkpoint {
    let traffic = need(value, "traffic");
    let faults = need(value, "faults");
    Checkpoint {
        probes_done: need_num(value, "probes_done"),
        limiter: limiter_from_value(need(value, "limiter")),
        traffic: TrafficStats {
            queries_sent: need_num(traffic, "queries_sent"),
            responses_received: need_num(traffic, "responses_received"),
            timeouts: need_num(traffic, "timeouts"),
            bytes_sent: need_num(traffic, "bytes_sent"),
            bytes_received: need_num(traffic, "bytes_received"),
            total_wait_ms: need_num(traffic, "total_wait_ms"),
        },
        faults: FaultStats {
            flap_timeouts: need_num(faults, "flap_timeouts"),
            losses: need_num(faults, "losses"),
            refused: need_num(faults, "refused"),
            truncated: need_num(faults, "truncated"),
            delayed: need_num(faults, "delayed"),
            outages: need_num(faults, "outages"),
        },
        net_per_destination: addr_counts_from_value(need(value, "net_per_destination")),
        cache: need_arr(value, "cache")
            .iter()
            .map(|entry| {
                let entry = entry.as_arr().expect("journal: cache entry is not a tuple");
                let code = entry[1].as_num().expect("journal: cache record type") as u16;
                let rtype = RecordType::from_code(code)
                    .unwrap_or_else(|| panic!("journal: unknown record type code {code}"));
                let records: Vec<ResourceRecord> = entry[2]
                    .as_arr()
                    .expect("journal: cache records")
                    .iter()
                    .map(resource_record_from_value)
                    .collect();
                // Current journals append the expiry as a fourth
                // element; pre-expiry journals wrote triples, whose
                // entries were captured at virtual time zero — their
                // expiry is recomputed from the records' smallest TTL
                // (the formula the resolver applied at insert time).
                let expires_at_s = match entry.get(3) {
                    Some(v) => v.as_num().expect("journal: cache entry expiry"),
                    None => u64::from(
                        records.iter().map(|r| r.ttl).min().unwrap_or(LEGACY_NEGATIVE_TTL_S),
                    ),
                };
                ((name_from_value(&entry[0]), rtype), CacheEntry { expires_at_s, records })
            })
            .collect(),
        clock_s: value.get("clock_s").and_then(Value::as_num).unwrap_or(0),
        breakers: need_arr(value, "breakers").iter().map(breaker_from_value).collect(),
    }
}

/// The negative-caching TTL the resolver assigns an empty (NODATA)
/// answer when the reply carries no SOA — used to reconstruct expiry
/// for legacy (pre-expiry) journal cache entries with no records.
const LEGACY_NEGATIVE_TTL_S: u32 = 3600;

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn sample_probe(idx: u8) -> DomainProbe {
        DomainProbe {
            domain: n(&format!("gov{idx}.zz")),
            parent_zone: Some(n("zz")),
            parent_addrs: vec![Ipv4Addr::new(10, 0, 0, idx)],
            parent_observations: vec![ServerObservation {
                addr: Ipv4Addr::new(10, 0, 0, idx),
                class: ResponseClass::Referral {
                    cut: n(&format!("gov{idx}.zz")),
                    targets: vec![n("ns1.gov.zz")],
                    glue: vec![(n("ns1.gov.zz"), Ipv4Addr::new(10, 1, 0, 1))],
                },
                attempts: 1,
            }],
            parent_ns: vec![n("ns1.gov.zz")],
            child_ns: vec![n("ns1.gov.zz")],
            servers: vec![ServerProbe {
                host: n("ns1.gov.zz"),
                in_parent: true,
                in_child: true,
                addrs: vec![Ipv4Addr::new(10, 1, 0, 1)],
                observations: vec![
                    ServerObservation {
                        addr: Ipv4Addr::new(10, 1, 0, 1),
                        class: ResponseClass::Authoritative(vec![n("ns1.gov.zz")]),
                        attempts: 2,
                    },
                    ServerObservation {
                        addr: Ipv4Addr::new(10, 1, 0, 2),
                        class: ResponseClass::Skipped,
                        attempts: 0,
                    },
                ],
                recovered_in_round2: idx % 2 == 0,
            }],
            soa: Some(Soa {
                mname: n("ns1.gov.zz"),
                rname: n("hostmaster.gov.zz"),
                serial: 77,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 3600,
            }),
            queries: 12,
            elapsed_ms: 340,
            rounds: 2,
        }
    }

    fn sample_checkpoint(done: u64) -> Checkpoint {
        Checkpoint {
            probes_done: done,
            limiter: LimiterState {
                issued: 42,
                per_round: [30, 4, 2, 5, 1],
                per_destination: vec![(Ipv4Addr::new(10, 1, 0, 1), 9)],
                per_destination_retries: vec![(Ipv4Addr::new(10, 1, 0, 1), 2)],
            },
            traffic: TrafficStats {
                queries_sent: 42,
                responses_received: 40,
                timeouts: 2,
                bytes_sent: 2000,
                bytes_received: 4000,
                total_wait_ms: 900,
            },
            faults: FaultStats {
                flap_timeouts: 1,
                losses: 0,
                refused: 2,
                truncated: 0,
                delayed: 3,
                outages: 4,
            },
            net_per_destination: vec![(Ipv4Addr::new(10, 0, 0, 1), 11)],
            cache: vec![(
                (n("ns1.gov.zz"), RecordType::A),
                CacheEntry {
                    expires_at_s: 3600,
                    records: vec![ResourceRecord::new(
                        n("ns1.gov.zz"),
                        3600,
                        RecordData::A(Ipv4Addr::new(10, 1, 0, 1)),
                    )],
                },
            )],
            clock_s: 120,
            breakers: vec![BreakerSnapshot {
                addr: Ipv4Addr::new(10, 1, 0, 2),
                phase: BreakerPhase::Open,
                consecutive_failures: 3,
                opened_rank: 1,
                trips: 1,
                denied: 4,
            }],
        }
    }

    fn header() -> JournalHeader {
        JournalHeader {
            names_fingerprint: 0xdead_beef,
            domains: 2,
            config_echo: "qps=200 cap=none".to_string(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("govdns-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    #[test]
    fn probe_records_round_trip_with_full_fidelity() {
        let path = tmp("roundtrip");
        let mut w = JournalWriter::create(&path, &header());
        w.probe(0, &sample_probe(0));
        w.probe(1, &sample_probe(1));
        w.checkpoint(&sample_checkpoint(2));
        w.complete(2);
        assert_eq!(w.records(), 5, "header + 2 probes + checkpoint + complete");
        drop(w);

        let replay = JournalReplay::load(&path);
        assert_eq!(replay.header, header());
        assert_eq!(replay.probes, vec![sample_probe(0), sample_probe(1)]);
        assert_eq!(replay.checkpoint, Some(sample_checkpoint(2)));
        assert_eq!(replay.records, 5);
        assert_eq!(replay.dropped_bytes, 0);
        assert!(replay.completed);
        assert_eq!(replay.resumes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_earlier_records_survive() {
        let path = tmp("torn");
        let mut w = JournalWriter::create(&path, &header());
        w.probe(0, &sample_probe(0));
        w.checkpoint(&sample_checkpoint(1));
        w.probe(1, &sample_probe(1));
        drop(w);

        // Chop the last record mid-payload: the crash case.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 37]).unwrap();
        let replay = JournalReplay::load(&path);
        assert_eq!(replay.probes, vec![sample_probe(0)]);
        assert_eq!(replay.checkpoint, Some(sample_checkpoint(1)));
        assert!(replay.dropped_bytes > 0);
        assert!(!replay.completed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_the_replay_at_the_damage() {
        let path = tmp("corrupt");
        let mut w = JournalWriter::create(&path, &header());
        w.probe(0, &sample_probe(0));
        // Probe appends are buffered; flush so the on-disk length marks
        // the boundary before the record we are about to damage.
        w.flush();
        let before_flip = std::fs::metadata(&path).unwrap().len() as usize;
        w.probe(1, &sample_probe(1));
        w.checkpoint(&sample_checkpoint(2));
        drop(w);

        // Flip one payload byte of probe record 1: its checksum fails,
        // and everything after it (the checkpoint) is unreachable.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[before_flip + 40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let replay = JournalReplay::load(&path);
        assert_eq!(replay.probes, vec![sample_probe(0)]);
        assert_eq!(replay.checkpoint, None, "the checkpoint sits past the corruption");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn best_checkpoint_never_exceeds_the_contiguous_probe_prefix() {
        let path = tmp("best-checkpoint");
        let mut w = JournalWriter::create(&path, &header());
        w.probe(0, &sample_probe(0));
        w.checkpoint(&sample_checkpoint(1));
        // An out-of-order record (a parallel worker raced ahead) leaves
        // a gap: index 2 without index 1.
        w.probe(2, &sample_probe(2));
        w.checkpoint(&sample_checkpoint(3));
        drop(w);

        let replay = JournalReplay::load(&path);
        assert_eq!(replay.probes.len(), 1, "index 2 is past the gap");
        assert_eq!(replay.checkpoint.unwrap().probes_done, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_encoding_is_byte_stable_across_sharded_exports() {
        use crate::ratelimit::{QueryRound, RateLimiter};

        // Book the same traffic into two limiters in different orders:
        // the sharded ledgers fill in different sequences, but both
        // exports — and therefore the framed checkpoint records built
        // from them — must be byte-identical.
        let dsts: Vec<Ipv4Addr> = (0..60u32).map(|i| Ipv4Addr::from(0x0a01_0000 | i)).collect();
        let forward = RateLimiter::new(100);
        for &d in &dsts {
            forward.acquire_for(QueryRound::Round1, Some(d));
        }
        let backward = RateLimiter::new(100);
        for &d in dsts.iter().rev() {
            backward.acquire_for(QueryRound::Round1, Some(d));
        }
        let encode = |limiter: &RateLimiter| {
            let cp = Checkpoint { limiter: limiter.export_state(), ..sample_checkpoint(3) };
            let mut out = String::new();
            checkpoint_to_value(&cp).encode(&mut out);
            out
        };
        assert_eq!(encode(&forward), encode(&backward));

        // And a restore from the encoded form re-exports identically:
        // the journal round-trip cannot perturb shard placement.
        let cp = Checkpoint { limiter: forward.export_state(), ..sample_checkpoint(3) };
        let mut encoded = String::new();
        checkpoint_to_value(&cp).encode(&mut encoded);
        let decoded = checkpoint_from_value(&parse_json(&encoded).unwrap());
        let restored = RateLimiter::new(100);
        restored.restore_state(&decoded.limiter);
        assert_eq!(restored.export_state(), cp.limiter);
    }

    #[test]
    fn legacy_checkpoints_without_expiry_or_clock_still_decode() {
        // Pre-expiry journals wrote cache entries as triples and had no
        // clock field. Synthesize that shape by stripping the modern
        // encoding and check the decoder reconstructs: clock zero, and
        // expiry = the entry's smallest record TTL (what the resolver
        // would have computed at virtual time zero).
        let modern = checkpoint_to_value(&sample_checkpoint(2));
        let Value::Obj(fields) = modern else { panic!("checkpoint encodes as an object") };
        let legacy = Value::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "clock_s")
                .map(|(k, v)| {
                    if k != "cache" {
                        return (k, v);
                    }
                    let Value::Arr(entries) = v else { panic!("cache encodes as an array") };
                    let triples = entries
                        .into_iter()
                        .map(|e| {
                            let Value::Arr(mut parts) = e else { panic!("cache entry tuple") };
                            parts.truncate(3);
                            Value::Arr(parts)
                        })
                        .collect();
                    (k, Value::Arr(triples))
                })
                .collect(),
        );
        let decoded = checkpoint_from_value(&legacy);
        assert_eq!(decoded.clock_s, 0);
        assert_eq!(decoded.cache.len(), 1);
        assert_eq!(decoded.cache[0].1.expires_at_s, 3600, "min record TTL from time zero");
        assert_eq!(decoded.cache[0].1.records, sample_checkpoint(2).cache[0].1.records);
    }

    #[test]
    fn append_resumed_marker_counts_on_reload() {
        let path = tmp("resumed");
        let mut w = JournalWriter::create(&path, &header());
        w.probe(0, &sample_probe(0));
        drop(w);
        let mut w = JournalWriter::append_to(&path);
        w.resumed(1);
        w.probe(1, &sample_probe(1));
        drop(w);

        let replay = JournalReplay::load(&path);
        assert_eq!(replay.resumes, 1);
        assert_eq!(replay.probes.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_flush_threshold_degrades_to_per_record_flush_with_identical_bytes() {
        let buffered_path = tmp("threshold-buffered");
        let eager_path = tmp("threshold-eager");
        let mut buffered = JournalWriter::create(&buffered_path, &header());
        let mut eager = JournalWriter::create(&eager_path, &header()).with_flush_threshold(0);
        for i in 0..4u8 {
            buffered.probe(u64::from(i), &sample_probe(i));
            eager.probe(u64::from(i), &sample_probe(i));
            // The eager writer is durable after every probe append; the
            // buffered one still holds everything past the header.
            let on_disk = std::fs::metadata(&eager_path).unwrap().len();
            let accepted = std::fs::metadata(&buffered_path).unwrap().len() as usize
                + buffered_pending(&buffered);
            assert_eq!(on_disk as usize, accepted, "eager journal flushes per record");
        }
        assert!(buffered_pending(&buffered) > 0, "default threshold is still buffering");
        buffered.complete(4);
        eager.complete(4);
        drop(buffered);
        drop(eager);

        let a = std::fs::read(&buffered_path).unwrap();
        let b = std::fs::read(&eager_path).unwrap();
        assert_eq!(a, b, "flush cadence must never change journal bytes");
        std::fs::remove_file(&buffered_path).unwrap();
        std::fs::remove_file(&eager_path).unwrap();
    }

    fn buffered_pending(w: &JournalWriter) -> usize {
        w.buf.len()
    }

    #[test]
    fn string_escaping_survives_hostile_txt_payloads() {
        let mut out = String::new();
        encode_string(&mut out, "a\"b\\c\nd\te\u{1}f");
        let parsed = parse_json(&out).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c\nd\te\u{1}f"));
    }
}
