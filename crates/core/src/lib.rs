//! # govdns-core
//!
//! The paper's measurement pipeline — the primary contribution of the
//! reproduction. Given the substrates a real campaign would have (the UN
//! Knowledge Base, a passive-DNS database, the network, an ASN database,
//! and a registrar storefront), it:
//!
//! 1. selects government seed domains ([`seed`]) with every exception
//!    branch of §III-A (unresolvable links, MSQ fallbacks, unverifiable
//!    suffixes, registered-domain portals),
//! 2. expands them into the studied domain list via left-hand wildcard
//!    PDNS searches with the stability and disposable filters
//!    ([`discovery`]),
//! 3. actively probes each domain per Figure 1 — parent walk, referral,
//!    child queries, per-address NS lookups — with a second retry round
//!    ([`ProbeClient`], [`run_campaign`]),
//! 4. runs the §IV analyses: nameserver replication and its decade of
//!    history ([`analysis::replication`]), topological diversity
//!    ([`analysis::diversity`]), third-party provider dependence
//!    ([`analysis::providers`]), defective delegations and hijack risk
//!    ([`analysis::delegation`]), and parent/child consistency
//!    ([`analysis::consistency`]),
//! 5. renders every table and figure of the paper ([`report`]).
//!
//! The pipeline never touches generation ground truth; validation tests
//! compare its outputs against [`World::truth`] from the outside.
//!
//! [`World::truth`]: govdns_world::World::truth

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod campaign;
mod dataset;
pub mod discovery;
pub mod journal;
mod probe;
mod ratelimit;
pub mod report;
mod runner;
pub mod seed;
mod sink;
pub mod stats;
pub mod tables;

pub use campaign::Campaign;
pub use dataset::{Funnel, MeasurementDataset};
pub use journal::{
    Checkpoint, JournalHeader, JournalReplay, JournalSpec, JournalWriter, DEFAULT_FLUSH_THRESHOLD,
};
pub use probe::{
    BreakerAdmission, BreakerBank, BreakerPhase, BreakerPolicy, BreakerSnapshot, BreakerTransition,
    DomainClass, DomainProbe, ProbeClient, ResponseClass, RetryPolicy, ServerObservation,
    ServerProbe,
};
pub use ratelimit::{LimiterState, QueryRound, RateLimiter};
pub use runner::{
    run_campaign, run_campaign_with, CampaignTelemetry, ChaosSpec, RunnerConfig, ScenarioSpec,
};
