//! Seed-domain selection (§III-A): from each country's national-portal
//! link to the `d_gov` (reserved suffix or registered domain) that roots
//! the study of that country.

use serde::{Deserialize, Serialize};

use govdns_model::{DomainName, SimDate};
use govdns_simnet::StubResolver;
use govdns_world::CountryCode;

use crate::Campaign;

/// How a seed domain was justified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedKind {
    /// A suffix documented as reserved for government use (`gov.au`).
    ReservedSuffix,
    /// A registered domain verified through the member-states
    /// questionnaire, Whois-equivalent evidence, or Web Archive history
    /// (`regjeringen.no`, `jis.gov.jm`).
    RegisteredDomain,
}

/// Where the FQDN used for extraction came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeedProvenance {
    /// The Knowledge Base portal link itself.
    PortalLink,
    /// The member-states questionnaire, used because the link was
    /// unresolvable or pointed at a third party.
    MsqFallback,
}

/// One selected seed domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedDomain {
    /// The country.
    pub country: CountryCode,
    /// The `d_gov`.
    pub name: DomainName,
    /// Suffix vs registered domain.
    pub kind: SeedKind,
    /// Earliest confirmed government use (registered-domain seeds only) —
    /// bounds PDNS history in discovery.
    pub earliest_government_use: Option<SimDate>,
    /// How the FQDN was chosen.
    pub provenance: SeedProvenance,
    /// Whether the portal link's FQDN resolved at all.
    pub portal_resolved: bool,
}

/// Selects a seed domain for every Knowledge Base entry, reproducing the
/// paper's decision procedure:
///
/// 1. resolve the portal link; on failure, or when the candidate domain
///    cannot be tied to a government and the questionnaire lists a
///    different domain, fall back to the questionnaire's FQDN;
/// 2. walk the FQDN's ancestors looking for a suffix the ccTLD registry
///    documents as reserved for government use;
/// 3. otherwise fall back to the registered domain (the FQDN minus a
///    leading `www`), verified via questionnaire/Web Archive evidence.
pub fn select_seeds(campaign: &Campaign<'_>) -> Vec<SeedDomain> {
    let resolver = StubResolver::new(campaign.network, campaign.roots.to_vec());
    let mut seeds = Vec::with_capacity(campaign.unkb.len());
    for entry in campaign.unkb.iter() {
        let portal_resolved = resolver.resolve_a(&entry.portal_fqdn).is_ok_and(|a| !a.is_empty());
        let mut fqdn = entry.portal_fqdn.clone();
        let mut provenance = SeedProvenance::PortalLink;

        let msq_differs = entry.msq_fqdn.as_ref().is_some_and(|m| *m != entry.portal_fqdn);
        if !portal_resolved && msq_differs {
            fqdn = entry.msq_fqdn.clone().expect("msq_differs implies presence");
            provenance = SeedProvenance::MsqFallback;
        }

        let mut choice = extract(campaign, &fqdn);
        // A registered domain with no government evidence and a differing
        // questionnaire domain is the squatted-link case: trust the
        // questionnaire instead.
        if let Extraction::Registered { verified: false } = choice {
            if msq_differs && provenance == SeedProvenance::PortalLink {
                fqdn = entry.msq_fqdn.clone().expect("msq_differs implies presence");
                provenance = SeedProvenance::MsqFallback;
                choice = extract(campaign, &fqdn);
            }
        }

        let seed = match choice {
            Extraction::Suffix(suffix) => SeedDomain {
                country: entry.country,
                name: suffix,
                kind: SeedKind::ReservedSuffix,
                earliest_government_use: None,
                provenance,
                portal_resolved,
            },
            Extraction::Registered { .. } => {
                // The registered domain is whichever ancestor the Web
                // Archive ties to a government (the paper's Whois/archive
                // verification); failing that, the FQDN minus its host
                // label.
                let registered = fqdn
                    .ancestors()
                    .filter(|a| a.level() >= 2)
                    .find(|a| campaign.webarchive.earliest_exact(a).is_some())
                    .unwrap_or_else(|| registered_domain_of(&fqdn));
                let earliest = campaign.webarchive.earliest_government_use(&registered);
                SeedDomain {
                    country: entry.country,
                    name: registered,
                    kind: SeedKind::RegisteredDomain,
                    earliest_government_use: earliest,
                    provenance,
                    portal_resolved,
                }
            }
        };
        seeds.push(seed);
    }
    seeds
}

enum Extraction {
    Suffix(DomainName),
    Registered {
        /// Whether independent evidence ties the domain to a government.
        verified: bool,
    },
}

/// Walks the FQDN's ancestors (deepest first, stopping above the TLD)
/// looking for a documented government suffix.
fn extract(campaign: &Campaign<'_>, fqdn: &DomainName) -> Extraction {
    for anc in fqdn.ancestors() {
        if anc.level() < 2 {
            break;
        }
        if campaign.registry_docs.suffix_reserved_for_government(&anc) == Some(true) {
            return Extraction::Suffix(anc);
        }
    }
    let registered = registered_domain_of(fqdn);
    let verified = campaign.webarchive.earliest_government_use(&registered).is_some();
    Extraction::Registered { verified }
}

/// The registered domain behind a portal FQDN: the name minus a leading
/// `www` (or other single host label when the name is deep enough).
fn registered_domain_of(fqdn: &DomainName) -> DomainName {
    let labels = fqdn.labels();
    if labels.len() > 2 && (labels[0].as_str() == "www" || labels.len() > 3) {
        fqdn.suffix(fqdn.level() - 1)
    } else {
        fqdn.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use govdns_model::RecordType;
    use govdns_pdns::PdnsDb;
    use govdns_simnet::{AsnDb, AuthoritativeServer, ServerBehavior, SimNetwork};
    use govdns_world::{
        countries, PortalEntry, Registrar, RegistryDocs, UnKnowledgeBase, WebArchive,
    };
    use std::net::Ipv4Addr;

    struct Fixture {
        unkb: UnKnowledgeBase,
        docs: RegistryDocs,
        webarchive: WebArchive,
        network: SimNetwork,
        roots: Vec<Ipv4Addr>,
        pdns: PdnsDb,
        asn_db: AsnDb,
        registrar: Registrar,
        countries: Vec<govdns_world::Country>,
    }

    impl Fixture {
        fn campaign(&self) -> Campaign<'_> {
            Campaign {
                unkb: &self.unkb,
                registry_docs: &self.docs,
                webarchive: &self.webarchive,
                pdns: &self.pdns,
                network: &self.network,
                roots: &self.roots,
                asn_db: &self.asn_db,
                registrar: &self.registrar,
                matchers: &[],
                countries: &self.countries,
                collection_date: govdns_model::SimDate::from_ymd(2021, 4, 15),
            }
        }
    }

    fn n(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    /// A root zone that authoritatively hosts A records for a handful of
    /// portal FQDNs (one server does everything — enough for seed logic).
    fn fixture(resolvable: &[&str]) -> Fixture {
        let root_ip = Ipv4Addr::new(10, 0, 0, 1);
        let mut zone = govdns_model::Zone::new(DomainName::root());
        zone.add_ns(DomainName::root(), n("ns1.rootns.net"));
        zone.add_a(n("ns1.rootns.net"), root_ip);
        for f in resolvable {
            zone.add_a(n(f), Ipv4Addr::new(10, 9, 9, 9));
        }
        let mut network = SimNetwork::new(1);
        network.add_server(
            AuthoritativeServer::new(root_ip, ServerBehavior::Responsive).with_zone(zone),
        );
        Fixture {
            unkb: UnKnowledgeBase::new(),
            docs: RegistryDocs::new(),
            webarchive: WebArchive::new(),
            network,
            roots: vec![root_ip],
            pdns: PdnsDb::new(),
            asn_db: AsnDb::new(),
            registrar: Registrar::new(),
            countries: countries(),
        }
    }

    #[test]
    fn documented_suffix_wins() {
        let mut f = fixture(&["www.australia.gov.au"]);
        f.docs.document(n("gov.au"), true);
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("au"),
            portal_fqdn: n("www.australia.gov.au"),
            msq_fqdn: None,
        });
        let seeds = select_seeds(&f.campaign());
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0].name, n("gov.au"));
        assert_eq!(seeds[0].kind, SeedKind::ReservedSuffix);
        assert!(seeds[0].portal_resolved);
    }

    #[test]
    fn undocumented_suffix_falls_back_to_registered_domain() {
        let mut f = fixture(&["www.jis.gov.jm"]);
        f.webarchive.record(n("jis.gov.jm"), govdns_model::SimDate::from_ymd(2004, 1, 1));
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("jm"),
            portal_fqdn: n("www.jis.gov.jm"),
            msq_fqdn: None,
        });
        let seeds = select_seeds(&f.campaign());
        assert_eq!(seeds[0].name, n("jis.gov.jm"));
        assert_eq!(seeds[0].kind, SeedKind::RegisteredDomain);
        assert!(seeds[0].earliest_government_use.is_some());
    }

    #[test]
    fn norway_style_registered_domain() {
        let mut f = fixture(&["www.regjeringen.no"]);
        f.webarchive.record(n("regjeringen.no"), govdns_model::SimDate::from_ymd(2004, 5, 1));
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("no"),
            portal_fqdn: n("www.regjeringen.no"),
            msq_fqdn: Some(n("www.regjeringen.no")),
        });
        let seeds = select_seeds(&f.campaign());
        assert_eq!(seeds[0].name, n("regjeringen.no"));
        assert_eq!(seeds[0].kind, SeedKind::RegisteredDomain);
    }

    #[test]
    fn unresolvable_link_uses_msq_when_it_differs() {
        let mut f = fixture(&["www.gov.zz"]);
        f.docs.document(n("gov.zz"), true);
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("zz"),
            portal_fqdn: n("broken.portal.zz"),
            msq_fqdn: Some(n("www.gov.zz")),
        });
        let seeds = select_seeds(&f.campaign());
        assert!(!seeds[0].portal_resolved);
        assert_eq!(seeds[0].provenance, SeedProvenance::MsqFallback);
        assert_eq!(seeds[0].name, n("gov.zz"));
    }

    #[test]
    fn squatted_link_is_overridden_by_msq() {
        // The portal resolves, but to a third-party .com with no
        // government evidence; the questionnaire points at the real one.
        let mut f = fixture(&["zz-gov.com", "www.gov.zz"]);
        f.docs.document(n("gov.zz"), true);
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("zz"),
            portal_fqdn: n("zz-gov.com"),
            msq_fqdn: Some(n("www.gov.zz")),
        });
        let seeds = select_seeds(&f.campaign());
        assert_eq!(seeds[0].provenance, SeedProvenance::MsqFallback);
        assert_eq!(seeds[0].name, n("gov.zz"));
        assert_eq!(seeds[0].kind, SeedKind::ReservedSuffix);
    }

    #[test]
    fn unresolvable_without_msq_still_extracts() {
        let mut f = fixture(&[]);
        f.docs.document(n("gov.zz"), true);
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("zz"),
            portal_fqdn: n("old-portal.gov.zz"),
            msq_fqdn: None,
        });
        let seeds = select_seeds(&f.campaign());
        assert_eq!(seeds[0].name, n("gov.zz"));
        assert!(!seeds[0].portal_resolved);
        assert_eq!(seeds[0].provenance, SeedProvenance::PortalLink);
    }

    #[test]
    fn registered_domain_strips_www_only() {
        assert_eq!(registered_domain_of(&n("www.regjeringen.no")), n("regjeringen.no"));
        assert_eq!(registered_domain_of(&n("regjeringen.no")), n("regjeringen.no"));
        assert_eq!(registered_domain_of(&n("www.jis.gov.jm")), n("jis.gov.jm"));
        assert_eq!(registered_domain_of(&n("zz-gov.com")), n("zz-gov.com"));
    }

    #[test]
    fn resolver_actually_consults_the_network() {
        let mut f = fixture(&["www.gov.aa"]);
        f.docs.document(n("gov.aa"), true);
        f.unkb.insert(PortalEntry {
            country: CountryCode::new("aa"),
            portal_fqdn: n("www.gov.aa"),
            msq_fqdn: None,
        });
        let seeds = select_seeds(&f.campaign());
        assert!(seeds[0].portal_resolved);
        let _ = RecordType::A;
    }
}
