//! §IV-A — nameserver replication: the decade of PDNS history (Figs 2,
//! 3, 4, 6, 7) and the active-measurement view (Figs 8, 9).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, Year};
use govdns_world::CountryCode;

use crate::analysis::longitudinal::{DomainHistory, Longitudinal};
use crate::stats::{self, Cdf};
use crate::tables::{fmt_pct, TextTable};
use crate::MeasurementDataset;

/// Fig 2 + Fig 3: yearly PDNS totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct YearlyTotals {
    /// Per year: `(domains, countries, nameserver hostnames)`.
    pub rows: Vec<(Year, usize, usize, usize)>,
}

impl YearlyTotals {
    /// Computes the yearly totals over the *raw* PDNS data, as the paper
    /// presents Figs 2–3 (§III-B summarizes the data before the §III-C
    /// stability filtering; the 192.6k figure includes transient
    /// records).
    pub fn compute_raw(campaign: &crate::Campaign<'_>, seeds: &[crate::seed::SeedDomain]) -> Self {
        let rows = Longitudinal::years()
            .map(|year| {
                let window = DateRange::year(year);
                let mut domains: BTreeSet<DomainName> = BTreeSet::new();
                let mut countries: BTreeSet<CountryCode> = BTreeSet::new();
                let mut hostnames: BTreeSet<DomainName> = BTreeSet::new();
                for seed in seeds {
                    for e in campaign.pdns.search_subtree_in(
                        &seed.name,
                        window,
                        Some(govdns_model::RecordType::Ns),
                    ) {
                        if let Some(host) = e.rdata.as_ns() {
                            hostnames.insert(host.clone());
                        }
                        domains.insert(e.name);
                        countries.insert(seed.country);
                    }
                }
                (year, domains.len(), countries.len(), hostnames.len())
            })
            .collect();
        YearlyTotals { rows }
    }

    /// Computes the yearly totals over the stability-filtered
    /// longitudinal index (the population the analyses run on).
    pub fn compute(lon: &Longitudinal) -> Self {
        let rows = Longitudinal::years()
            .map(|year| {
                let window = DateRange::year(year);
                let mut domains = 0usize;
                let mut countries: BTreeSet<CountryCode> = BTreeSet::new();
                let mut hostnames: BTreeSet<&DomainName> = BTreeSet::new();
                for h in lon.active_in_year(year) {
                    domains += 1;
                    countries.insert(h.country);
                    for host in h.ns_hosts_in(&window) {
                        hostnames.insert(host);
                    }
                }
                (year, domains, countries.len(), hostnames.len())
            })
            .collect();
        YearlyTotals { rows }
    }

    /// Domain count for a year.
    pub fn domains(&self, year: Year) -> usize {
        self.rows.iter().find(|r| r.0 == year).map_or(0, |r| r.1)
    }

    /// Nameserver-hostname count for a year.
    pub fn nameservers(&self, year: Year) -> usize {
        self.rows.iter().find(|r| r.0 == year).map_or(0, |r| r.3)
    }

    /// Renders Figs 2–3 as one table.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["year", "domains", "countries", "nameservers"]);
        for &(y, d, c, ns) in &self.rows {
            t.push_row([y.to_string(), d.to_string(), c.to_string(), ns.to_string()]);
        }
        t
    }
}

/// Fig 4: domains per country in the 2020 PDNS data.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainsPerCountry {
    /// `(country, domains)` sorted descending.
    pub rows: Vec<(CountryCode, usize)>,
}

impl DomainsPerCountry {
    /// Computes Fig 4 for `year`.
    pub fn compute(lon: &Longitudinal, year: Year) -> Self {
        let mut map: BTreeMap<CountryCode, usize> = BTreeMap::new();
        for h in lon.active_in_year(year) {
            *map.entry(h.country).or_insert(0) += 1;
        }
        let mut rows: Vec<(CountryCode, usize)> = map.into_iter().collect();
        rows.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        DomainsPerCountry { rows }
    }

    /// Renders the distribution.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["country", "domains"]);
        for (c, n) in &self.rows {
            t.push_row([c.to_string(), n.to_string()]);
        }
        t
    }
}

/// The per-year single-nameserver cohort and its churn (Fig 6).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SingleNsChurn {
    /// Per year: the count of `d_1NS` domains.
    pub d1ns_per_year: Vec<(Year, usize)>,
    /// Per year in 2012–2020: `(year, pct_new, pct_from_2011,
    /// pct_2011_cohort_gone)`.
    pub churn: Vec<(Year, f64, f64, f64)>,
}

impl SingleNsChurn {
    /// Identifies `d_1NS` cohorts per year and their overlap with the
    /// 2011 cohort.
    pub fn compute(lon: &Longitudinal) -> Self {
        let cohorts: Vec<(Year, BTreeSet<&DomainName>)> = Longitudinal::years()
            .map(|year| {
                let set: BTreeSet<&DomainName> = lon
                    .active_in_year(year)
                    .filter(|h| h.ns_mode(year) == Some(1))
                    .map(|h| &h.name)
                    .collect();
                (year, set)
            })
            .collect();
        let d1ns_per_year: Vec<(Year, usize)> =
            cohorts.iter().map(|(y, s)| (*y, s.len())).collect();
        let base = &cohorts[0].1;
        let mut churn = Vec::new();
        for w in cohorts.windows(2) {
            let (_, prev) = &w[0];
            let (year, cur) = &w[1];
            let new = cur.difference(prev).count();
            let from_2011 = cur.intersection(base).count();
            let active_names: BTreeSet<&DomainName> =
                lon.active_in_year(*year).map(|h| &h.name).collect();
            let gone_2011 = base.iter().filter(|n| !active_names.contains(*n)).count();
            churn.push((
                *year,
                stats::pct(new, cur.len()),
                stats::pct(from_2011, cur.len()),
                stats::pct(gone_2011, base.len()),
            ));
        }
        SingleNsChurn { d1ns_per_year, churn }
    }

    /// Renders Fig 6.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new([
            "year",
            "d1ns",
            "% new vs prev year",
            "% from 2011 cohort",
            "% of 2011 cohort gone",
        ]);
        for &(y, count) in &self.d1ns_per_year {
            let (pn, p11, g11) = self
                .churn
                .iter()
                .find(|c| c.0 == y)
                .map(|c| (fmt_pct(c.1), fmt_pct(c.2), fmt_pct(c.3)))
                .unwrap_or_else(|| ("-".into(), "-".into(), "-".into()));
            t.push_row([y.to_string(), count.to_string(), pn, p11, g11]);
        }
        t
    }
}

/// Fig 7: private-deployment share, `d_1NS` vs all domains, per year.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PrivateShare {
    /// Per year: `(year, d1ns_private_pct, all_private_pct)`.
    pub rows: Vec<(Year, f64, f64)>,
}

impl PrivateShare {
    /// Computes Fig 7.
    pub fn compute(lon: &Longitudinal) -> Self {
        let rows = Longitudinal::years()
            .map(|year| {
                let window = DateRange::year(year);
                let mut all = 0usize;
                let mut all_private = 0usize;
                let mut d1 = 0usize;
                let mut d1_private = 0usize;
                for h in lon.active_in_year(year) {
                    all += 1;
                    let private = h.private_in(&window);
                    if private {
                        all_private += 1;
                    }
                    if h.ns_mode(year) == Some(1) {
                        d1 += 1;
                        if private {
                            d1_private += 1;
                        }
                    }
                }
                (year, stats::pct(d1_private, d1), stats::pct(all_private, all))
            })
            .collect();
        PrivateShare { rows }
    }

    /// Renders Fig 7.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["year", "d1ns private", "all domains private"]);
        for &(y, d1, all) in &self.rows {
            t.push_row([y.to_string(), fmt_pct(d1), fmt_pct(all)]);
        }
        t
    }
}

/// The active-measurement replication view (Figs 8 and 9 plus the §IV-A
/// headline shares).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ActiveReplication {
    /// CDF of the number of nameservers (`|P ∪ C|`) per responsive
    /// domain (Fig 9).
    pub ns_count_cdf: Cdf,
    /// Share of responsive domains with ≥ 2 nameservers.
    pub multi_ns_share: f64,
    /// Responsive single-NS domains.
    pub d1ns_total: usize,
    /// Of those, the share with no authoritative response (Fig 8's
    /// 60.1% headline).
    pub d1ns_stale_share: f64,
    /// Per `d_gov`: `(seed, d1ns, d1ns without any authoritative
    /// response)` for seeds with at least one `d_1NS` (Fig 8).
    pub d1ns_stale_by_seed: Vec<(DomainName, usize, usize)>,
    /// Countries where ≥ 10% of responsive domains are single-NS.
    pub high_d1ns_countries: Vec<(CountryCode, usize, usize)>,
    /// Countries where no responsive domain has fewer than 2 NS.
    pub all_replicated_countries: usize,
    /// Responsive domains that answered only degradedly (backoff retries
    /// or a second round) — the replication picture for these is shakier
    /// than the NS counts alone suggest.
    pub degraded_total: usize,
    /// Of the degraded domains, how many are single-NS: flakiness with
    /// no replica to absorb it.
    pub degraded_d1ns: usize,
}

impl ActiveReplication {
    /// Computes the active view over responsive (non-empty-parent)
    /// domains.
    pub fn compute(ds: &MeasurementDataset) -> Self {
        let mut counts: Vec<f64> = Vec::new();
        let mut d1ns_total = 0usize;
        let mut d1ns_stale = 0usize;
        let mut by_seed: BTreeMap<DomainName, (usize, usize)> = BTreeMap::new();
        let mut per_country: BTreeMap<CountryCode, (usize, usize)> = BTreeMap::new();
        let mut degraded_total = 0usize;
        let mut degraded_d1ns = 0usize;

        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            let n = probe.ns_union().len();
            counts.push(n as f64);
            if probe.degraded() {
                degraded_total += 1;
                if n == 1 {
                    degraded_d1ns += 1;
                }
            }
            let country = ds.country_of(i);
            let slot = per_country.entry(country).or_insert((0, 0));
            slot.0 += 1;
            if n == 1 {
                slot.1 += 1;
                d1ns_total += 1;
                let seed = ds.seed_of(i).clone();
                let s = by_seed.entry(seed).or_insert((0, 0));
                s.0 += 1;
                if !probe.has_authoritative_answer() {
                    d1ns_stale += 1;
                    s.1 += 1;
                }
            }
        }

        let multi = counts.iter().filter(|&&c| c >= 2.0).count();
        let multi_ns_share = stats::pct(multi, counts.len());
        let mut d1ns_stale_by_seed: Vec<(DomainName, usize, usize)> =
            by_seed.into_iter().map(|(s, (a, b))| (s, a, b)).collect();
        d1ns_stale_by_seed.sort_by_key(|&(_, a, _)| std::cmp::Reverse(a));
        let high_d1ns_countries: Vec<(CountryCode, usize, usize)> = per_country
            .iter()
            .filter(|(_, &(total, d1))| total > 0 && d1 * 10 >= total && d1 > 0)
            .map(|(&c, &(total, d1))| (c, total, d1))
            .collect();
        let all_replicated_countries =
            per_country.values().filter(|&&(total, d1)| total > 0 && d1 == 0).count();

        ActiveReplication {
            ns_count_cdf: Cdf::new(counts),
            multi_ns_share,
            d1ns_total,
            d1ns_stale_share: stats::pct(d1ns_stale, d1ns_total),
            d1ns_stale_by_seed,
            high_d1ns_countries,
            all_replicated_countries,
            degraded_total,
            degraded_d1ns,
        }
    }

    /// Renders Fig 9 as cumulative shares at 1..=6 nameservers.
    pub fn cdf_table(&self) -> TextTable {
        let mut t = TextTable::new(["nameservers <=", "share of domains"]);
        for k in 1..=6 {
            t.push_row([k.to_string(), fmt_pct(100.0 * self.ns_count_cdf.at(k as f64))]);
        }
        t
    }

    /// Renders Fig 8 (top 15 seeds by `d_1NS` count).
    pub fn stale_table(&self) -> TextTable {
        let mut t = TextTable::new(["d_gov", "d1ns", "no auth response", "share"]);
        for (seed, total, stale) in self.d1ns_stale_by_seed.iter().take(15) {
            t.push_row([
                seed.to_string(),
                total.to_string(),
                stale.to_string(),
                fmt_pct(stats::pct(*stale, *total)),
            ]);
        }
        t
    }
}

/// Keeps `DomainHistory` available to downstream users of this module.
pub type History = DomainHistory;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{
        dataset, history, longitudinal, n, ns_entry, year, ProbeBuilder,
    };

    fn demo_longitudinal() -> Longitudinal {
        longitudinal(vec![
            // Replicated all decade, private.
            history(
                "a.gov.zz",
                "zz",
                vec![
                    ns_entry("a.gov.zz", "ns1.a.gov.zz", (2011, 1, 1), (2020, 12, 31)),
                    ns_entry("a.gov.zz", "ns2.a.gov.zz", (2011, 1, 1), (2020, 12, 31)),
                ],
            ),
            // Single-NS 2011-2015, provider-hosted.
            history(
                "b.gov.zz",
                "zz",
                vec![ns_entry("b.gov.zz", "ns1.prov.example", (2011, 1, 1), (2015, 6, 1))],
            ),
            // Single-NS appearing in 2016 (new cohort member).
            history(
                "c.gov.zz",
                "zz",
                vec![ns_entry("c.gov.zz", "ns9.c.gov.zz", (2016, 2, 1), (2020, 12, 31))],
            ),
            // Another country, replicated, appears 2014.
            history(
                "d.gov.yy",
                "yy",
                vec![
                    ns_entry("d.gov.yy", "ns1.x.example", (2014, 1, 1), (2020, 12, 31)),
                    ns_entry("d.gov.yy", "ns2.x.example", (2014, 1, 1), (2020, 12, 31)),
                ],
            ),
        ])
    }

    #[test]
    fn yearly_totals_count_domains_countries_hosts() {
        let y = YearlyTotals::compute(&demo_longitudinal());
        assert_eq!(y.domains(2011), 2);
        assert_eq!(y.domains(2014), 3);
        assert_eq!(y.domains(2020), 3); // b is gone by 2016
        let (_, _, countries_2014, _) = y.rows[3];
        assert_eq!(countries_2014, 2);
        assert_eq!(y.nameservers(2011), 3);
        assert_eq!(y.nameservers(2020), 5);
        assert!(y.table().to_text().contains("2020"));
    }

    #[test]
    fn domains_per_country_sorts_descending() {
        let d = DomainsPerCountry::compute(&demo_longitudinal(), 2020);
        assert_eq!(d.rows[0].1, 2); // zz: a + c
        assert_eq!(d.rows[1].1, 1); // yy: d
        assert!(d.table().to_csv().contains("zz"));
    }

    #[test]
    fn churn_tracks_cohorts() {
        let c = SingleNsChurn::compute(&demo_longitudinal());
        // 2011 cohort: {b}. 2016 cohort: {c} (b died, c new).
        let d1_2011 = c.d1ns_per_year.iter().find(|r| r.0 == 2011).unwrap().1;
        let d1_2016 = c.d1ns_per_year.iter().find(|r| r.0 == 2016).unwrap().1;
        assert_eq!(d1_2011, 1);
        assert_eq!(d1_2016, 1);
        let (_, pct_new, pct_2011, pct_gone) = *c.churn.iter().find(|r| r.0 == 2016).unwrap();
        assert_eq!(pct_new, 100.0);
        assert_eq!(pct_2011, 0.0);
        assert_eq!(pct_gone, 100.0, "b is inactive by 2016");
        assert!(c.table().to_text().contains("2016"));
    }

    #[test]
    fn private_share_separates_populations() {
        let p = PrivateShare::compute(&demo_longitudinal());
        // 2011: d1NS = {b} (provider) → 0% private; all = {a (private), b}
        // → 50%.
        let (_, d1_2011, all_2011) = p.rows[0];
        assert_eq!(d1_2011, 0.0);
        assert_eq!(all_2011, 50.0);
        // 2016+: d1NS = {c} (own host under gov.zz... c's host is
        // ns9.c.gov.zz, within the seed) → 100% private.
        let (_, d1_2016, _) = p.rows[5];
        assert_eq!(d1_2016, 100.0);
        assert!(p.table().to_text().contains("2016"));
    }

    #[test]
    fn ns_daily_mode_via_history() {
        let h = history(
            "m.gov.zz",
            "zz",
            vec![
                ns_entry("m.gov.zz", "ns1.m.gov.zz", (2015, 1, 1), (2015, 12, 31)),
                ns_entry("m.gov.zz", "ns2.m.gov.zz", (2015, 8, 1), (2015, 12, 31)),
            ],
        );
        // 7 months at 1 NS vs 5 at 2 NS → mode 1.
        assert_eq!(h.ns_mode(2015), Some(1));
        assert_eq!(h.ns_mode(2012), None);
        assert!(h.active_in(&year(2015)));
        assert!(!h.active_in(&year(2012)));
    }

    #[test]
    fn active_replication_counts_and_stale() {
        let ds = dataset(vec![
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [192, 0, 2, 2])
                    .build(),
                "zz",
            ),
            // Live single-NS, but only after retries: degraded.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.b.gov.zz"])
                    .child(&["ns1.b.gov.zz"])
                    .degraded_serving("ns1.b.gov.zz", [192, 0, 2, 3])
                    .build(),
                "zz",
            ),
            // Stale single-NS.
            (
                ProbeBuilder::new("c.gov.zz")
                    .parent(&["ns1.c.gov.zz"])
                    .dead("ns1.c.gov.zz", [192, 0, 2, 4])
                    .build(),
                "zz",
            ),
            // Healthy pair in another country.
            (
                ProbeBuilder::new("d.gov.yy")
                    .parent(&["ns1.y", "ns2.y"])
                    .child(&["ns1.y", "ns2.y"])
                    .serving("ns1.y", [192, 0, 2, 5])
                    .serving("ns2.y", [192, 0, 2, 6])
                    .build(),
                "yy",
            ),
        ]);
        let ar = ActiveReplication::compute(&ds);
        assert_eq!(ar.d1ns_total, 2);
        assert_eq!(ar.d1ns_stale_share, 50.0);
        assert_eq!(ar.multi_ns_share, 50.0);
        assert_eq!(ar.ns_count_cdf.len(), 4);
        // zz has 3 domains of which 2 single → ≥10% list.
        assert_eq!(ar.high_d1ns_countries.len(), 1);
        assert_eq!(ar.high_d1ns_countries[0].0, govdns_world::CountryCode::new("zz"));
        // yy has no single-NS domain.
        assert_eq!(ar.all_replicated_countries, 1);
        // b.gov.zz answered only after retries and has no replica.
        assert_eq!(ar.degraded_total, 1);
        assert_eq!(ar.degraded_d1ns, 1);
        assert!(ar.cdf_table().to_text().contains("share"));
        assert!(ar.stale_table().to_text().contains("gov.zz"));
        let _ = n("x");
    }
}
