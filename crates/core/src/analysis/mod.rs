//! The §IV analyses: each submodule reproduces one subsection of the
//! paper's characterization, producing typed results that the report
//! renders as the corresponding tables and figures.

pub mod concentration;
pub mod consistency;
pub mod delegation;
pub mod diversity;
pub mod longitudinal;
pub mod providers;
pub mod remedies;
pub mod replication;
pub mod smells;

#[cfg(test)]
pub(crate) mod testutil;
