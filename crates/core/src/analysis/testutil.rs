//! Hand-built fixtures for analysis unit tests: probe builders, dataset
//! assembly, and a minimal campaign.

use std::net::Ipv4Addr;

use govdns_model::{DomainName, SimDate};
use govdns_simnet::{AsnDb, SimNetwork};
use govdns_world::{
    countries, Country, CountryCode, ProviderMatcher, Registrar, RegistryDocs, UnKnowledgeBase,
    WebArchive,
};

use crate::discovery::DiscoveredDomain;
use crate::probe::{DomainProbe, ResponseClass, ServerObservation, ServerProbe};
use crate::seed::{SeedDomain, SeedKind, SeedProvenance};
use crate::{Campaign, MeasurementDataset};

pub(crate) fn n(s: &str) -> DomainName {
    s.parse().expect("test names are valid")
}

/// Builder for a [`DomainProbe`].
pub(crate) struct ProbeBuilder {
    probe: DomainProbe,
}

impl ProbeBuilder {
    /// Sets the fetched SOA.
    pub(crate) fn soa(mut self, mname: &str, rname: &str) -> Self {
        self.probe.soa = Some(govdns_model::Soa::new(n(mname), n(rname)));
        self
    }

    pub(crate) fn new(domain: &str) -> Self {
        let domain = n(domain);
        ProbeBuilder {
            probe: DomainProbe {
                parent_zone: domain.parent(),
                domain,
                parent_addrs: vec![Ipv4Addr::new(10, 0, 0, 1)],
                parent_observations: vec![ServerObservation {
                    addr: Ipv4Addr::new(10, 0, 0, 1),
                    class: ResponseClass::Empty(0),
                    attempts: 1,
                }],
                parent_ns: Vec::new(),
                child_ns: Vec::new(),
                servers: Vec::new(),
                soa: None,
                queries: 1,
                elapsed_ms: 1,
                rounds: 1,
            },
        }
    }

    /// Parent-side NS set.
    pub(crate) fn parent(mut self, hosts: &[&str]) -> Self {
        self.probe.parent_ns = hosts.iter().map(|h| n(h)).collect();
        self
    }

    /// Child-side NS set.
    pub(crate) fn child(mut self, hosts: &[&str]) -> Self {
        self.probe.child_ns = hosts.iter().map(|h| n(h)).collect();
        self
    }

    /// Adds a server that answers authoritatively at `addr`.
    pub(crate) fn serving(mut self, host: &str, addr: [u8; 4]) -> Self {
        let host = n(host);
        self.probe.servers.push(ServerProbe {
            in_parent: self.probe.parent_ns.contains(&host),
            in_child: self.probe.child_ns.contains(&host),
            host: host.clone(),
            addrs: vec![Ipv4Addr::from(addr)],
            observations: vec![ServerObservation {
                addr: Ipv4Addr::from(addr),
                class: ResponseClass::Authoritative(
                    self.probe.child_ns.clone().into_iter().collect(),
                ),
                attempts: 1,
            }],
            recovered_in_round2: false,
        });
        self
    }

    /// Adds a server that answers authoritatively, but only after
    /// backoff retries — a *degraded* exchange.
    pub(crate) fn degraded_serving(mut self, host: &str, addr: [u8; 4]) -> Self {
        self = self.serving(host, addr);
        let server = self.probe.servers.last_mut().expect("just pushed");
        server.observations[0].attempts = 3;
        self
    }

    /// Adds a defective server: resolvable but silent.
    pub(crate) fn dead(mut self, host: &str, addr: [u8; 4]) -> Self {
        let host = n(host);
        self.probe.servers.push(ServerProbe {
            in_parent: self.probe.parent_ns.contains(&host),
            in_child: self.probe.child_ns.contains(&host),
            host,
            addrs: vec![Ipv4Addr::from(addr)],
            observations: vec![ServerObservation {
                addr: Ipv4Addr::from(addr),
                class: ResponseClass::Timeout,
                attempts: 1,
            }],
            recovered_in_round2: false,
        });
        self
    }

    /// Adds an unresolvable server.
    pub(crate) fn unresolvable(mut self, host: &str) -> Self {
        let host = n(host);
        self.probe.servers.push(ServerProbe {
            in_parent: self.probe.parent_ns.contains(&host),
            in_child: self.probe.child_ns.contains(&host),
            host,
            addrs: Vec::new(),
            observations: Vec::new(),
            recovered_in_round2: false,
        });
        self
    }

    /// Adds a server whose exchange a circuit breaker denied: the
    /// observation is `Skipped` with zero attempts — nothing was sent.
    pub(crate) fn quarantined(mut self, host: &str, addr: [u8; 4]) -> Self {
        let host = n(host);
        self.probe.servers.push(ServerProbe {
            in_parent: self.probe.parent_ns.contains(&host),
            in_child: self.probe.child_ns.contains(&host),
            host,
            addrs: vec![Ipv4Addr::from(addr)],
            observations: vec![ServerObservation {
                addr: Ipv4Addr::from(addr),
                class: ResponseClass::Skipped,
                attempts: 0,
            }],
            recovered_in_round2: false,
        });
        self
    }

    /// Adds a server that responds but without authority (lame).
    pub(crate) fn lame(mut self, host: &str, addr: [u8; 4]) -> Self {
        let host = n(host);
        self.probe.servers.push(ServerProbe {
            in_parent: self.probe.parent_ns.contains(&host),
            in_child: self.probe.child_ns.contains(&host),
            host,
            addrs: vec![Ipv4Addr::from(addr)],
            observations: vec![ServerObservation {
                addr: Ipv4Addr::from(addr),
                class: ResponseClass::Rejected(5),
                attempts: 1,
            }],
            recovered_in_round2: false,
        });
        self
    }

    /// Marks the parent as silent (no response at all).
    pub(crate) fn parent_silent(mut self) -> Self {
        for o in &mut self.probe.parent_observations {
            o.class = ResponseClass::Timeout;
        }
        self
    }

    pub(crate) fn build(self) -> DomainProbe {
        self.probe
    }
}

/// A dataset over `(probe, country-code)` pairs, with one suffix seed per
/// country mentioned.
pub(crate) fn dataset(probes: Vec<(DomainProbe, &str)>) -> MeasurementDataset {
    let mut seeds: Vec<SeedDomain> = Vec::new();
    let mut discovered = Vec::new();
    let mut only_probes = Vec::new();
    for (probe, cc) in probes {
        let country = CountryCode::new(cc);
        let seed_name = n(&format!("gov.{cc}"));
        if !seeds.iter().any(|s: &SeedDomain| s.country == country) {
            seeds.push(SeedDomain {
                country,
                name: seed_name.clone(),
                kind: SeedKind::ReservedSuffix,
                earliest_government_use: None,
                provenance: SeedProvenance::PortalLink,
                portal_resolved: true,
            });
        }
        discovered.push(DiscoveredDomain { name: probe.domain.clone(), country, seed: seed_name });
        only_probes.push(probe);
    }
    MeasurementDataset {
        seeds,
        discovered,
        probes: only_probes,
        traffic: Default::default(),
        faults: Default::default(),
        collection_date: SimDate::from_ymd(2021, 4, 15),
        retried: 0,
        telemetry: Default::default(),
    }
}

/// Owner of the pieces a [`Campaign`] borrows.
pub(crate) struct CampaignFixture {
    pub unkb: UnKnowledgeBase,
    pub docs: RegistryDocs,
    pub webarchive: WebArchive,
    pub pdns: govdns_pdns::PdnsDb,
    pub network: SimNetwork,
    pub roots: Vec<Ipv4Addr>,
    pub asn_db: AsnDb,
    pub registrar: Registrar,
    pub matchers: Vec<ProviderMatcher>,
    pub countries: Vec<Country>,
}

impl Default for CampaignFixture {
    fn default() -> Self {
        CampaignFixture {
            unkb: UnKnowledgeBase::new(),
            docs: RegistryDocs::new(),
            webarchive: WebArchive::new(),
            pdns: govdns_pdns::PdnsDb::new(),
            network: SimNetwork::new(0),
            roots: vec![Ipv4Addr::new(10, 0, 0, 1)],
            asn_db: AsnDb::new(),
            registrar: Registrar::new(),
            matchers: Vec::new(),
            countries: countries(),
        }
    }
}

impl CampaignFixture {
    pub(crate) fn campaign(&self) -> Campaign<'_> {
        Campaign {
            unkb: &self.unkb,
            registry_docs: &self.docs,
            webarchive: &self.webarchive,
            pdns: &self.pdns,
            network: &self.network,
            roots: &self.roots,
            asn_db: &self.asn_db,
            registrar: &self.registrar,
            matchers: &self.matchers,
            countries: &self.countries,
            collection_date: SimDate::from_ymd(2021, 4, 15),
        }
    }
}

use crate::analysis::longitudinal::{DomainHistory, Longitudinal};
use govdns_model::DateRange;
use govdns_pdns::PdnsEntry;

/// Builds one PDNS NS entry spanning `[from, to]` (inclusive, y/m/d).
pub(crate) fn ns_entry(
    owner: &str,
    target: &str,
    from: (i32, u32, u32),
    to: (i32, u32, u32),
) -> PdnsEntry {
    PdnsEntry {
        name: n(owner),
        rdata: govdns_model::RecordData::Ns(n(target)),
        first_seen: SimDate::from_ymd(from.0, from.1, from.2),
        last_seen: SimDate::from_ymd(to.0, to.1, to.2),
        count: 1,
    }
}

/// Builds a history under `gov.{cc}`.
pub(crate) fn history(owner: &str, cc: &str, entries: Vec<PdnsEntry>) -> DomainHistory {
    DomainHistory {
        name: n(owner),
        country: CountryCode::new(cc),
        seed: n(&format!("gov.{cc}")),
        ns_entries: entries,
        soa_entries: Vec::new(),
    }
}

/// Wraps histories into a longitudinal view.
pub(crate) fn longitudinal(histories: Vec<DomainHistory>) -> Longitudinal {
    Longitudinal { histories }
}

/// The whole-year range helper.
pub(crate) fn year(y: i32) -> DateRange {
    DateRange::year(y)
}
