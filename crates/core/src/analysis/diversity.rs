//! §IV-A — topological diversity of nameserver placement (Table I):
//! for multi-NS domains, how many resolve to more than one address, more
//! than one /24, and more than one autonomous system.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use govdns_simnet::prefix24;
use govdns_world::CountryCode;

use crate::stats;
use crate::tables::{fmt_pct, TextTable};
use crate::{Campaign, MeasurementDataset};

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityRow {
    /// Country code, or `None` for the all-country aggregate.
    pub country: Option<CountryCode>,
    /// Multi-NS domains considered.
    pub domains: usize,
    /// Share with more than one IPv4 address.
    pub multi_ip_pct: f64,
    /// Share with more than one /24 prefix.
    pub multi_24_pct: f64,
    /// Share with more than one ASN.
    pub multi_asn_pct: f64,
}

/// Table I: the aggregate row plus the ten countries with the most
/// multi-NS domains.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiversityTable {
    /// Aggregate first, then the top ten countries.
    pub rows: Vec<DiversityRow>,
    /// Share of multi-/24 domains among second-level domains.
    pub second_level_multi_24_pct: f64,
    /// Share of multi-/24 domains among deeper domains.
    pub deeper_multi_24_pct: f64,
}

#[derive(Default, Clone, Copy)]
struct Acc {
    domains: usize,
    multi_ip: usize,
    multi_24: usize,
    multi_asn: usize,
}

impl Acc {
    fn add(&mut self, ip: bool, p24: bool, asn: bool) {
        self.domains += 1;
        self.multi_ip += usize::from(ip);
        self.multi_24 += usize::from(p24);
        self.multi_asn += usize::from(asn);
    }

    fn row(&self, country: Option<CountryCode>) -> DiversityRow {
        DiversityRow {
            country,
            domains: self.domains,
            multi_ip_pct: stats::pct(self.multi_ip, self.domains),
            multi_24_pct: stats::pct(self.multi_24, self.domains),
            multi_asn_pct: stats::pct(self.multi_asn, self.domains),
        }
    }
}

impl DiversityTable {
    /// Computes Table I over responsive domains with at least two
    /// nameservers, resolving placement through the campaign's ASN
    /// database.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        let mut total = Acc::default();
        let mut per_country: BTreeMap<CountryCode, Acc> = BTreeMap::new();
        let mut second = Acc::default();
        let mut deeper = Acc::default();

        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() || probe.ns_union().len() < 2 {
                continue;
            }
            let addrs = probe.ns_addrs();
            if addrs.is_empty() {
                continue;
            }
            let prefixes: BTreeSet<_> = addrs.iter().map(|&a| prefix24(a)).collect();
            let asns: BTreeSet<_> =
                addrs.iter().filter_map(|&a| campaign.asn_db.lookup(a)).collect();
            let (ip, p24, asn) = (addrs.len() > 1, prefixes.len() > 1, asns.len() > 1);
            total.add(ip, p24, asn);
            per_country.entry(ds.country_of(i)).or_default().add(ip, p24, asn);
            if probe.domain.level() == 2 {
                second.add(ip, p24, asn);
            } else {
                deeper.add(ip, p24, asn);
            }
        }

        let mut ranked: Vec<(CountryCode, Acc)> = per_country.into_iter().collect();
        ranked.sort_by_key(|&(c, acc)| (std::cmp::Reverse(acc.domains), c));
        let mut rows = vec![total.row(None)];
        rows.extend(ranked.into_iter().take(10).map(|(c, acc)| acc.row(Some(c))));

        DiversityTable {
            rows,
            second_level_multi_24_pct: stats::pct(second.multi_24, second.domains),
            deeper_multi_24_pct: stats::pct(deeper.multi_24, deeper.domains),
        }
    }

    /// The aggregate row.
    pub fn total(&self) -> &DiversityRow {
        &self.rows[0]
    }

    /// Renders Table I.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["country", "domains", "|IP|>1", "|/24|>1", "|ASN|>1"]);
        for r in &self.rows {
            t.push_row([
                r.country.map_or_else(|| "total".to_owned(), |c| c.to_string()),
                r.domains.to_string(),
                fmt_pct(r.multi_ip_pct),
                fmt_pct(r.multi_24_pct),
                fmt_pct(r.multi_asn_pct),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, CampaignFixture, ProbeBuilder};

    fn fixture_with_asns() -> CampaignFixture {
        let mut f = CampaignFixture::default();
        f.asn_db.allocate("192.0.2.0".parse().unwrap(), "192.0.2.255".parse().unwrap(), 100);
        f.asn_db.allocate("198.51.100.0".parse().unwrap(), "198.51.100.255".parse().unwrap(), 200);
        f.asn_db.allocate("203.0.113.0".parse().unwrap(), "203.0.113.255".parse().unwrap(), 100);
        f
    }

    #[test]
    fn classifies_each_diversity_tier() {
        let probes = vec![
            // Same address twice.
            (
                ProbeBuilder::new("sameip.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [192, 0, 2, 1])
                    .build(),
                "zz",
            ),
            // Same /24, two addresses.
            (
                ProbeBuilder::new("same24.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [192, 0, 2, 2])
                    .build(),
                "zz",
            ),
            // Two /24s, one AS (192.0.2 and 203.0.113 are both AS 100).
            (
                ProbeBuilder::new("multi24.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [203, 0, 113, 1])
                    .build(),
                "zz",
            ),
            // Two ASes.
            (
                ProbeBuilder::new("multias.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
            // Single-NS: excluded from Table I.
            (
                ProbeBuilder::new("single.gov.zz")
                    .parent(&["ns1.x"])
                    .child(&["ns1.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .build(),
                "zz",
            ),
        ];
        let ds = dataset(probes);
        let f = fixture_with_asns();
        let t = DiversityTable::compute(&ds, &f.campaign());
        let total = t.total();
        assert_eq!(total.domains, 4);
        assert_eq!(total.multi_ip_pct, 75.0);
        assert_eq!(total.multi_24_pct, 50.0);
        assert_eq!(total.multi_asn_pct, 25.0);
        // Monotonicity ip ≥ 24 ≥ asn.
        assert!(total.multi_ip_pct >= total.multi_24_pct);
        assert!(total.multi_24_pct >= total.multi_asn_pct);
    }

    #[test]
    fn per_country_rows_and_render() {
        let probes = vec![
            (
                ProbeBuilder::new("a.gov.aa")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [198, 51, 100, 1])
                    .build(),
                "aa",
            ),
            (
                ProbeBuilder::new("b.gov.bb")
                    .parent(&["ns1.y", "ns2.y"])
                    .child(&["ns1.y", "ns2.y"])
                    .serving("ns1.y", [192, 0, 2, 3])
                    .serving("ns2.y", [192, 0, 2, 4])
                    .build(),
                "bb",
            ),
        ];
        let ds = dataset(probes);
        let f = fixture_with_asns();
        let t = DiversityTable::compute(&ds, &f.campaign());
        assert_eq!(t.rows.len(), 3); // total + 2 countries
        let text = t.table().to_text();
        assert!(text.contains("total") && text.contains("aa") && text.contains("bb"));
    }
}
