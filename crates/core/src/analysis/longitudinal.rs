//! The shared longitudinal view: per-domain PDNS NS histories, built once
//! from the seeds and reused by the replication and provider analyses.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, DomainName, RecordType, Year};
use govdns_pdns::{filter, PdnsEntry};
use govdns_world::CountryCode;

use crate::seed::SeedDomain;
use crate::stats;
use crate::Campaign;

/// First year of the longitudinal window.
pub const FIRST_YEAR: Year = 2011;
/// Last year of the longitudinal window.
pub const LAST_YEAR: Year = 2020;

/// One domain's NS record history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainHistory {
    /// The domain.
    pub name: DomainName,
    /// The country of the matching seed.
    pub country: CountryCode,
    /// The seed it fell under.
    pub seed: DomainName,
    /// Stable NS entries (post-filter) for this owner name.
    pub ns_entries: Vec<PdnsEntry>,
    /// Stable SOA entries for this owner name (MNAME/RNAME evidence).
    pub soa_entries: Vec<PdnsEntry>,
}

impl DomainHistory {
    /// Whether any NS record was active during `window`.
    pub fn active_in(&self, window: &DateRange) -> bool {
        self.ns_entries.iter().any(|e| e.active_in(window))
    }

    /// The paper's per-year deployment size: the mode of the daily count
    /// of simultaneously active NS records (Fig 5), or `None` if the
    /// domain was inactive that year.
    pub fn ns_mode(&self, year: Year) -> Option<usize> {
        let spans: Vec<DateRange> = self.ns_entries.iter().map(|e| e.span()).collect();
        stats::ns_daily_mode(&spans, DateRange::year(year))
    }

    /// NS target hostnames active during `window`.
    pub fn ns_hosts_in(&self, window: &DateRange) -> Vec<&DomainName> {
        self.ns_entries
            .iter()
            .filter(|e| e.active_in(window))
            .filter_map(|e| e.rdata.as_ns())
            .collect()
    }

    /// Whether the deployment in `window` is *private*: every active NS
    /// hostname lies within the domain's own `d_gov` (a lower bound, as
    /// in the paper).
    pub fn private_in(&self, window: &DateRange) -> bool {
        let hosts = self.ns_hosts_in(window);
        !hosts.is_empty() && hosts.iter().all(|h| h.is_within(&self.seed))
    }

    /// SOA MNAME/RNAME pairs observed during `window`.
    pub fn soa_names_in(&self, window: &DateRange) -> Vec<(&DomainName, &DomainName)> {
        self.soa_entries
            .iter()
            .filter(|e| e.active_in(window))
            .filter_map(|e| e.rdata.as_soa().map(|soa| (&soa.mname, &soa.rname)))
            .collect()
    }
}

/// The longitudinal dataset: every domain history under every seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Longitudinal {
    /// Domain histories, sorted by name.
    pub histories: Vec<DomainHistory>,
}

impl Longitudinal {
    /// Builds the view from the PDNS database: full 2011–2020 wildcard
    /// searches (no recency restriction), the stability filter, and the
    /// earliest-government-use clamp.
    pub fn build(campaign: &Campaign<'_>, seeds: &[SeedDomain]) -> Self {
        let mut by_name: BTreeMap<DomainName, DomainHistory> = BTreeMap::new();
        for seed in seeds {
            let entries = campaign.pdns.search_subtree(&seed.name);
            let entries = filter::stable(
                entries.filter(|e| matches!(e.rtype(), RecordType::Ns | RecordType::Soa)),
            );
            let entries: Vec<PdnsEntry> = match seed.earliest_government_use {
                Some(cutoff) => filter::clamp_to_government_use(entries, cutoff).collect(),
                None => entries.collect(),
            };
            for e in entries {
                let slot = by_name.entry(e.name.clone()).or_insert_with(|| DomainHistory {
                    name: e.name.clone(),
                    country: seed.country,
                    seed: seed.name.clone(),
                    ns_entries: Vec::new(),
                    soa_entries: Vec::new(),
                });
                // Longest-seed-wins on contested names.
                if seed.name.level() > slot.seed.level() {
                    slot.seed = seed.name.clone();
                    slot.country = seed.country;
                }
                if e.rtype() == RecordType::Soa {
                    slot.soa_entries.push(e);
                } else {
                    slot.ns_entries.push(e);
                }
            }
        }
        // Drop SOA-only names: a domain is studied for its NS records.
        let histories: Vec<DomainHistory> =
            by_name.into_values().filter(|h| !h.ns_entries.is_empty()).collect();
        Longitudinal { histories }
    }

    /// The years covered.
    pub fn years() -> impl Iterator<Item = Year> {
        FIRST_YEAR..=LAST_YEAR
    }

    /// Histories active in a given year.
    pub fn active_in_year(&self, year: Year) -> impl Iterator<Item = &DomainHistory> {
        let window = DateRange::year(year);
        self.histories.iter().filter(move |h| h.active_in(&window))
    }

    /// Per-country record counts (used for the "top 10 countries by
    /// records" grouping rule of Tables II–III).
    pub fn record_counts_by_country(&self) -> BTreeMap<CountryCode, u64> {
        let mut map = BTreeMap::new();
        for h in &self.histories {
            let records: u64 = h.ns_entries.iter().map(|e| e.count).sum();
            *map.entry(h.country).or_insert(0) += records;
        }
        map
    }

    /// The ten countries with the most records, descending.
    pub fn top10_countries(&self) -> Vec<CountryCode> {
        let mut counts: Vec<(CountryCode, u64)> =
            self.record_counts_by_country().into_iter().collect();
        counts.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        counts.into_iter().take(10).map(|(c, _)| c).collect()
    }
}
