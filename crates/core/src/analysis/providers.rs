//! §IV-B — third-party DNS provider dependence (Tables II and III):
//! classify nameserver hostnames by provider, per year, and measure how
//! many domains, countries, and sub-region groups rely on each.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use govdns_model::{DateRange, Year};
use govdns_world::{Country, CountryCode};

use crate::analysis::longitudinal::Longitudinal;
use crate::stats;
use crate::tables::{fmt_pct, TextTable};
use crate::Campaign;
use govdns_world::MatchTarget;

/// The providers Table II tracks (ordered alphabetically as in the
/// paper).
pub const MAJOR_PROVIDERS: [&str; 8] = [
    "AWS DNS",
    "Azure DNS",
    "cloudflare.com",
    "dnspod.net",
    "dnsmadeeasy.com",
    "Dyn",
    "domaincontrol.com",
    "ultradns.net",
];

/// Usage of one provider in one year.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStats {
    /// Domains with at least one NS at this provider.
    pub domains: usize,
    /// Domains relying solely on this provider (`d_1P`).
    pub d1p: usize,
    /// Sub-region groups covered (22 UN sub-regions + the top-10
    /// countries as their own groups).
    pub groups: BTreeSet<String>,
    /// Countries covered.
    pub countries: BTreeSet<CountryCode>,
}

/// One year's provider market.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderYearStats {
    /// The year.
    pub year: Year,
    /// Domains active in the year (the percentage denominator).
    pub total_domains: usize,
    /// Per-provider usage, keyed by classification label.
    pub per_label: BTreeMap<String, LabelStats>,
}

impl ProviderYearStats {
    /// Usage of one label (empty stats if unseen).
    pub fn usage(&self, label: &str) -> LabelStats {
        self.per_label.get(label).cloned().unwrap_or_default()
    }

    /// Providers ranked by the number of countries using them.
    pub fn top_by_countries(&self, n: usize) -> Vec<(&str, &LabelStats)> {
        let mut entries: Vec<(&str, &LabelStats)> =
            self.per_label.iter().map(|(k, v)| (k.as_str(), v)).collect();
        entries.sort_by_key(|(label, s)| {
            (std::cmp::Reverse(s.countries.len()), std::cmp::Reverse(s.domains), *label)
        });
        entries.into_iter().take(n).collect()
    }
}

/// The full longitudinal provider analysis.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProviderAnalysis {
    /// Per-year markets, 2011–2020.
    pub years: Vec<ProviderYearStats>,
    /// Total number of sub-region groups (the percentage denominator in
    /// Tables II–III).
    pub total_groups: usize,
}

impl ProviderAnalysis {
    /// Classifies every domain-year and accumulates provider usage.
    pub fn compute(lon: &Longitudinal, campaign: &Campaign<'_>) -> Self {
        let top10 = lon.top10_countries();
        let country_index: BTreeMap<CountryCode, &Country> =
            campaign.countries.iter().map(|c| (c.code, c)).collect();
        let group_of = |code: CountryCode| -> String {
            if top10.contains(&code) {
                format!("country:{code}")
            } else {
                country_index
                    .get(&code)
                    .map(|c| c.sub_region.to_string())
                    .unwrap_or_else(|| "unknown".to_owned())
            }
        };
        // 22 sub-regions + one group per top-10 country.
        let total_groups = govdns_world::SubRegion::all().len() + top10.len();

        let years = Longitudinal::years()
            .map(|year| {
                let window = DateRange::year(year);
                let mut per_label: BTreeMap<String, LabelStats> = BTreeMap::new();
                let mut total_domains = 0usize;
                for h in lon.active_in_year(year) {
                    total_domains += 1;
                    let mut labels: BTreeSet<String> = BTreeSet::new();
                    let mut private = false;
                    for host in h.ns_hosts_in(&window) {
                        if host.is_within(&h.seed) {
                            private = true;
                            continue;
                        }
                        // Hostname rules first; for anonymous hostnames,
                        // fall back to the zone's SOA MNAME/RNAME (the
                        // paper's secondary evidence); else group by the
                        // host's registered domain.
                        let by_host = campaign
                            .matchers
                            .iter()
                            .filter(|m| m.target == MatchTarget::Hostname)
                            .find(|m| m.matches(host))
                            .map(|m| m.label.clone());
                        let label = by_host
                            .or_else(|| {
                                h.soa_names_in(&window).iter().find_map(|(mname, rname)| {
                                    campaign
                                        .matchers
                                        .iter()
                                        .filter(|m| m.target == MatchTarget::SoaName)
                                        .find(|m| m.matches(mname) || m.matches(rname))
                                        .map(|m| m.label.clone())
                                })
                            })
                            .unwrap_or_else(|| host.suffix(2).to_string());
                        labels.insert(label);
                    }
                    let single = labels.len() == 1 && !private;
                    for label in &labels {
                        let slot = per_label.entry(label.clone()).or_default();
                        slot.domains += 1;
                        if single {
                            slot.d1p += 1;
                        }
                        slot.groups.insert(group_of(h.country));
                        slot.countries.insert(h.country);
                    }
                }
                ProviderYearStats { year, total_domains, per_label }
            })
            .collect();

        ProviderAnalysis { years, total_groups }
    }

    /// The stats for one year.
    pub fn year(&self, year: Year) -> Option<&ProviderYearStats> {
        self.years.iter().find(|y| y.year == year)
    }

    /// Countries using the single most widespread provider in `year`
    /// (the paper's 52 → 85 headline).
    pub fn top_provider_countries(&self, year: Year) -> usize {
        self.year(year)
            .and_then(|y| y.top_by_countries(1).first().map(|(_, s)| s.countries.len()))
            .unwrap_or(0)
    }

    /// Renders Table II: the eight major providers in 2011 and 2020.
    pub fn table2(&self) -> TextTable {
        let mut t = TextTable::new([
            "provider",
            "2011 domains",
            "2011 d1P",
            "2011 groups",
            "2020 domains",
            "2020 d1P",
            "2020 groups",
        ]);
        let y2011 = self.year(2011);
        let y2020 = self.year(2020);
        for label in MAJOR_PROVIDERS {
            let cell = |ys: Option<&ProviderYearStats>, what: u8| -> String {
                let Some(ys) = ys else { return "-".into() };
                let u = ys.usage(label);
                match what {
                    0 => format!(
                        "{} ({})",
                        u.domains,
                        fmt_pct(stats::pct(u.domains, ys.total_domains))
                    ),
                    1 => format!("{} ({})", u.d1p, fmt_pct(stats::pct(u.d1p, ys.total_domains))),
                    _ => format!(
                        "{} ({})",
                        u.groups.len(),
                        fmt_pct(stats::pct(u.groups.len(), self.total_groups))
                    ),
                }
            };
            t.push_row([
                label.to_owned(),
                cell(y2011, 0),
                cell(y2011, 1),
                cell(y2011, 2),
                cell(y2020, 0),
                cell(y2020, 1),
                cell(y2020, 2),
            ]);
        }
        t
    }

    /// Renders Table III for one year: the top ten providers by country
    /// coverage.
    pub fn table3(&self, year: Year) -> TextTable {
        let mut t = TextTable::new(["provider", "domains", "groups", "countries"]);
        if let Some(ys) = self.year(year) {
            for (label, s) in ys.top_by_countries(10) {
                t.push_row([
                    label.to_owned(),
                    format!("{} ({})", s.domains, fmt_pct(stats::pct(s.domains, ys.total_domains))),
                    format!(
                        "{} ({})",
                        s.groups.len(),
                        fmt_pct(stats::pct(s.groups.len(), self.total_groups))
                    ),
                    s.countries.len().to_string(),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{history, longitudinal, ns_entry, CampaignFixture};
    use govdns_world::{MatchRule, ProviderMatcher};

    #[allow(clippy::field_reassign_with_default)]
    fn fixture_with_matchers() -> CampaignFixture {
        let mut f = CampaignFixture::default();
        f.matchers = vec![
            ProviderMatcher {
                label: "AWS DNS".to_owned(),
                rule: MatchRule::SecondLabelPrefix("awsdns-".to_owned()),
                target: govdns_world::MatchTarget::Hostname,
            },
            ProviderMatcher {
                label: "cloudflare.com".to_owned(),
                rule: MatchRule::RegisteredDomain("cloudflare.com".parse().unwrap()),
                target: govdns_world::MatchTarget::Hostname,
            },
        ];
        f
    }

    fn demo() -> Longitudinal {
        longitudinal(vec![
            // Cloudflare-only all decade (d1P).
            history(
                "a.gov.br",
                "br",
                vec![
                    ns_entry("a.gov.br", "ada.ns.cloudflare.com", (2011, 1, 1), (2020, 12, 31)),
                    ns_entry("a.gov.br", "ben.ns.cloudflare.com", (2011, 1, 1), (2020, 12, 31)),
                ],
            ),
            // Migrated from an unknown host to Amazon mid-decade.
            history(
                "b.gov.br",
                "br",
                vec![
                    ns_entry("b.gov.br", "ns1.oldhost.net", (2011, 1, 1), (2015, 12, 31)),
                    ns_entry("b.gov.br", "ns-1.awsdns-00.com", (2016, 1, 1), (2020, 12, 31)),
                    ns_entry("b.gov.br", "ns-2.awsdns-01.net", (2016, 1, 1), (2020, 12, 31)),
                ],
            ),
            // Mixed Cloudflare + private: uses the provider but not d1P.
            history(
                "c.gov.de",
                "de",
                vec![
                    ns_entry("c.gov.de", "zoe.ns.cloudflare.com", (2018, 1, 1), (2020, 12, 31)),
                    ns_entry("c.gov.de", "ns1.gov.de", (2018, 1, 1), (2020, 12, 31)),
                ],
            ),
        ])
    }

    #[test]
    fn classification_and_d1p() {
        let f = fixture_with_matchers();
        let p = ProviderAnalysis::compute(&demo(), &f.campaign());
        let y2020 = p.year(2020).unwrap();
        let cf = y2020.usage("cloudflare.com");
        assert_eq!(cf.domains, 2);
        assert_eq!(cf.d1p, 1, "the mixed private deployment is not d1P");
        assert_eq!(cf.countries.len(), 2);
        let aws = y2020.usage("AWS DNS");
        assert_eq!(aws.domains, 1);
        assert_eq!(aws.d1p, 1);
        // 2011: no AWS yet; the unknown host is labeled by its registered
        // domain.
        let y2011 = p.year(2011).unwrap();
        assert_eq!(y2011.usage("AWS DNS").domains, 0);
        assert_eq!(y2011.usage("oldhost.net").domains, 1);
    }

    #[test]
    fn rankings_and_headline() {
        let f = fixture_with_matchers();
        let p = ProviderAnalysis::compute(&demo(), &f.campaign());
        let top_2020 = p.year(2020).unwrap().top_by_countries(10);
        assert_eq!(top_2020[0].0, "cloudflare.com");
        assert_eq!(p.top_provider_countries(2020), 2);
        assert_eq!(p.top_provider_countries(2011), 1);
    }

    #[test]
    fn groups_use_the_top10_rule() {
        let f = fixture_with_matchers();
        let lon = demo();
        // With only two countries in the data, both are "top 10" and get
        // their own groups.
        let p = ProviderAnalysis::compute(&lon, &f.campaign());
        let cf = p.year(2020).unwrap().usage("cloudflare.com");
        assert!(cf.groups.iter().all(|g| g.starts_with("country:")), "{:?}", cf.groups);
        assert_eq!(p.total_groups, 22 + lon.top10_countries().len());
    }

    #[test]
    fn tables_render_major_rows() {
        let f = fixture_with_matchers();
        let p = ProviderAnalysis::compute(&demo(), &f.campaign());
        let t2 = p.table2().to_text();
        for label in MAJOR_PROVIDERS {
            assert!(t2.contains(label), "Table II missing {label}");
        }
        assert!(p.table3(2020).to_text().contains("cloudflare.com"));
    }
}
