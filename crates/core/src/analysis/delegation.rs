//! §IV-C — defective ("lame") delegations and the hijack risk of
//! dangling NS targets (Figs 10, 11, 12).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;
use govdns_world::CountryCode;

use crate::stats::{self, Cdf};
use crate::tables::{fmt_pct, TextTable};
use crate::{Campaign, MeasurementDataset};

/// Per-country defective-delegation counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountryDefects {
    /// Responsive domains examined.
    pub domains: usize,
    /// Domains with at least one defective nameserver.
    pub partial_or_full: usize,
    /// Domains where every nameserver is defective.
    pub full: usize,
    /// Domains with a defective nameserver among the parent-listed set.
    pub partial_parent: usize,
    /// Domains that answered only degraded (retries / second round) —
    /// the flakiness dimension a dead-or-alive classification hides.
    pub degraded: usize,
}

/// One registrable dangling NS domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailableNsDomain {
    /// The registrable registered domain.
    pub name: DomainName,
    /// Its price at the registrar.
    pub price_usd: f64,
    /// Government domains whose delegations reference it.
    pub affected: Vec<DomainName>,
    /// Countries those domains belong to.
    pub countries: BTreeSet<CountryCode>,
}

/// The full §IV-C result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DelegationAnalysis {
    /// Responsive domains examined.
    pub domains: usize,
    /// Domains with any defective delegation (the 29.5% headline).
    pub any_defective: usize,
    /// Domains with a partial defective delegation involving
    /// parent-zone information (the 25.4% headline).
    pub partial_parent: usize,
    /// Fully defective delegations.
    pub fully_defective: usize,
    /// Domains that answered, but only after retries or a second round.
    pub degraded: usize,
    /// Per-country breakdown (Figs 10a/10b).
    pub per_country: BTreeMap<CountryCode, CountryDefects>,
    /// Registrable dangling NS domains (Fig 11).
    pub available: Vec<AvailableNsDomain>,
    /// Distinct government domains relying on registrable NS domains.
    pub affected_domains: usize,
    /// Countries with affected domains.
    pub affected_countries: usize,
    /// Of the affected domains, those with no authoritative answer at
    /// all (the "625" stale statistic).
    pub affected_fully_stale: usize,
    /// Registration-cost CDF (Fig 12).
    pub cost_cdf: Cdf,
}

impl DelegationAnalysis {
    /// Classifies every responsive probe and checks dangling NS targets
    /// against the registrar.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        let seeds: Vec<&DomainName> = ds.seeds.iter().map(|s| &s.name).collect();
        let mut per_country: BTreeMap<CountryCode, CountryDefects> = BTreeMap::new();
        let mut any_defective = 0usize;
        let mut fully_defective = 0usize;
        let mut partial_parent = 0usize;
        let mut degraded = 0usize;
        let mut domains = 0usize;
        let mut available: BTreeMap<DomainName, AvailableNsDomain> = BTreeMap::new();
        let mut affected: BTreeSet<DomainName> = BTreeSet::new();
        let mut affected_countries: BTreeSet<CountryCode> = BTreeSet::new();
        let mut affected_fully_stale = 0usize;

        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            domains += 1;
            let country = ds.country_of(i);
            let slot = per_country.entry(country).or_default();
            slot.domains += 1;

            let (any, full) = probe.defective();
            if any {
                any_defective += 1;
                slot.partial_or_full += 1;
            }
            if probe.degraded() {
                degraded += 1;
                slot.degraded += 1;
            }
            if full {
                fully_defective += 1;
                slot.full += 1;
            }
            let parent_defective = probe.servers.iter().any(|s| s.in_parent && s.is_defective());
            if parent_defective && !full {
                partial_parent += 1;
                slot.partial_parent += 1;
            }

            // Hijack risk: defective nameservers whose registered domain
            // lies outside every government seed and is registrable.
            let mut this_domain_flagged = false;
            for server in probe.servers.iter().filter(|s| s.is_defective()) {
                let host = &server.host;
                if host.level() < 2 || seeds.iter().any(|s| host.is_within(s)) {
                    continue;
                }
                let d_ns = host.suffix(2);
                let Some(price) = campaign.registrar.price_of(&d_ns) else { continue };
                let entry = available.entry(d_ns.clone()).or_insert_with(|| AvailableNsDomain {
                    name: d_ns,
                    price_usd: price,
                    affected: Vec::new(),
                    countries: BTreeSet::new(),
                });
                if !entry.affected.contains(&probe.domain) {
                    entry.affected.push(probe.domain.clone());
                }
                entry.countries.insert(country);
                affected.insert(probe.domain.clone());
                affected_countries.insert(country);
                this_domain_flagged = true;
            }
            if this_domain_flagged && !probe.has_authoritative_answer() {
                affected_fully_stale += 1;
            }
        }

        let available: Vec<AvailableNsDomain> = available.into_values().collect();
        let cost_cdf = Cdf::new(available.iter().map(|a| a.price_usd).collect());

        DelegationAnalysis {
            domains,
            any_defective,
            partial_parent,
            fully_defective,
            degraded,
            per_country,
            affected_domains: affected.len(),
            affected_countries: affected_countries.len(),
            affected_fully_stale,
            available,
            cost_cdf,
        }
    }

    /// Share of domains with any defective delegation.
    pub fn any_defective_pct(&self) -> f64 {
        stats::pct(self.any_defective, self.domains)
    }

    /// Share with a partial parent-side defective delegation.
    pub fn partial_parent_pct(&self) -> f64 {
        stats::pct(self.partial_parent, self.domains)
    }

    /// Share of domains that answered only degraded.
    pub fn degraded_pct(&self) -> f64 {
        stats::pct(self.degraded, self.domains)
    }

    /// Renders Figs 10a/10b: the 20 countries with the most defective
    /// delegations.
    pub fn per_country_table(&self) -> TextTable {
        let mut rows: Vec<(&CountryCode, &CountryDefects)> = self.per_country.iter().collect();
        rows.sort_by_key(|(c, d)| (std::cmp::Reverse(d.partial_or_full), **c));
        let mut t = TextTable::new([
            "country",
            "domains",
            "defective",
            "defective %",
            "fully defective",
            "partial (parent)",
            "degraded",
        ]);
        for (c, d) in rows.into_iter().take(20) {
            t.push_row([
                c.to_string(),
                d.domains.to_string(),
                d.partial_or_full.to_string(),
                fmt_pct(stats::pct(d.partial_or_full, d.domains)),
                d.full.to_string(),
                d.partial_parent.to_string(),
                d.degraded.to_string(),
            ]);
        }
        t
    }

    /// Renders Fig 11: registrable NS domains per country.
    pub fn available_table(&self) -> TextTable {
        let mut per_country: BTreeMap<CountryCode, (usize, BTreeSet<&DomainName>)> =
            BTreeMap::new();
        for a in &self.available {
            for &c in &a.countries {
                let slot = per_country.entry(c).or_default();
                slot.0 += a.affected.len();
                slot.1.insert(&a.name);
            }
        }
        let mut rows: Vec<_> = per_country.into_iter().collect();
        rows.sort_by_key(|(c, (n, _))| (std::cmp::Reverse(*n), *c));
        let mut t = TextTable::new(["country", "affected domains", "available d_ns"]);
        for (c, (n, dns)) in rows.into_iter().take(20) {
            t.push_row([c.to_string(), n.to_string(), dns.len().to_string()]);
        }
        t
    }

    /// Renders Fig 12: the registration-cost distribution.
    pub fn cost_table(&self) -> TextTable {
        let mut t = TextTable::new(["quantile", "price (USD)"]);
        if !self.cost_cdf.is_empty() {
            for (q, name) in
                [(0.0, "min"), (0.25, "p25"), (0.5, "median"), (0.75, "p75"), (1.0, "max")]
            {
                let v = if q == 0.0 {
                    self.cost_cdf.min().expect("non-empty")
                } else {
                    self.cost_cdf.quantile(q)
                };
                t.push_row([name.to_owned(), format!("{v:.2}")]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};

    #[test]
    fn classifies_partial_and_full() {
        let probes = vec![
            // Healthy.
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
            // Partial: one dead parent-listed server.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.x", "ns9.x"])
                    .child(&["ns1.x", "ns9.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .dead("ns9.x", [192, 0, 2, 9])
                    .build(),
                "zz",
            ),
            // Fully defective.
            (
                ProbeBuilder::new("c.gov.zz")
                    .parent(&["ns1.c.gov.zz"])
                    .dead("ns1.c.gov.zz", [192, 0, 2, 7])
                    .build(),
                "zz",
            ),
            // Not responsive at all: excluded from the denominator.
            (ProbeBuilder::new("d.gov.zz").parent_silent().build(), "zz"),
        ];
        let ds = dataset(probes);
        let fixture = CampaignFixture::default();
        let d = DelegationAnalysis::compute(&ds, &fixture.campaign());
        assert_eq!(d.domains, 3);
        assert_eq!(d.any_defective, 2);
        assert_eq!(d.fully_defective, 1);
        assert_eq!(d.partial_parent, 1);
        assert!((d.any_defective_pct() - 200.0 / 3.0).abs() < 0.1);
        let zz = &d.per_country[&govdns_world::CountryCode::new("zz")];
        assert_eq!(zz.domains, 3);
        assert_eq!(zz.partial_or_full, 2);
    }

    #[test]
    fn hijack_checks_registrar_and_skips_gov_hosts() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("deaddns.net"), 11.99);
        let probes = vec![
            // Defective host under a registrable domain.
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.deaddns.net", "ns2.x"])
                    .child(&["ns1.deaddns.net", "ns2.x"])
                    .serving("ns2.x", [192, 0, 2, 1])
                    .unresolvable("ns1.deaddns.net")
                    .build(),
                "zz",
            ),
            // Defective host under the government's own seed: no risk.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.b.gov.zz", "ns2.x"])
                    .child(&["ns1.b.gov.zz", "ns2.x"])
                    .serving("ns2.x", [192, 0, 2, 1])
                    .dead("ns1.b.gov.zz", [192, 0, 2, 9])
                    .build(),
                "zz",
            ),
            // Defective host under a registered-but-taken domain.
            (
                ProbeBuilder::new("c.gov.zz")
                    .parent(&["ns1.takendns.net", "ns2.x"])
                    .child(&["ns1.takendns.net", "ns2.x"])
                    .serving("ns2.x", [192, 0, 2, 1])
                    .dead("ns1.takendns.net", [192, 0, 2, 8])
                    .build(),
                "zz",
            ),
        ];
        let ds = dataset(probes);
        let d = DelegationAnalysis::compute(&ds, &fixture.campaign());
        assert_eq!(d.available.len(), 1);
        assert_eq!(d.available[0].name, n("deaddns.net"));
        assert_eq!(d.available[0].affected, vec![n("a.gov.zz")]);
        assert_eq!(d.affected_domains, 1);
        assert_eq!(d.affected_countries, 1);
        assert_eq!(d.cost_cdf.min(), Some(11.99));
    }

    #[test]
    fn fully_stale_affected_are_counted() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("deaddns.net"), 5.0);
        let ds = dataset(vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["ns1.deaddns.net", "ns2.deaddns.net"])
                .unresolvable("ns1.deaddns.net")
                .unresolvable("ns2.deaddns.net")
                .build(),
            "zz",
        )]);
        let d = DelegationAnalysis::compute(&ds, &fixture.campaign());
        assert_eq!(d.affected_domains, 1);
        assert_eq!(d.affected_fully_stale, 1);
        assert_eq!(d.fully_defective, 1);
    }

    #[test]
    fn tables_render() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("deaddns.net"), 7.0);
        let ds = dataset(vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["ns1.deaddns.net", "ns2.x"])
                .child(&["ns1.deaddns.net", "ns2.x"])
                .serving("ns2.x", [192, 0, 2, 1])
                .unresolvable("ns1.deaddns.net")
                .build(),
            "zz",
        )]);
        let d = DelegationAnalysis::compute(&ds, &fixture.campaign());
        assert!(d.per_country_table().to_text().contains("zz"));
        assert!(d.available_table().to_text().contains("zz"));
        assert!(d.cost_table().to_text().contains("median"));
    }
}
