//! §IV-D — parent/child NS-set consistency (Figs 13, 14) per the
//! Sommese et al. framework, plus the inconsistency-only hijack surface.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;
use govdns_world::CountryCode;

use crate::probe::DomainProbe;
use crate::stats;
use crate::tables::{fmt_pct, TextTable};
use crate::{Campaign, MeasurementDataset};

/// The consistency categories of Fig 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsistencyClass {
    /// `P == C`.
    Equal,
    /// `P ⊂ C` (strict).
    PSubsetC,
    /// `C ⊂ P` (strict).
    CSubsetP,
    /// Non-trivial intersection without containment.
    PartialOverlap,
    /// Disjoint NS sets, overlapping addresses.
    DisjointIpOverlap,
    /// Disjoint NS sets, disjoint addresses.
    DisjointNoIp,
}

impl ConsistencyClass {
    /// All classes, report order.
    pub fn all() -> [ConsistencyClass; 6] {
        [
            ConsistencyClass::Equal,
            ConsistencyClass::PSubsetC,
            ConsistencyClass::CSubsetP,
            ConsistencyClass::PartialOverlap,
            ConsistencyClass::DisjointIpOverlap,
            ConsistencyClass::DisjointNoIp,
        ]
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyClass::Equal => "P = C",
            ConsistencyClass::PSubsetC => "P ⊂ C",
            ConsistencyClass::CSubsetP => "C ⊂ P",
            ConsistencyClass::PartialOverlap => "partial overlap",
            ConsistencyClass::DisjointIpOverlap => "disjoint, IPs overlap",
            ConsistencyClass::DisjointNoIp => "disjoint, IPs disjoint",
        }
    }
}

/// Classifies one probe (requires a non-empty `P` and `C`).
pub fn classify(probe: &DomainProbe) -> Option<ConsistencyClass> {
    let p: BTreeSet<&DomainName> = probe.parent_ns.iter().collect();
    let c: BTreeSet<&DomainName> = probe.child_ns.iter().collect();
    if p.is_empty() || c.is_empty() {
        return None;
    }
    Some(if p == c {
        ConsistencyClass::Equal
    } else if p.is_subset(&c) {
        ConsistencyClass::PSubsetC
    } else if c.is_subset(&p) {
        ConsistencyClass::CSubsetP
    } else if !p.is_disjoint(&c) {
        ConsistencyClass::PartialOverlap
    } else {
        // Disjoint hostnames: compare the addresses each side resolves
        // to, as the paper does.
        let addrs_of = |side: &BTreeSet<&DomainName>| -> BTreeSet<std::net::Ipv4Addr> {
            probe
                .servers
                .iter()
                .filter(|s| side.contains(&s.host))
                .flat_map(|s| s.addrs.iter().copied())
                .collect()
        };
        let ip_p = addrs_of(&p);
        let ip_c = addrs_of(&c);
        if !ip_p.is_disjoint(&ip_c) && !ip_p.is_empty() {
            ConsistencyClass::DisjointIpOverlap
        } else {
            ConsistencyClass::DisjointNoIp
        }
    })
}

/// One registrable domain reachable only through inconsistency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParkedDanglingNs {
    /// The registrable registered domain.
    pub name: DomainName,
    /// Its price.
    pub price_usd: f64,
    /// Government domains referencing it.
    pub affected: Vec<DomainName>,
    /// Their countries.
    pub countries: BTreeSet<CountryCode>,
}

/// The full §IV-D result.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyAnalysis {
    /// Domains with both sides observable.
    pub comparable: usize,
    /// Counts per class (Fig 13).
    pub by_class: BTreeMap<String, usize>,
    /// Share of comparable domains with `P == C`.
    pub equal_pct: f64,
    /// Equality share among second-level domains.
    pub equal_pct_second_level: f64,
    /// Equality share among deeper domains.
    pub equal_pct_deeper: f64,
    /// Among `P != C` domains, the share that also has a partial
    /// defective delegation (the 40.9% statistic).
    pub disagree_with_lame_pct: f64,
    /// Per-country disagreement rates (Fig 14): `(country, comparable,
    /// disagreeing)`.
    pub per_country: Vec<(CountryCode, usize, usize)>,
    /// Registrable parent-only NS domains whose hosts still answer (the
    /// parked-dangling hijack surface).
    pub parked: Vec<ParkedDanglingNs>,
    /// Distinct domains affected by parked dangling records.
    pub parked_affected_domains: usize,
    /// Countries involved.
    pub parked_affected_countries: usize,
    /// Minimum price among the parked registrable domains.
    pub parked_min_price: Option<f64>,
}

impl ConsistencyAnalysis {
    /// Runs the framework over all responsive probes.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        let seeds: Vec<&DomainName> = ds.seeds.iter().map(|s| &s.name).collect();
        let mut by_class: BTreeMap<String, usize> = BTreeMap::new();
        let mut comparable = 0usize;
        let mut equal = 0usize;
        let mut second = (0usize, 0usize);
        let mut deeper = (0usize, 0usize);
        let mut disagree = 0usize;
        let mut disagree_with_lame = 0usize;
        let mut per_country: BTreeMap<CountryCode, (usize, usize)> = BTreeMap::new();
        let mut parked: BTreeMap<DomainName, ParkedDanglingNs> = BTreeMap::new();
        let mut parked_affected: BTreeSet<DomainName> = BTreeSet::new();
        let mut parked_countries: BTreeSet<CountryCode> = BTreeSet::new();

        for (i, probe) in ds.probes.iter().enumerate() {
            let Some(class) = classify(probe) else { continue };
            comparable += 1;
            *by_class.entry(class.label().to_owned()).or_insert(0) += 1;
            let country = ds.country_of(i);
            let slot = per_country.entry(country).or_insert((0, 0));
            slot.0 += 1;
            let level_slot = if probe.domain.level() == 2 { &mut second } else { &mut deeper };
            level_slot.0 += 1;
            if class == ConsistencyClass::Equal {
                equal += 1;
                level_slot.1 += 1;
                continue;
            }
            slot.1 += 1;
            disagree += 1;
            if probe.servers.iter().any(|s| s.is_defective()) {
                disagree_with_lame += 1;
            }

            // Hijack surface: symmetric-difference hosts that are *not*
            // defective (they answer — e.g. a parking service), whose
            // registered domain is nevertheless registrable.
            let p: BTreeSet<&DomainName> = probe.parent_ns.iter().collect();
            let c: BTreeSet<&DomainName> = probe.child_ns.iter().collect();
            for server in &probe.servers {
                let in_sym_diff = p.contains(&server.host) != c.contains(&server.host);
                if !in_sym_diff || server.is_defective() {
                    continue;
                }
                let host = &server.host;
                if host.level() < 2 || seeds.iter().any(|s| host.is_within(s)) {
                    continue;
                }
                let d_ns = host.suffix(2);
                let Some(price) = campaign.registrar.price_of(&d_ns) else { continue };
                let entry = parked.entry(d_ns.clone()).or_insert_with(|| ParkedDanglingNs {
                    name: d_ns,
                    price_usd: price,
                    affected: Vec::new(),
                    countries: BTreeSet::new(),
                });
                if !entry.affected.contains(&probe.domain) {
                    entry.affected.push(probe.domain.clone());
                }
                entry.countries.insert(country);
                parked_affected.insert(probe.domain.clone());
                parked_countries.insert(country);
            }
        }

        let mut per_country: Vec<(CountryCode, usize, usize)> =
            per_country.into_iter().map(|(c, (a, b))| (c, a, b)).collect();
        per_country.sort_by_key(|&(c, total, dis)| {
            (std::cmp::Reverse((dis * 10_000).checked_div(total.max(1)).unwrap_or(0)), c)
        });
        let parked: Vec<ParkedDanglingNs> = parked.into_values().collect();
        let parked_min_price =
            parked.iter().map(|p| p.price_usd).min_by(|a, b| a.partial_cmp(b).expect("finite"));

        ConsistencyAnalysis {
            comparable,
            by_class,
            equal_pct: stats::pct(equal, comparable),
            equal_pct_second_level: stats::pct(second.1, second.0),
            equal_pct_deeper: stats::pct(deeper.1, deeper.0),
            disagree_with_lame_pct: stats::pct(disagree_with_lame, disagree),
            per_country,
            parked_affected_domains: parked_affected.len(),
            parked_affected_countries: parked_countries.len(),
            parked,
            parked_min_price,
        }
    }

    /// Renders Fig 13.
    pub fn summary_table(&self) -> TextTable {
        let mut t = TextTable::new(["category", "domains", "share"]);
        for class in ConsistencyClass::all() {
            let n = self.by_class.get(class.label()).copied().unwrap_or(0);
            t.push_row([
                class.label().to_owned(),
                n.to_string(),
                fmt_pct(stats::pct(n, self.comparable)),
            ]);
        }
        t
    }

    /// Renders Fig 14: the countries with the highest disagreement rate.
    pub fn per_country_table(&self) -> TextTable {
        let mut t = TextTable::new(["country", "comparable", "disagreeing", "rate"]);
        for &(c, total, dis) in self.per_country.iter().take(20) {
            t.push_row([
                c.to_string(),
                total.to_string(),
                dis.to_string(),
                fmt_pct(stats::pct(dis, total)),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};

    #[test]
    fn classify_covers_every_category() {
        // Equal.
        let p = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns2.x", "ns1.x"])
            .build();
        assert_eq!(classify(&p), Some(ConsistencyClass::Equal));
        // P ⊂ C.
        let p = ProbeBuilder::new("a.gov.zz").parent(&["ns1.x"]).child(&["ns1.x", "ns2.x"]).build();
        assert_eq!(classify(&p), Some(ConsistencyClass::PSubsetC));
        // C ⊂ P.
        let p = ProbeBuilder::new("a.gov.zz").parent(&["ns1.x", "ns2.x"]).child(&["ns1.x"]).build();
        assert_eq!(classify(&p), Some(ConsistencyClass::CSubsetP));
        // Partial overlap.
        let p = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns1.x", "ns3.x"])
            .build();
        assert_eq!(classify(&p), Some(ConsistencyClass::PartialOverlap));
        // Disjoint with shared addresses (alias hostnames).
        let p = ProbeBuilder::new("a.gov.zz")
            .parent(&["dns1.a.gov.zz"])
            .child(&["ns1.a.gov.zz"])
            .serving("dns1.a.gov.zz", [192, 0, 2, 1])
            .serving("ns1.a.gov.zz", [192, 0, 2, 1])
            .build();
        assert_eq!(classify(&p), Some(ConsistencyClass::DisjointIpOverlap));
        // Disjoint, different addresses.
        let p = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.old.example"])
            .child(&["ns1.new.example"])
            .serving("ns1.old.example", [192, 0, 2, 1])
            .serving("ns1.new.example", [198, 51, 100, 1])
            .build();
        assert_eq!(classify(&p), Some(ConsistencyClass::DisjointNoIp));
        // Unclassifiable: one side missing.
        let p = ProbeBuilder::new("a.gov.zz").parent(&["ns1.x"]).build();
        assert_eq!(classify(&p), None);
    }

    #[test]
    fn compute_aggregates_rates_and_levels() {
        let probes = vec![
            // Second-level (the apex itself): equal.
            (
                ProbeBuilder::new("gov.zz")
                    .parent(&["ns1.gov.zz"])
                    .child(&["ns1.gov.zz"])
                    .serving("ns1.gov.zz", [192, 0, 2, 1])
                    .build(),
                "zz",
            ),
            // Third-level equal.
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.x"])
                    .child(&["ns1.x"])
                    .serving("ns1.x", [192, 0, 2, 2])
                    .build(),
                "zz",
            ),
            // Third-level C ⊂ P with a dead leftover.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.x", "ns9.x"])
                    .child(&["ns1.x"])
                    .serving("ns1.x", [192, 0, 2, 2])
                    .dead("ns9.x", [192, 0, 2, 9])
                    .build(),
                "zz",
            ),
            // Third-level partial overlap, all servers healthy.
            (
                ProbeBuilder::new("c.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns3.x"])
                    .serving("ns1.x", [192, 0, 2, 2])
                    .serving("ns2.x", [192, 0, 2, 3])
                    .serving("ns3.x", [192, 0, 2, 4])
                    .build(),
                "zz",
            ),
        ];
        let ds = dataset(probes);
        let fixture = CampaignFixture::default();
        let c = ConsistencyAnalysis::compute(&ds, &fixture.campaign());
        assert_eq!(c.comparable, 4);
        assert_eq!(c.by_class["P = C"], 2);
        assert_eq!(c.equal_pct, 50.0);
        assert_eq!(c.equal_pct_second_level, 100.0);
        assert!((c.equal_pct_deeper - 100.0 / 3.0).abs() < 0.1);
        // One of the two disagreeing domains has a defective server.
        assert_eq!(c.disagree_with_lame_pct, 50.0);
        assert_eq!(c.per_country.len(), 1);
        assert_eq!(c.per_country[0], (govdns_world::CountryCode::new("zz"), 4, 2));
    }

    #[test]
    fn parked_dangling_needs_responsive_symmetric_difference() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("park1dns.com"), 450.0);
        let probes = vec![
            // Parent-extra host is responsive (parking) and registrable.
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.x", "ns1.park1dns.com"])
                    .child(&["ns1.x"])
                    .serving("ns1.x", [192, 0, 2, 2])
                    .serving("ns1.park1dns.com", [203, 0, 113, 1])
                    .build(),
                "zz",
            ),
            // Same registrable domain, but the host is dead — this is
            // §IV-C territory, not §IV-D.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.x", "ns2.park1dns.com"])
                    .child(&["ns1.x"])
                    .serving("ns1.x", [192, 0, 2, 2])
                    .dead("ns2.park1dns.com", [203, 0, 113, 2])
                    .build(),
                "zz",
            ),
        ];
        let ds = dataset(probes);
        let c = ConsistencyAnalysis::compute(&ds, &fixture.campaign());
        assert_eq!(c.parked.len(), 1);
        assert_eq!(c.parked[0].affected, vec![n("a.gov.zz")]);
        assert_eq!(c.parked_affected_domains, 1);
        assert_eq!(c.parked_min_price, Some(450.0));
    }

    #[test]
    fn tables_render() {
        let ds = dataset(vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["ns1.x"])
                .child(&["ns1.x"])
                .serving("ns1.x", [192, 0, 2, 2])
                .build(),
            "zz",
        )]);
        let fixture = CampaignFixture::default();
        let c = ConsistencyAnalysis::compute(&ds, &fixture.campaign());
        let summary = c.summary_table().to_text();
        assert!(summary.contains("P = C"));
        assert!(c.per_country_table().to_text().contains("zz"));
    }
}
