//! §IV-A (text) — per-`d_gov` provider concentration: the paper observes
//! that over half of gov.cn's responsive subdomains sit on three Chinese
//! providers (HiChina 38%, XinCache 19%, DNS-DIY 10.8%) while gov.br's
//! most-used provider holds only ~6%. This module measures that mix for
//! every seed, plus a Herfindahl–Hirschman concentration index.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::stats;
use crate::tables::{fmt_pct, TextTable};
use crate::{Campaign, MeasurementDataset};

/// Provider mix under one seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeedConcentration {
    /// The `d_gov`.
    pub seed: DomainName,
    /// Responsive domains under it.
    pub responsive: usize,
    /// Domains on a private (in-seed) deployment.
    pub private: usize,
    /// Provider label → domains using it, descending.
    pub providers: Vec<(String, usize)>,
    /// Herfindahl–Hirschman index over provider shares (0–10,000; higher
    /// = more concentrated). Private deployments count as one "provider".
    pub hhi: f64,
}

impl SeedConcentration {
    /// The dominant provider's share of responsive domains, in percent.
    pub fn top_share_pct(&self) -> f64 {
        self.providers.first().map(|&(_, n)| stats::pct(n, self.responsive)).unwrap_or(0.0)
    }
}

/// Concentration for every seed with responsive domains.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConcentrationAnalysis {
    /// Per-seed mixes, ordered by responsive-domain count descending.
    pub seeds: Vec<SeedConcentration>,
}

impl ConcentrationAnalysis {
    /// Classifies every responsive domain's nameservers and aggregates
    /// per seed.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        let mut per_seed: BTreeMap<DomainName, (usize, usize, BTreeMap<String, usize>)> =
            BTreeMap::new();
        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            let seed = ds.seed_of(i).clone();
            let slot = per_seed.entry(seed.clone()).or_default();
            slot.0 += 1;
            let mut labels: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
            let mut private = false;
            for host in probe.ns_union() {
                if host.is_within(&seed) {
                    private = true;
                    continue;
                }
                if host.level() < 2 {
                    continue; // relative-label artifacts
                }
                let by_host = campaign
                    .matchers
                    .iter()
                    .filter(|m| m.target == govdns_world::MatchTarget::Hostname)
                    .find(|m| m.matches(&host))
                    .map(|m| m.label.clone());
                let label = by_host
                    .or_else(|| {
                        // The paper's fallback: the fetched SOA's
                        // MNAME/RNAME identify white-label providers.
                        probe.soa.as_ref().and_then(|soa| {
                            campaign
                                .matchers
                                .iter()
                                .filter(|m| m.target == govdns_world::MatchTarget::SoaName)
                                .find(|m| m.matches(&soa.mname) || m.matches(&soa.rname))
                                .map(|m| m.label.clone())
                        })
                    })
                    .unwrap_or_else(|| host.suffix(2).to_string());
                labels.insert(label);
            }
            if private {
                slot.1 += 1;
            }
            for label in labels {
                *slot.2.entry(label).or_insert(0) += 1;
            }
        }

        let mut seeds: Vec<SeedConcentration> = per_seed
            .into_iter()
            .map(|(seed, (responsive, private, counts))| {
                let mut providers: Vec<(String, usize)> = counts.into_iter().collect();
                providers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let hhi = if responsive == 0 {
                    0.0
                } else {
                    let mut sum = 0.0;
                    for &(_, n) in &providers {
                        let share = 100.0 * n as f64 / responsive as f64;
                        sum += share * share;
                    }
                    let private_share = 100.0 * private as f64 / responsive as f64;
                    sum + private_share * private_share
                };
                SeedConcentration { seed, responsive, private, providers, hhi }
            })
            .collect();
        seeds.sort_by_key(|s| std::cmp::Reverse(s.responsive));
        ConcentrationAnalysis { seeds }
    }

    /// The mix for one seed.
    pub fn seed(&self, seed: &DomainName) -> Option<&SeedConcentration> {
        self.seeds.iter().find(|s| s.seed == *seed)
    }

    /// Renders the top seeds with their top providers.
    pub fn table(&self, top_seeds: usize) -> TextTable {
        let mut t =
            TextTable::new(["d_gov", "responsive", "private", "top providers (share)", "HHI"]);
        for s in self.seeds.iter().take(top_seeds) {
            let top: Vec<String> = s
                .providers
                .iter()
                .take(3)
                .map(|(label, n)| format!("{label} ({})", fmt_pct(stats::pct(*n, s.responsive))))
                .collect();
            t.push_row([
                s.seed.to_string(),
                s.responsive.to_string(),
                s.private.to_string(),
                top.join(", "),
                format!("{:.0}", s.hhi),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};
    use govdns_world::{MatchRule, ProviderMatcher};

    #[allow(clippy::field_reassign_with_default)]
    fn fixture() -> CampaignFixture {
        let mut f = CampaignFixture::default();
        f.matchers = vec![ProviderMatcher {
            label: "hichina.com".to_owned(),
            rule: MatchRule::RegisteredDomain("hichina.com".parse().unwrap()),
            target: govdns_world::MatchTarget::Hostname,
        }];
        f
    }

    #[test]
    fn measures_mix_and_private() {
        let probes = vec![
            // Two hichina customers.
            (
                ProbeBuilder::new("a.gov.cn")
                    .parent(&["dns1.hichina.com", "dns2.hichina.com"])
                    .child(&["dns1.hichina.com", "dns2.hichina.com"])
                    .serving("dns1.hichina.com", [192, 0, 2, 1])
                    .build(),
                "cn",
            ),
            (
                ProbeBuilder::new("b.gov.cn")
                    .parent(&["dns3.hichina.com", "dns4.hichina.com"])
                    .child(&["dns3.hichina.com", "dns4.hichina.com"])
                    .serving("dns3.hichina.com", [192, 0, 2, 2])
                    .build(),
                "cn",
            ),
            // One private, one other provider.
            (
                ProbeBuilder::new("c.gov.cn")
                    .parent(&["ns1.c.gov.cn", "ns2.c.gov.cn"])
                    .child(&["ns1.c.gov.cn", "ns2.c.gov.cn"])
                    .serving("ns1.c.gov.cn", [192, 0, 2, 3])
                    .build(),
                "cn",
            ),
            (
                ProbeBuilder::new("d.gov.cn")
                    .parent(&["ns1.other.net", "ns2.other.net"])
                    .child(&["ns1.other.net", "ns2.other.net"])
                    .serving("ns1.other.net", [192, 0, 2, 4])
                    .build(),
                "cn",
            ),
        ];
        let ds = dataset(probes);
        let f = fixture();
        let c = ConcentrationAnalysis::compute(&ds, &f.campaign());
        let cn = c.seed(&n("gov.cn")).unwrap();
        assert_eq!(cn.responsive, 4);
        assert_eq!(cn.private, 1);
        assert_eq!(cn.providers[0], ("hichina.com".to_owned(), 2));
        assert_eq!(cn.top_share_pct(), 50.0);
        // HHI: 50² (hichina) + 25² (other) + 25² (private) = 3750.
        assert!((cn.hhi - 3750.0).abs() < 1.0, "hhi {}", cn.hhi);
        assert!(c.table(5).to_text().contains("hichina.com"));
    }

    #[test]
    fn empty_dataset_yields_no_rows() {
        let ds = dataset(Vec::new());
        let f = fixture();
        let c = ConcentrationAnalysis::compute(&ds, &f.campaign());
        assert!(c.seeds.is_empty());
    }
}

#[cfg(test)]
mod soa_tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};
    use govdns_world::{MatchRule, MatchTarget, ProviderMatcher};

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn white_label_hosts_classified_via_soa() {
        let mut f = CampaignFixture::default();
        f.matchers = vec![ProviderMatcher {
            label: "brandhost.example".to_owned(),
            rule: MatchRule::RegisteredDomain("brandhost.example".parse().unwrap()),
            target: MatchTarget::SoaName,
        }];
        let probes = vec![
            // Anonymous cluster hostnames + a branding SOA.
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.dns-cluster7.net", "ns2.dns-cluster7.net"])
                    .child(&["ns1.dns-cluster7.net", "ns2.dns-cluster7.net"])
                    .serving("ns1.dns-cluster7.net", [192, 0, 2, 1])
                    .soa("ns1.dns-cluster7.net", "hostmaster.brandhost.example")
                    .build(),
                "zz",
            ),
            // Same hostnames, no SOA: falls back to the registered domain.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.dns-cluster9.net", "ns2.dns-cluster9.net"])
                    .child(&["ns1.dns-cluster9.net", "ns2.dns-cluster9.net"])
                    .serving("ns1.dns-cluster9.net", [192, 0, 2, 2])
                    .build(),
                "zz",
            ),
        ];
        let ds = dataset(probes);
        let c = ConcentrationAnalysis::compute(&ds, &f.campaign());
        let zz = c.seed(&n("gov.zz")).unwrap();
        let labels: Vec<&str> = zz.providers.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"brandhost.example"), "{labels:?}");
        assert!(labels.contains(&"dns-cluster9.net"), "{labels:?}");
        assert!(!labels.contains(&"dns-cluster7.net"), "{labels:?}");
    }
}
