//! §V — operational smell detection over the measured delegation graph,
//! per Radwan & Heckel's smell catalogue ("Detecting and Refactoring
//! Operational Smells within the DNS"). One detector per smell:
//!
//! * **cyclic zone dependencies** — the zone's NS RRset is resolvable
//!   only through the zone itself (fully in-bailiwick NS sets held up by
//!   parent glue alone), or two measured zones host each other's
//!   nameservers;
//! * **single-homed glue** — every resolved nameserver address sits in
//!   one /24 (often one address, often one host);
//! * **stale parent NS** — the parent and child NS RRsets disagree (the
//!   Fig-13 drill-down, subsumed here so the verdict carries citations);
//! * **provider monoculture** — every external nameserver of a domain
//!   belongs to one third-party provider, with no private fallback;
//! * **lame-but-listed servers** — delegated nameservers that do not
//!   serve the zone (unresolvable, silent, or non-authoritative).
//!
//! Every [`SmellVerdict`] carries a proposed refactoring, a
//! deterministic integer severity (0–100, pure integer arithmetic so
//! reports are byte-stable), and — once [`SmellAnalysis::attach_evidence`]
//! has seen the flight-recorder log — an **evidence chain**: citations
//! of the exact recorded exchanges (parent vs child NS responses,
//! referral cuts, glue resolutions, response classes) that support the
//! verdict. A citation is `(domain, seq)`; `govdns_trace::TraceLog::resolve`
//! checks it against the trace file.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;
use govdns_simnet::prefix24;
use govdns_trace::{DomainBlock, Step, TraceData, TraceLog};
use govdns_world::CountryCode;

use crate::analysis::consistency::{classify, ConsistencyClass};
use crate::probe::DomainProbe;
use crate::tables::TextTable;
use crate::{Campaign, MeasurementDataset};

/// The smell catalogue, report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SmellKind {
    /// Resolution of the zone's NS set depends on the zone itself.
    CyclicDependency,
    /// All resolved nameserver addresses share one /24.
    SingleHomedGlue,
    /// Parent and child NS RRsets disagree.
    StaleParentNs,
    /// Every external nameserver belongs to a single provider.
    ProviderMonoculture,
    /// Listed nameservers that do not serve the zone.
    LameDelegation,
}

impl SmellKind {
    /// All smells, catalogue order.
    pub fn all() -> [SmellKind; 5] {
        [
            SmellKind::CyclicDependency,
            SmellKind::SingleHomedGlue,
            SmellKind::StaleParentNs,
            SmellKind::ProviderMonoculture,
            SmellKind::LameDelegation,
        ]
    }

    /// Stable wire label (CLI filters, JSON, telemetry counters).
    pub fn as_str(self) -> &'static str {
        match self {
            SmellKind::CyclicDependency => "cyclic_dependency",
            SmellKind::SingleHomedGlue => "single_homed_glue",
            SmellKind::StaleParentNs => "stale_parent_ns",
            SmellKind::ProviderMonoculture => "provider_monoculture",
            SmellKind::LameDelegation => "lame_delegation",
        }
    }

    /// Parses a wire label back into a kind.
    pub fn parse(s: &str) -> Option<SmellKind> {
        SmellKind::all().into_iter().find(|k| k.as_str() == s)
    }
}

/// One evidence citation: a flight-recorder event that supports a
/// verdict, by per-domain sequence number. The rendered line is carried
/// for human consumption; the `(domain, seq)` pair is what a checker
/// resolves against the trace file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Citation {
    /// Per-domain event sequence number.
    pub seq: u32,
    /// Protocol step label (`parent_ns`, `referral`, ...).
    pub step: String,
    /// The rendered timeline line.
    pub line: String,
}

/// One detected smell on one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmellVerdict {
    /// Which smell.
    pub kind: SmellKind,
    /// The affected domain.
    pub domain: DomainName,
    /// Its country.
    pub country: CountryCode,
    /// Deterministic severity, 0–100 (integer arithmetic only).
    pub severity: u32,
    /// What the detector saw.
    pub detail: String,
    /// The proposed refactoring.
    pub refactoring: String,
    /// Flight-recorder citations supporting the verdict (empty until
    /// [`SmellAnalysis::attach_evidence`] runs, or when the domain was
    /// not sampled).
    pub evidence: Vec<Citation>,
}

/// The full smell pass over a dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SmellAnalysis {
    /// All verdicts, ordered by `(domain, kind)`.
    pub verdicts: Vec<SmellVerdict>,
    /// Verdict counts per smell label.
    pub by_kind: BTreeMap<String, usize>,
    /// Distinct domains with at least one verdict.
    pub domains_affected: usize,
    /// Total trace events cited across all verdicts.
    pub evidence_cited: u64,
}

// ---------------------------------------------------------------------
// Severity functions — public so property tests can pin monotonicity.
// All pure integer arithmetic: severities feed byte-stable reports.
// ---------------------------------------------------------------------

/// Severity of a cyclic dependency. Mutual cycles (two zones hosting
/// each other's NS) are worst; a self-contained NS set scores higher
/// the fewer glue addresses anchor it and the more of those anchors are
/// lame.
pub fn cycle_severity(mutual: bool, glue_addrs: usize, lame_anchors: usize, anchors: usize) -> u32 {
    if mutual {
        return 90;
    }
    let mut s = 50u32;
    if glue_addrs <= 1 {
        s += 25;
    }
    if let Some(lame_share) = (25 * lame_anchors).checked_div(anchors) {
        s += lame_share as u32;
    }
    s.min(100)
}

/// Severity of single-homed glue: monotone non-increasing in both the
/// number of listed hosts and the number of distinct addresses.
pub fn glue_severity(hosts: usize, addrs: usize) -> u32 {
    let mut s = 50u32;
    if hosts <= 1 {
        s += 30;
    }
    if addrs <= 1 {
        s += 20;
    }
    s
}

/// Severity of a parent/child NS disagreement, ordered by how far the
/// two views are apart; a lame server in the symmetric difference adds
/// a bump (the disagreement is load-bearing).
pub fn stale_severity(class: ConsistencyClass, lame_in_diff: bool) -> u32 {
    let base = match class {
        ConsistencyClass::Equal => 0,
        ConsistencyClass::PSubsetC => 40,
        ConsistencyClass::CSubsetP => 50,
        ConsistencyClass::PartialOverlap => 60,
        ConsistencyClass::DisjointIpOverlap => 75,
        ConsistencyClass::DisjointNoIp => 90,
    };
    (base + if lame_in_diff { 10 } else { 0 }).min(100)
}

/// Severity of a provider monoculture: monotone non-decreasing in the
/// provider's share (ppm) of the seed's responsive domains — a
/// monoculture on a provider that already carries the whole `d_gov` is
/// a bigger blast radius than one on a niche provider.
pub fn monoculture_severity(share_ppm: u64) -> u32 {
    40 + (share_ppm / 25_000).min(40) as u32
}

/// Severity of a lame-but-listed delegation: monotone non-decreasing in
/// the number of lame servers for a fixed listing size, 100 when every
/// listed server is lame.
pub fn lame_severity(lame: usize, listed: usize) -> u32 {
    if listed == 0 || lame == 0 {
        return 0;
    }
    30 + ((70 * lame.min(listed)) / listed) as u32
}

/// Renders a sorted name list as `[a, b, c]`.
fn name_list(names: &BTreeSet<&DomainName>) -> String {
    let rendered: Vec<String> = names.iter().map(|n| n.to_string()).collect();
    format!("[{}]", rendered.join(", "))
}

/// The provider labels of one probe's external nameservers plus whether
/// any nameserver is private (inside the seed) — the same attribution
/// the concentration analysis uses (hostname matchers, SOA fallback,
/// registered-domain fallback).
fn provider_labels(
    probe: &DomainProbe,
    seed: &DomainName,
    campaign: &Campaign<'_>,
) -> (BTreeSet<String>, bool) {
    let mut labels = BTreeSet::new();
    let mut private = false;
    for host in probe.ns_union() {
        if host.is_within(seed) {
            private = true;
            continue;
        }
        if host.level() < 2 {
            continue; // relative-label artifacts
        }
        let by_host = campaign
            .matchers
            .iter()
            .filter(|m| m.target == govdns_world::MatchTarget::Hostname)
            .find(|m| m.matches(&host))
            .map(|m| m.label.clone());
        let label = by_host
            .or_else(|| {
                probe.soa.as_ref().and_then(|soa| {
                    campaign
                        .matchers
                        .iter()
                        .filter(|m| m.target == govdns_world::MatchTarget::SoaName)
                        .find(|m| m.matches(&soa.mname) || m.matches(&soa.rname))
                        .map(|m| m.label.clone())
                })
            })
            .unwrap_or_else(|| host.suffix(2).to_string());
        labels.insert(label);
    }
    (labels, private)
}

impl SmellAnalysis {
    /// Runs every detector over the dataset. Verdicts are ordered by
    /// `(domain, kind)`; evidence chains stay empty until
    /// [`attach_evidence`](SmellAnalysis::attach_evidence) sees the
    /// trace log.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        // Pass 1a: seed-level provider tallies for monoculture severity
        // (identical attribution to the concentration analysis).
        let mut seed_stats: BTreeMap<DomainName, (usize, BTreeMap<String, usize>)> =
            BTreeMap::new();
        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            let slot = seed_stats.entry(ds.seed_of(i).clone()).or_default();
            slot.0 += 1;
            let (labels, _) = provider_labels(probe, ds.seed_of(i), campaign);
            for label in labels {
                *slot.1.entry(label).or_insert(0) += 1;
            }
        }

        // Pass 1b: the cross-domain dependency graph for mutual cycles —
        // domain i depends on probed domain j when one of i's
        // nameservers lives inside j's zone.
        let index_of: BTreeMap<String, usize> =
            ds.discovered.iter().enumerate().map(|(i, d)| (d.name.to_string(), i)).collect();
        let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); ds.probes.len()];
        for (i, probe) in ds.probes.iter().enumerate() {
            for host in probe.ns_union() {
                for k in 2..host.level() {
                    if let Some(&j) = index_of.get(&host.suffix(k).to_string()) {
                        if j != i {
                            deps[i].insert(j);
                        }
                    }
                }
            }
        }

        // Pass 2: the detectors proper.
        let mut verdicts = Vec::new();
        for (i, probe) in ds.probes.iter().enumerate() {
            if !probe.parent_nonempty() {
                continue;
            }
            let domain = ds.discovered[i].name.clone();
            let country = ds.country_of(i);
            let seed = ds.seed_of(i);
            let ns = probe.ns_union();
            let mut push = |kind, severity, detail: String, refactoring: String| {
                verdicts.push(SmellVerdict {
                    kind,
                    domain: domain.clone(),
                    country,
                    severity,
                    detail,
                    refactoring,
                    evidence: Vec::new(),
                });
            };

            // --- cyclic zone dependencies ------------------------------
            let partners: BTreeSet<String> = deps[i]
                .iter()
                .filter(|&&j| deps[j].contains(&i))
                .map(|&j| ds.discovered[j].name.to_string())
                .collect();
            let in_bailiwick: Vec<&DomainName> =
                ns.iter().filter(|h| h.is_within(&domain)).collect();
            if !partners.is_empty() {
                let list: Vec<String> = partners.into_iter().collect();
                push(
                    SmellKind::CyclicDependency,
                    cycle_severity(true, 0, 0, 0),
                    format!(
                        "mutual dependency: this zone and [{}] host each other's nameservers",
                        list.join(", ")
                    ),
                    "re-home one side's NS set outside the partner zone to break the cycle"
                        .to_owned(),
                );
            } else if !ns.is_empty() && in_bailiwick.len() == ns.len() {
                let anchors: Vec<_> =
                    probe.servers.iter().filter(|s| s.host.is_within(&domain)).collect();
                let glue_addrs: BTreeSet<Ipv4Addr> =
                    anchors.iter().flat_map(|s| s.addrs.iter().copied()).collect();
                let lame_anchors = anchors.iter().filter(|s| s.is_defective()).count();
                push(
                    SmellKind::CyclicDependency,
                    cycle_severity(false, glue_addrs.len(), lame_anchors, anchors.len()),
                    format!(
                        "all {} listed nameservers live inside {domain}; resolution bootstraps only through {} glue address(es)",
                        ns.len(),
                        glue_addrs.len()
                    ),
                    "add an out-of-bailiwick nameserver so the zone resolves without its own glue"
                        .to_owned(),
                );
            }

            // --- single-homed glue -------------------------------------
            let addrs: BTreeSet<Ipv4Addr> =
                probe.servers.iter().flat_map(|s| s.addrs.iter().copied()).collect();
            let prefixes: BTreeSet<_> = addrs.iter().map(|&a| prefix24(a)).collect();
            if !addrs.is_empty() && prefixes.len() == 1 {
                let prefix = prefixes.iter().next().expect("nonempty");
                push(
                    SmellKind::SingleHomedGlue,
                    glue_severity(ns.len(), addrs.len()),
                    format!(
                        "{} nameserver(s) resolve to {} address(es), all in {prefix}",
                        ns.len(),
                        addrs.len()
                    ),
                    "add a replica in a different /24 network".to_owned(),
                );
            }

            // --- stale parent NS (subsumes the Fig-13 drill-down) ------
            if let Some(class) = classify(probe) {
                if class != ConsistencyClass::Equal {
                    let p: BTreeSet<&DomainName> = probe.parent_ns.iter().collect();
                    let c: BTreeSet<&DomainName> = probe.child_ns.iter().collect();
                    let p_only: BTreeSet<&DomainName> = p.difference(&c).copied().collect();
                    let c_only: BTreeSet<&DomainName> = c.difference(&p).copied().collect();
                    let lame_in_diff = probe.servers.iter().any(|s| {
                        (p_only.contains(&s.host) || c_only.contains(&s.host)) && s.is_defective()
                    });
                    push(
                        SmellKind::StaleParentNs,
                        stale_severity(class, lame_in_diff),
                        format!(
                            "parent and child NS sets disagree ({}): parent-only={} child-only={}",
                            class.label(),
                            name_list(&p_only),
                            name_list(&c_only)
                        ),
                        format!(
                            "synchronize the parent NS RRset with the child (CSYNC/EPP): add {}; remove {}",
                            name_list(&c_only),
                            name_list(&p_only)
                        ),
                    );
                }
            }

            // --- provider monoculture ----------------------------------
            let (labels, private) = provider_labels(probe, seed, campaign);
            if !private && labels.len() == 1 && ns.len() >= 2 {
                let label = labels.iter().next().expect("nonempty");
                let (responsive, counts) =
                    seed_stats.get(seed).map(|(r, c)| (*r, c)).expect("seed seen in pass 1");
                let on_provider = counts.get(label).copied().unwrap_or(0);
                let share_ppm = if responsive == 0 {
                    0
                } else {
                    on_provider as u64 * 1_000_000 / responsive as u64
                };
                push(
                    SmellKind::ProviderMonoculture,
                    monoculture_severity(share_ppm),
                    format!(
                        "all {} nameservers on provider {label}, no private fallback ({on_provider} of {responsive} responsive domains under {seed} use it)",
                        ns.len()
                    ),
                    "add a secondary NS on an independent provider or a private replica".to_owned(),
                );
            }

            // --- lame-but-listed servers -------------------------------
            let listed = probe.servers.len();
            let lame: Vec<&DomainName> =
                probe.servers.iter().filter(|s| s.is_defective()).map(|s| &s.host).collect();
            if listed > 0 && !lame.is_empty() {
                let lame_set: BTreeSet<&DomainName> = lame.iter().copied().collect();
                push(
                    SmellKind::LameDelegation,
                    lame_severity(lame.len(), listed),
                    format!(
                        "{} of {listed} listed nameservers do not serve the zone: {}",
                        lame.len(),
                        name_list(&lame_set)
                    ),
                    format!("drop or repair the lame NS records {}", name_list(&lame_set)),
                );
            }
        }

        verdicts.sort_by(|a, b| {
            a.domain.to_string().cmp(&b.domain.to_string()).then(a.kind.cmp(&b.kind))
        });
        let mut by_kind: BTreeMap<String, usize> = BTreeMap::new();
        for v in &verdicts {
            *by_kind.entry(v.kind.as_str().to_owned()).or_insert(0) += 1;
        }
        let domains_affected =
            verdicts.iter().map(|v| v.domain.to_string()).collect::<BTreeSet<_>>().len();
        SmellAnalysis { verdicts, by_kind, domains_affected, evidence_cited: 0 }
    }

    /// Fills every verdict's evidence chain from the flight-recorder
    /// log: the per-kind filter picks the recorded exchanges that
    /// support the verdict (capped, in sequence order), falling back to
    /// the block's opening event so a sampled domain always yields at
    /// least one resolvable citation.
    pub fn attach_evidence(&mut self, log: &TraceLog) {
        let mut cited = 0u64;
        for v in &mut self.verdicts {
            let Some(block) = log.domain(&v.domain.to_string()) else { continue };
            v.evidence = cite(v.kind, &v.domain, block);
            cited += v.evidence.len() as u64;
        }
        self.evidence_cited = cited;
    }

    /// All verdicts on one domain, catalogue order.
    pub fn for_domain(&self, name: &str) -> Vec<&SmellVerdict> {
        self.verdicts.iter().filter(|v| v.domain.to_string() == name).collect()
    }

    /// By-kind summary: verdict count, affected domains, max severity.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(["smell", "verdicts", "max_severity"]);
        for kind in SmellKind::all() {
            let label = kind.as_str();
            let count = self.by_kind.get(label).copied().unwrap_or(0);
            let max = self
                .verdicts
                .iter()
                .filter(|v| v.kind == kind)
                .map(|v| v.severity)
                .max()
                .unwrap_or(0);
            t.push_row([label.to_owned(), count.to_string(), max.to_string()]);
        }
        t
    }

    /// The worst verdicts: severity descending, then `(domain, kind)`.
    pub fn verdict_table(&self, top: usize) -> TextTable {
        let mut ranked: Vec<&SmellVerdict> = self.verdicts.iter().collect();
        ranked.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.domain.to_string().cmp(&b.domain.to_string()))
                .then(a.kind.cmp(&b.kind))
        });
        let mut t = TextTable::new(["domain", "smell", "severity", "evidence", "refactoring"]);
        for v in ranked.into_iter().take(top) {
            t.push_row([
                v.domain.to_string(),
                v.kind.as_str().to_owned(),
                v.severity.to_string(),
                v.evidence.len().to_string(),
                v.refactoring.clone(),
            ]);
        }
        t
    }

    /// One-row-per-verdict CSV (the report bundle's `smells.csv`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("domain,country,smell,severity,evidence_events,refactoring\n");
        for v in &self.verdicts {
            let _ = writeln!(
                out,
                "{},{},{},{},{},\"{}\"",
                v.domain,
                v.country,
                v.kind.as_str(),
                v.severity,
                v.evidence.len(),
                v.refactoring.replace('"', "\"\"")
            );
        }
        out
    }
}

/// Is the rendered host name inside `domain`? (Resolve events carry the
/// host as a string; this mirrors `DomainName::is_within` textually.)
fn host_within(host: &str, domain: &DomainName) -> bool {
    let d = domain.to_string();
    host == d || host.ends_with(&format!(".{d}"))
}

/// The per-kind evidence filter: which recorded exchanges support a
/// verdict of this kind. Capped at [`MAX_CITATIONS`] in sequence order;
/// falls back to the block's first event so every sampled domain yields
/// a resolvable citation.
fn cite(kind: SmellKind, domain: &DomainName, block: &DomainBlock) -> Vec<Citation> {
    /// Citations per verdict — enough to show the pattern without
    /// ballooning the report.
    const MAX_CITATIONS: usize = 8;
    let picked: Vec<&govdns_trace::TraceEvent> = block
        .events
        .iter()
        .filter(|e| match kind {
            // The referral that handed out the in-bailiwick targets, and
            // the side-resolutions of the zone's own nameservers.
            SmellKind::CyclicDependency => match &e.data {
                TraceData::Referral { .. } => true,
                TraceData::Resolve { host, .. } => host_within(host, domain),
                _ => false,
            },
            // The referral's target count plus every glue resolution —
            // together they show the single /24.
            SmellKind::SingleHomedGlue => {
                matches!(&e.data, TraceData::Referral { .. } | TraceData::Resolve { .. })
            }
            // The two NS views: parent-side and child-side responses,
            // plus the referral between them.
            SmellKind::StaleParentNs => match e.step {
                Step::ParentNs | Step::ChildNs => {
                    matches!(&e.data, TraceData::Response { .. })
                }
                Step::Referral => matches!(&e.data, TraceData::Referral { .. }),
                _ => false,
            },
            // The glue resolutions that place every NS on the provider.
            SmellKind::ProviderMonoculture => {
                matches!(&e.data, TraceData::Resolve { addrs, .. } if !addrs.is_empty())
            }
            // Failed glue resolutions and non-authoritative answers from
            // listed servers.
            SmellKind::LameDelegation => match &e.data {
                TraceData::Resolve { addrs, .. } => addrs.is_empty(),
                TraceData::Response { class, .. } => {
                    matches!(e.step, Step::ChildNs | Step::DirectProbe) && class != "authoritative"
                }
                _ => false,
            },
        })
        .take(MAX_CITATIONS)
        .collect();
    let picked =
        if picked.is_empty() { block.events.first().into_iter().collect() } else { picked };
    picked
        .into_iter()
        .map(|e| Citation { seq: e.seq, step: e.step.as_str().to_owned(), line: e.render() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};
    use govdns_world::{MatchRule, MatchTarget, ProviderMatcher};

    fn kinds_for<'a>(a: &'a SmellAnalysis, domain: &str) -> Vec<SmellKind> {
        a.for_domain(domain).iter().map(|v| v.kind).collect()
    }

    fn verdict<'a>(a: &'a SmellAnalysis, domain: &str, kind: SmellKind) -> &'a SmellVerdict {
        a.for_domain(domain)
            .into_iter()
            .find(|v| v.kind == kind)
            .unwrap_or_else(|| panic!("no {kind:?} verdict on {domain}"))
    }

    #[test]
    fn self_contained_ns_set_is_cyclic() {
        let probes = vec![
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.a.gov.zz", "ns2.a.gov.zz"])
                    .child(&["ns1.a.gov.zz", "ns2.a.gov.zz"])
                    .serving("ns1.a.gov.zz", [192, 0, 2, 1])
                    .serving("ns2.a.gov.zz", [192, 0, 2, 2])
                    .build(),
                "zz",
            ),
            // One out-of-bailiwick NS breaks the cycle.
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.b.gov.zz", "ns.ext.net"])
                    .child(&["ns1.b.gov.zz", "ns.ext.net"])
                    .serving("ns1.b.gov.zz", [192, 0, 2, 3])
                    .serving("ns.ext.net", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
        ];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        assert!(kinds_for(&a, "a.gov.zz").contains(&SmellKind::CyclicDependency));
        assert!(!kinds_for(&a, "b.gov.zz").contains(&SmellKind::CyclicDependency));
        let v = verdict(&a, "a.gov.zz", SmellKind::CyclicDependency);
        assert!(v.detail.contains("bootstraps only through"), "{}", v.detail);
        assert!(v.refactoring.contains("out-of-bailiwick"));
    }

    #[test]
    fn mutual_hosting_is_cyclic_and_worst() {
        let probes = vec![
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns.b.gov.zz"])
                    .child(&["ns.b.gov.zz"])
                    .serving("ns.b.gov.zz", [192, 0, 2, 1])
                    .build(),
                "zz",
            ),
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns.a.gov.zz"])
                    .child(&["ns.a.gov.zz"])
                    .serving("ns.a.gov.zz", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
        ];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        for d in ["a.gov.zz", "b.gov.zz"] {
            let v = verdict(&a, d, SmellKind::CyclicDependency);
            assert_eq!(v.severity, 90);
            assert!(v.detail.contains("mutual dependency"), "{}", v.detail);
        }
    }

    #[test]
    fn one_prefix_is_single_homed() {
        let probes = vec![
            (
                ProbeBuilder::new("a.gov.zz")
                    .parent(&["ns1.x.net", "ns2.x.net"])
                    .child(&["ns1.x.net", "ns2.x.net"])
                    .serving("ns1.x.net", [192, 0, 2, 1])
                    .serving("ns2.x.net", [192, 0, 2, 9])
                    .build(),
                "zz",
            ),
            (
                ProbeBuilder::new("b.gov.zz")
                    .parent(&["ns1.x.net", "ns2.y.net"])
                    .child(&["ns1.x.net", "ns2.y.net"])
                    .serving("ns1.x.net", [192, 0, 2, 1])
                    .serving("ns2.y.net", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
        ];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        let v = verdict(&a, "a.gov.zz", SmellKind::SingleHomedGlue);
        assert_eq!(v.severity, glue_severity(2, 2));
        assert!(v.detail.contains("192.0.2.0/24"), "{}", v.detail);
        assert!(!kinds_for(&a, "b.gov.zz").contains(&SmellKind::SingleHomedGlue));
    }

    #[test]
    fn disagreeing_ns_sets_are_stale_with_sync_plan() {
        let probes = vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["old.x.net", "shared.x.net"])
                .child(&["new.x.net", "shared.x.net"])
                .serving("shared.x.net", [192, 0, 2, 1])
                .serving("new.x.net", [198, 51, 100, 1])
                .dead("old.x.net", [203, 0, 113, 1])
                .build(),
            "zz",
        )];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        let v = verdict(&a, "a.gov.zz", SmellKind::StaleParentNs);
        // Partial overlap (60) + lame server in the difference (10).
        assert_eq!(v.severity, 70);
        assert!(v.refactoring.contains("add [new.x.net]"), "{}", v.refactoring);
        assert!(v.refactoring.contains("remove [old.x.net]"), "{}", v.refactoring);
    }

    #[test]
    fn equal_ns_sets_are_not_stale() {
        let probes = vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["ns1.x.net", "ns2.y.net"])
                .child(&["ns1.x.net", "ns2.y.net"])
                .serving("ns1.x.net", [192, 0, 2, 1])
                .serving("ns2.y.net", [198, 51, 100, 1])
                .build(),
            "zz",
        )];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        assert!(!kinds_for(&a, "a.gov.zz").contains(&SmellKind::StaleParentNs));
    }

    #[test]
    fn single_provider_without_fallback_is_monoculture() {
        let mut f = CampaignFixture::default();
        f.matchers = vec![ProviderMatcher {
            label: "hichina.com".to_owned(),
            rule: MatchRule::RegisteredDomain("hichina.com".parse().unwrap()),
            target: MatchTarget::Hostname,
        }];
        let probes = vec![
            (
                ProbeBuilder::new("a.gov.cn")
                    .parent(&["dns1.hichina.com", "dns2.hichina.com"])
                    .child(&["dns1.hichina.com", "dns2.hichina.com"])
                    .serving("dns1.hichina.com", [192, 0, 2, 1])
                    .serving("dns2.hichina.com", [198, 51, 100, 1])
                    .build(),
                "cn",
            ),
            // Provider + private replica: not a monoculture.
            (
                ProbeBuilder::new("b.gov.cn")
                    .parent(&["dns1.hichina.com", "ns1.b.gov.cn"])
                    .child(&["dns1.hichina.com", "ns1.b.gov.cn"])
                    .serving("dns1.hichina.com", [192, 0, 2, 1])
                    .serving("ns1.b.gov.cn", [203, 0, 113, 1])
                    .build(),
                "cn",
            ),
        ];
        let a = SmellAnalysis::compute(&dataset(probes), &f.campaign());
        let v = verdict(&a, "a.gov.cn", SmellKind::ProviderMonoculture);
        assert!(v.detail.contains("hichina.com"), "{}", v.detail);
        // Both responsive domains use the provider: share 100% → 80.
        assert_eq!(v.severity, monoculture_severity(1_000_000));
        assert!(!kinds_for(&a, "b.gov.cn").contains(&SmellKind::ProviderMonoculture));
    }

    #[test]
    fn defective_listed_servers_are_lame() {
        let probes = vec![(
            ProbeBuilder::new("a.gov.zz")
                .parent(&["ns1.x.net", "ns2.x.net"])
                .child(&["ns1.x.net", "ns2.x.net"])
                .serving("ns1.x.net", [192, 0, 2, 1])
                .dead("ns2.x.net", [198, 51, 100, 1])
                .build(),
            "zz",
        )];
        let a = SmellAnalysis::compute(&dataset(probes), &CampaignFixture::default().campaign());
        let v = verdict(&a, "a.gov.zz", SmellKind::LameDelegation);
        assert_eq!(v.severity, lame_severity(1, 2));
        assert!(v.detail.contains("ns2.x.net"), "{}", v.detail);
        assert!(v.refactoring.contains("drop or repair"));
    }

    #[test]
    fn severity_is_monotone_and_bounded() {
        // Lame: more lame servers → worse; all-lame is 100.
        assert!(lame_severity(1, 4) < lame_severity(2, 4));
        assert_eq!(lame_severity(4, 4), 100);
        // Glue: fewer hosts/addresses → worse.
        assert!(glue_severity(2, 2) < glue_severity(1, 2));
        assert!(glue_severity(1, 2) < glue_severity(1, 1));
        // Stale: the class ladder is ordered.
        assert!(
            stale_severity(ConsistencyClass::PSubsetC, false)
                < stale_severity(ConsistencyClass::DisjointNoIp, false)
        );
        // Monoculture: share-monotone.
        assert!(monoculture_severity(100_000) <= monoculture_severity(900_000));
        for s in [
            cycle_severity(true, 0, 0, 0),
            cycle_severity(false, 1, 3, 3),
            glue_severity(1, 1),
            stale_severity(ConsistencyClass::DisjointNoIp, true),
            monoculture_severity(2_000_000),
            lame_severity(9, 9),
        ] {
            assert!(s <= 100, "severity {s} out of range");
        }
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in SmellKind::all() {
            assert_eq!(SmellKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(SmellKind::parse("warp"), None);
    }
}
