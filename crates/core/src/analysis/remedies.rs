//! §V-B — potential remedies, made executable: given a probed domain,
//! derive the concrete remediation actions its operator (or the parent
//! zone's) should take, in the spirit of the tooling the paper surveys
//! (zonemaster-style checks, CSYNC child-to-parent synchronization, EPP
//! updates, registry locks).

use serde::{Deserialize, Serialize};

use govdns_model::DomainName;

use crate::analysis::consistency::{classify, ConsistencyClass};
use crate::probe::DomainProbe;
use crate::{Campaign, MeasurementDataset};

/// One remediation action.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Remedy {
    /// Remove a stale delegation from the parent zone (the whole domain
    /// no longer answers).
    RemoveDelegation,
    /// Drop one defective NS record from both parent and child.
    DropNameserver(DomainName),
    /// Fix a typo'd or unresolvable NS target.
    FixNameserverName(DomainName),
    /// Synchronize the parent's NS RRset to the child's (the CSYNC /
    /// EPP-update path). Carries the records to add and to remove on the
    /// parent side.
    SynchronizeParent {
        /// Records the parent is missing.
        add: Vec<DomainName>,
        /// Records the parent should drop.
        remove: Vec<DomainName>,
    },
    /// Re-register or renounce an expired nameserver domain immediately —
    /// it is open for hijack at the given price.
    ReclaimDanglingDomain {
        /// The registrable domain.
        name: DomainName,
        /// What an attacker would pay.
        price_usd: f64,
    },
    /// Investigate intermittent failures: the domain answered, but only
    /// after backoff retries or a second probing round (flapping server,
    /// aggressive rate limiter, or a lossy/truncating path).
    MonitorFlakiness,
    /// Re-probe these nameservers: a destination circuit breaker denied
    /// their exchanges (the host was failing hard enough to quarantine),
    /// so nothing definitive was measured about them.
    Quarantined(Vec<DomainName>),
    /// Add at least one more nameserver (single-NS deployment).
    AddReplica,
    /// Place nameservers in more than one /24 or AS.
    DiversifyPlacement,
    /// Request a registry lock: the domain's NS set is both valuable and
    /// churning.
    RegistryLock,
}

/// The remediation plan for one domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemediationPlan {
    /// The domain.
    pub domain: DomainName,
    /// Actions, most urgent first.
    pub remedies: Vec<Remedy>,
}

impl RemediationPlan {
    /// Whether nothing needs doing.
    pub fn is_empty(&self) -> bool {
        self.remedies.is_empty()
    }

    /// Whether any remedy addresses an active hijack exposure.
    pub fn has_hijack_exposure(&self) -> bool {
        self.remedies.iter().any(|r| matches!(r, Remedy::ReclaimDanglingDomain { .. }))
    }
}

/// Derives the remediation plan for one probed domain.
pub fn plan_for(probe: &DomainProbe, campaign: &Campaign<'_>) -> RemediationPlan {
    let mut remedies = Vec::new();

    // Hijack exposures first: any referenced NS domain that is open for
    // registration.
    for server in &probe.servers {
        if server.host.level() < 2 {
            continue;
        }
        let d_ns = server.host.suffix(2);
        if let Some(price) = campaign.registrar.price_of(&d_ns) {
            let remedy = Remedy::ReclaimDanglingDomain { name: d_ns, price_usd: price };
            if !remedies.contains(&remedy) {
                remedies.push(remedy);
            }
        }
    }

    // Quarantined nameservers, *before* the dead-zone conclusion: a
    // breaker-denied exchange measured nothing, so a zone that looks
    // dead only because its servers were quarantined needs a re-probe,
    // not a delegation removal.
    let quarantined: Vec<DomainName> = probe
        .servers
        .iter()
        .filter(|s| s.observations.iter().any(|o| o.class == crate::ResponseClass::Skipped))
        .map(|s| s.host.clone())
        .collect();
    if !quarantined.is_empty() {
        remedies.push(Remedy::Quarantined(quarantined.clone()));
    }

    // A completely dead zone: the delegation itself is the problem.
    if probe.parent_nonempty() && !probe.has_authoritative_answer() {
        if quarantined.is_empty() {
            remedies.push(Remedy::RemoveDelegation);
        }
        return RemediationPlan { domain: probe.domain.clone(), remedies };
    }

    // Per-nameserver defects.
    for server in &probe.servers {
        if !server.is_defective() {
            continue;
        }
        if server.unresolvable() {
            remedies.push(Remedy::FixNameserverName(server.host.clone()));
        } else {
            remedies.push(Remedy::DropNameserver(server.host.clone()));
        }
    }

    // Parent/child divergence: emit the CSYNC-shaped delta.
    if let Some(class) = classify(probe) {
        if class != ConsistencyClass::Equal {
            let add: Vec<DomainName> =
                probe.child_ns.iter().filter(|h| !probe.parent_ns.contains(h)).cloned().collect();
            let remove: Vec<DomainName> =
                probe.parent_ns.iter().filter(|h| !probe.child_ns.contains(h)).cloned().collect();
            remedies.push(Remedy::SynchronizeParent { add, remove });
        }
    }

    // Degraded availability: answered, but not cleanly.
    if probe.degraded() {
        remedies.push(Remedy::MonitorFlakiness);
    }

    // Replication and placement advice.
    let union = probe.ns_union();
    if union.len() == 1 && probe.has_authoritative_answer() {
        remedies.push(Remedy::AddReplica);
    }
    if union.len() >= 2 {
        let addrs = probe.ns_addrs();
        let prefixes: std::collections::BTreeSet<_> =
            addrs.iter().map(|&a| govdns_simnet::prefix24(a)).collect();
        if addrs.len() <= 1 || prefixes.len() <= 1 {
            remedies.push(Remedy::DiversifyPlacement);
        }
    }

    // Registry lock for domains that already show churn (a second round
    // was needed or the parent disagrees with the child).
    if probe.rounds > 1 && !remedies.is_empty() {
        remedies.push(Remedy::RegistryLock);
    }

    RemediationPlan { domain: probe.domain.clone(), remedies }
}

/// Aggregate remediation statistics over a dataset.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemediationSummary {
    /// Domains examined (with a live delegation).
    pub domains: usize,
    /// Domains needing at least one action.
    pub needing_action: usize,
    /// Stale delegations to remove.
    pub removals: usize,
    /// Nameserver records to drop or fix.
    pub ns_fixes: usize,
    /// Parent synchronizations (the CSYNC path).
    pub synchronizations: usize,
    /// Domains with an open hijack exposure.
    pub hijack_exposures: usize,
    /// Under-replicated or under-diversified deployments.
    pub placement_advice: usize,
    /// Domains flagged for flakiness follow-up (degraded answers).
    pub flakiness_followups: usize,
    /// Domains with breaker-quarantined nameservers needing a re-probe.
    pub quarantine_followups: usize,
}

impl RemediationSummary {
    /// Plans every responsive domain and tallies the actions.
    pub fn compute(ds: &MeasurementDataset, campaign: &Campaign<'_>) -> Self {
        let mut s = RemediationSummary::default();
        for probe in &ds.probes {
            if !probe.parent_nonempty() {
                continue;
            }
            s.domains += 1;
            let plan = plan_for(probe, campaign);
            if plan.is_empty() {
                continue;
            }
            s.needing_action += 1;
            if plan.has_hijack_exposure() {
                s.hijack_exposures += 1;
            }
            for r in &plan.remedies {
                match r {
                    Remedy::RemoveDelegation => s.removals += 1,
                    Remedy::DropNameserver(_) | Remedy::FixNameserverName(_) => s.ns_fixes += 1,
                    Remedy::SynchronizeParent { .. } => s.synchronizations += 1,
                    Remedy::AddReplica | Remedy::DiversifyPlacement => s.placement_advice += 1,
                    Remedy::MonitorFlakiness => s.flakiness_followups += 1,
                    Remedy::Quarantined(_) => s.quarantine_followups += 1,
                    Remedy::ReclaimDanglingDomain { .. } | Remedy::RegistryLock => {}
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::testutil::{dataset, n, CampaignFixture, ProbeBuilder};

    #[test]
    fn healthy_domain_needs_nothing() {
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns1.x", "ns2.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .serving("ns2.x", [198, 51, 100, 1])
            .build();
        let fixture = CampaignFixture::default();
        let plan = plan_for(&probe, &fixture.campaign());
        assert!(plan.is_empty(), "unexpected remedies: {:?}", plan.remedies);
    }

    #[test]
    fn stale_zone_gets_a_removal() {
        let probe =
            ProbeBuilder::new("a.gov.zz").parent(&["ns1.x"]).dead("ns1.x", [192, 0, 2, 1]).build();
        let fixture = CampaignFixture::default();
        let plan = plan_for(&probe, &fixture.campaign());
        assert_eq!(plan.remedies, vec![Remedy::RemoveDelegation]);
    }

    #[test]
    fn typo_and_lame_are_distinguished() {
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "pns12cloudns.net", "ns3.x"])
            .child(&["ns1.x", "pns12cloudns.net", "ns3.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .unresolvable("pns12cloudns.net")
            .lame("ns3.x", [192, 0, 2, 3])
            .build();
        let fixture = CampaignFixture::default();
        let plan = plan_for(&probe, &fixture.campaign());
        assert!(plan.remedies.contains(&Remedy::FixNameserverName(n("pns12cloudns.net"))));
        assert!(plan.remedies.contains(&Remedy::DropNameserver(n("ns3.x"))));
    }

    #[test]
    fn divergence_emits_csync_delta() {
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns9.x"])
            .child(&["ns1.x", "ns2.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .serving("ns2.x", [198, 51, 100, 1])
            .serving("ns9.x", [203, 0, 113, 1])
            .build();
        let fixture = CampaignFixture::default();
        let plan = plan_for(&probe, &fixture.campaign());
        assert!(plan.remedies.contains(&Remedy::SynchronizeParent {
            add: vec![n("ns2.x")],
            remove: vec![n("ns9.x")],
        }));
    }

    #[test]
    fn dangling_domain_is_flagged_for_reclaim() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("deaddns.net"), 11.99);
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.deaddns.net", "ns2.x"])
            .child(&["ns1.deaddns.net", "ns2.x"])
            .serving("ns2.x", [192, 0, 2, 1])
            .unresolvable("ns1.deaddns.net")
            .build();
        let plan = plan_for(&probe, &fixture.campaign());
        assert!(plan.has_hijack_exposure());
        assert!(plan
            .remedies
            .contains(&Remedy::ReclaimDanglingDomain { name: n("deaddns.net"), price_usd: 11.99 }));
    }

    #[test]
    fn single_ns_and_single_prefix_get_placement_advice() {
        let fixture = CampaignFixture::default();
        let single = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x"])
            .child(&["ns1.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .build();
        let plan = plan_for(&single, &fixture.campaign());
        assert!(plan.remedies.contains(&Remedy::AddReplica));

        let cramped = ProbeBuilder::new("b.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns1.x", "ns2.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .serving("ns2.x", [192, 0, 2, 2])
            .build();
        let plan = plan_for(&cramped, &fixture.campaign());
        assert!(plan.remedies.contains(&Remedy::DiversifyPlacement));
    }

    #[test]
    fn degraded_domain_gets_a_flakiness_followup() {
        let fixture = CampaignFixture::default();
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns1.x", "ns2.x"])
            .degraded_serving("ns1.x", [192, 0, 2, 1])
            .serving("ns2.x", [198, 51, 100, 1])
            .build();
        let plan = plan_for(&probe, &fixture.campaign());
        assert_eq!(plan.remedies, vec![Remedy::MonitorFlakiness]);

        let ds = dataset(vec![(probe, "zz")]);
        let s = RemediationSummary::compute(&ds, &fixture.campaign());
        assert_eq!(s.flakiness_followups, 1);
        assert_eq!(s.needing_action, 1);
    }

    #[test]
    fn quarantined_server_needs_a_reprobe_not_a_removal() {
        let fixture = CampaignFixture::default();
        // Both servers quarantined: the zone *looks* dead, but nothing
        // was actually measured — no RemoveDelegation.
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .quarantined("ns1.x", [192, 0, 2, 1])
            .quarantined("ns2.x", [192, 0, 2, 2])
            .build();
        let plan = plan_for(&probe, &fixture.campaign());
        assert_eq!(plan.remedies, vec![Remedy::Quarantined(vec![n("ns1.x"), n("ns2.x")])]);

        let ds = dataset(vec![(probe, "zz")]);
        let s = RemediationSummary::compute(&ds, &fixture.campaign());
        assert_eq!(s.quarantine_followups, 1);
        assert_eq!(s.removals, 0);
    }

    #[test]
    fn genuinely_dead_zone_still_gets_a_removal() {
        let fixture = CampaignFixture::default();
        let probe =
            ProbeBuilder::new("a.gov.zz").parent(&["ns1.x"]).dead("ns1.x", [192, 0, 2, 1]).build();
        let plan = plan_for(&probe, &fixture.campaign());
        assert_eq!(plan.remedies, vec![Remedy::RemoveDelegation]);
    }

    #[test]
    fn partially_quarantined_zone_keeps_its_other_findings() {
        let fixture = CampaignFixture::default();
        // One healthy server, one quarantined: the quarantine remedy
        // rides along with whatever else the plan finds.
        let probe = ProbeBuilder::new("a.gov.zz")
            .parent(&["ns1.x", "ns2.x"])
            .child(&["ns1.x", "ns2.x"])
            .serving("ns1.x", [192, 0, 2, 1])
            .quarantined("ns2.x", [198, 51, 100, 1])
            .build();
        let plan = plan_for(&probe, &fixture.campaign());
        assert!(plan.remedies.contains(&Remedy::Quarantined(vec![n("ns2.x")])));
        // The quarantined server never answered, so it also reads as
        // defective — that is fine; the quarantine entry explains why.
        assert!(plan.remedies.contains(&Remedy::DropNameserver(n("ns2.x"))));
    }

    #[test]
    fn summary_tallies_actions() {
        let mut fixture = CampaignFixture::default();
        fixture.registrar.mark_available(n("deaddns.net"), 5.0);
        let ds = dataset(vec![
            (
                ProbeBuilder::new("ok.gov.zz")
                    .parent(&["ns1.x", "ns2.x"])
                    .child(&["ns1.x", "ns2.x"])
                    .serving("ns1.x", [192, 0, 2, 1])
                    .serving("ns2.x", [198, 51, 100, 1])
                    .build(),
                "zz",
            ),
            (
                ProbeBuilder::new("stale.gov.zz")
                    .parent(&["ns1.stale.gov.zz"])
                    .dead("ns1.stale.gov.zz", [192, 0, 2, 9])
                    .build(),
                "zz",
            ),
            (
                ProbeBuilder::new("risky.gov.zz")
                    .parent(&["ns1.deaddns.net", "ns2.x"])
                    .child(&["ns1.deaddns.net", "ns2.x"])
                    .serving("ns2.x", [198, 51, 100, 2])
                    .unresolvable("ns1.deaddns.net")
                    .build(),
                "zz",
            ),
        ]);
        let s = RemediationSummary::compute(&ds, &fixture.campaign());
        assert_eq!(s.domains, 3);
        assert_eq!(s.needing_action, 2);
        assert_eq!(s.removals, 1);
        assert_eq!(s.hijack_exposures, 1);
        assert!(s.ns_fixes >= 1);
    }
}
