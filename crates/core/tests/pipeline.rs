//! End-to-end validation: run the complete pipeline against a generated
//! world and check (a) internal consistency, (b) agreement with the
//! generator's ground truth, and (c) the paper's headline shapes.

use std::sync::OnceLock;

use govdns_core::{report::Report, Campaign, RunnerConfig};
use govdns_world::{FaultClass, ProviderMatcher, World, WorldConfig, WorldGenerator};

struct Shared {
    world: World,
    matchers: Vec<ProviderMatcher>,
    report: Report,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let world = WorldGenerator::new(WorldConfig::small(1234).with_scale(0.03)).generate();
        let matchers = world.catalog.matchers();
        let report = {
            let campaign = Campaign::new(&world, &matchers);
            Report::generate(&campaign, RunnerConfig::default())
        };
        Shared { world, matchers, report }
    })
}

#[test]
fn seeds_match_ground_truth_d_gov() {
    let s = shared();
    let seeds = &s.report.dataset.seeds;
    assert_eq!(seeds.len(), 193);
    for seed in seeds {
        let want = s.world.d_gov(seed.country).expect("every country has a d_gov");
        assert_eq!(
            &seed.name, want,
            "seed for {} should be {want}, got {}",
            seed.country, seed.name
        );
    }
}

#[test]
fn discovery_finds_most_live_domains_and_no_transients() {
    let s = shared();
    let discovered: std::collections::BTreeSet<_> =
        s.report.dataset.discovered.iter().map(|d| d.name.clone()).collect();
    let window = govdns_model::DateRange::new(
        govdns_model::SimDate::from_ymd(2020, 1, 1),
        s.world.collection_date,
    );
    let mut expected = 0;
    let mut found = 0;
    for d in &s.world.truth().domains {
        // The pipeline keeps records with a ≥7-day *total* span that were
        // seen at all inside the window (the paper's two filters).
        let total_life: i64 = d.timeline.epochs.iter().map(|e| e.span.len_days()).sum();
        let in_window = d.timeline.active_in(&window);
        if total_life >= 7 && in_window {
            expected += 1;
            if discovered.contains(&d.timeline.name) {
                found += 1;
            }
        } else if total_life < 7 {
            // Transients must never be probed.
            assert!(
                !discovered.contains(&d.timeline.name),
                "transient {} should have been filtered",
                d.timeline.name
            );
        }
    }
    let recall = found as f64 / expected as f64;
    assert!(recall > 0.85, "discovery recall {recall} ({found}/{expected})");
}

#[test]
fn funnel_shape_matches_the_paper() {
    let s = shared();
    let f = s.report.funnel;
    // Paper: 147k queried → 115k parent-responsive → 96k non-empty.
    // The generated funnel is somewhat shallower (see EXPERIMENTS.md);
    // the ordering and the presence of both drops are the shape checks.
    let responsive_rate = f.parent_responsive as f64 / f.queried as f64;
    let nonempty_rate = f.parent_nonempty as f64 / f.queried as f64;
    assert!(
        (0.72..0.95).contains(&responsive_rate),
        "parent-responsive rate {responsive_rate} (funnel {f:?})"
    );
    assert!(
        (0.60..0.85).contains(&nonempty_rate),
        "parent-nonempty rate {nonempty_rate} (funnel {f:?})"
    );
    assert!(f.queried > f.parent_responsive && f.parent_responsive > f.parent_nonempty);
    assert!(f.parent_nonempty > f.child_responsive);
}

#[test]
fn replication_headlines() {
    let s = shared();
    let ar = &s.report.active_replication;
    // Paper: 98.4% of domains use ≥ 2 nameservers.
    assert!((96.0..100.0).contains(&ar.multi_ns_share), "multi-NS share {}", ar.multi_ns_share);
    // Paper: 60.1% of single-NS domains are stale.
    assert!(ar.d1ns_total > 0);
    assert!(
        (45.0..75.0).contains(&ar.d1ns_stale_share),
        "d1NS stale share {}",
        ar.d1ns_stale_share
    );
}

#[test]
fn pdns_growth_and_dip() {
    let s = shared();
    let y = &s.report.yearly;
    let growth = y.domains(2020) as f64 / y.domains(2011) as f64;
    assert!((1.4..2.1).contains(&growth), "growth {growth}");
    assert!(y.domains(2019) > y.domains(2020), "2019→2020 dip missing");
    assert!(y.nameservers(2020) > y.nameservers(2011));
}

#[test]
fn private_share_separation() {
    let s = shared();
    for &(year, d1, all) in &s.report.private_share.rows {
        if d1 > 0.0 {
            assert!(d1 > all, "year {year}: d1NS private {d1}% should exceed overall {all}%");
        }
        assert!(all < 45.0, "year {year}: overall private {all}%");
    }
    // The paper's bands: d1NS > 71%, overall < 34%.
    let (_, d1_2020, all_2020) = s.report.private_share.rows[9];
    assert!(d1_2020 > 60.0, "2020 d1NS private {d1_2020}");
    assert!(all_2020 < 40.0, "2020 overall private {all_2020}");
}

#[test]
fn diversity_total_tracks_table_one() {
    let s = shared();
    let t = s.report.diversity.total();
    assert!(t.domains > 1000, "multi-NS domains {}", t.domains);
    // Paper: 89.8 / 71.5 / 32.9.
    assert!((80.0..98.0).contains(&t.multi_ip_pct), "multi-ip {}", t.multi_ip_pct);
    assert!((60.0..85.0).contains(&t.multi_24_pct), "multi-24 {}", t.multi_24_pct);
    assert!((22.0..48.0).contains(&t.multi_asn_pct), "multi-asn {}", t.multi_asn_pct);
    // Ordering holds: ip ≥ 24 ≥ asn.
    assert!(t.multi_ip_pct >= t.multi_24_pct && t.multi_24_pct >= t.multi_asn_pct);
}

#[test]
fn thailand_is_the_shared_address_outlier() {
    let s = shared();
    let th = s
        .report
        .diversity
        .rows
        .iter()
        .find(|r| r.country.is_some_and(|c| c.as_str() == "th"))
        .expect("Thailand is in the top ten");
    let total = s.report.diversity.total();
    assert!(
        th.multi_ip_pct < total.multi_ip_pct - 20.0,
        "Thailand multi-ip {} vs total {}",
        th.multi_ip_pct,
        total.multi_ip_pct
    );
}

#[test]
fn provider_centralization_grows() {
    let s = shared();
    let p = &s.report.providers;
    // Amazon and Cloudflare: near-zero in 2011, thousands-equivalent in
    // 2020 (orders of magnitude at scale).
    for label in ["AWS DNS", "cloudflare.com"] {
        let d2011 = p.year(2011).unwrap().usage(label).domains;
        let d2020 = p.year(2020).unwrap().usage(label).domains;
        assert!(
            d2020 >= (10 * d2011.max(1)).min(d2011 + 50),
            "{label}: {d2011} → {d2020} is not order-of-magnitude growth"
        );
    }
    // The country-coverage headline grows substantially (52 → 85 ≈ 60%).
    let c2011 = p.top_provider_countries(2011);
    let c2020 = p.top_provider_countries(2020);
    assert!(c2020 as f64 > c2011 as f64 * 1.3, "country coverage {c2011} → {c2020}");
}

#[test]
fn defective_delegations_match_rates() {
    let s = shared();
    let d = &s.report.delegation;
    // Paper: 29.5% any, 25.4% partial-parent.
    assert!(
        (20.0..40.0).contains(&d.any_defective_pct()),
        "any defective {}",
        d.any_defective_pct()
    );
    assert!(
        d.partial_parent_pct() < d.any_defective_pct(),
        "partial {} should be below any {}",
        d.partial_parent_pct(),
        d.any_defective_pct()
    );
    assert!(d.partial_parent_pct() > 10.0, "partial {}", d.partial_parent_pct());
}

#[test]
fn dangling_ns_domains_are_found_and_priced() {
    let s = shared();
    let d = &s.report.delegation;
    assert!(!d.available.is_empty(), "no registrable d_ns found");
    assert!(d.affected_domains >= d.available.len() / 2);
    assert!(d.affected_countries >= 2);
    let cdf = &d.cost_cdf;
    assert!(cdf.min().unwrap() >= 0.01);
    assert!(cdf.max().unwrap() <= 20_000.0);
    let median = cdf.quantile(0.5);
    assert!((1.0..200.0).contains(&median), "median price {median}");
    // Cross-check against truth: every domain the generator marked
    // dangling+not-fully-stale should be discoverable this way.
    let truth_dangling = s
        .world
        .truth()
        .domains
        .iter()
        .filter(|t| t.faults.has(FaultClass::DanglingRegistrable))
        .count();
    assert!(
        d.affected_domains * 3 >= truth_dangling,
        "found {} of {} injected dangling domains",
        d.affected_domains,
        truth_dangling
    );
}

#[test]
fn consistency_tracks_fig13() {
    let s = shared();
    let c = &s.report.consistency;
    assert!(c.comparable > 1000);
    // Paper: 76.8% equal overall; 93.5% at the second level; ≤77% deeper.
    assert!((68.0..88.0).contains(&c.equal_pct), "equal {}", c.equal_pct);
    assert!(
        c.equal_pct_second_level > c.equal_pct_deeper,
        "second-level {} should exceed deeper {}",
        c.equal_pct_second_level,
        c.equal_pct_deeper
    );
    // Paper: 40.9% of disagreeing domains also have defective servers.
    assert!(
        (20.0..70.0).contains(&c.disagree_with_lame_pct),
        "disagree-with-lame {}",
        c.disagree_with_lame_pct
    );
    // All five non-equal classes observed.
    for class in
        ["P ⊂ C", "C ⊂ P", "partial overlap", "disjoint, IPs overlap", "disjoint, IPs disjoint"]
    {
        assert!(
            c.by_class.get(class).copied().unwrap_or(0) > 0,
            "class {class} never observed: {:?}",
            c.by_class
        );
    }
}

#[test]
fn parked_dangling_surface_detected() {
    let s = shared();
    let c = &s.report.consistency;
    assert!(!c.parked.is_empty(), "no parked dangling d_ns found");
    assert!(c.parked_min_price.unwrap() >= 300.0, "min price {:?}", c.parked_min_price);
    assert!(c.parked_affected_domains >= c.parked.len());
}

#[test]
fn fault_truth_agreement_per_domain() {
    // Spot-check: fully-stale truth domains show no authoritative answer;
    // clean truth domains do.
    let s = shared();
    let by_name: std::collections::BTreeMap<_, _> =
        s.report.dataset.probes.iter().map(|p| (p.domain.clone(), p)).collect();
    let mut checked_clean = 0;
    let mut checked_stale = 0;
    for t in &s.world.truth().domains {
        let Some(probe) = by_name.get(&t.timeline.name) else { continue };
        if t.faults.is_clean() && t.alive_2021 && !t.child_ns.is_empty() {
            assert!(
                probe.has_authoritative_answer(),
                "clean domain {} has no authoritative answer",
                t.timeline.name
            );
            checked_clean += 1;
        }
        if t.faults.has(FaultClass::FullyStale) {
            assert!(
                !probe.has_authoritative_answer(),
                "stale domain {} produced an authoritative answer",
                t.timeline.name
            );
            checked_stale += 1;
        }
    }
    assert!(checked_clean > 500, "clean checks: {checked_clean}");
    assert!(checked_stale > 30, "stale checks: {checked_stale}");
}

#[test]
fn level_mix_matches_the_paper() {
    let s = shared();
    let l = s.report.levels;
    // Paper: <1% second, 85.4% third, 10.9% fourth.
    // Scale note: the 193 d_gov apexes weigh more at 3% scale than at
    // paper scale, so the second-level share runs a little high.
    assert!(l.second < 5.0, "second-level {l:?}");
    assert!((70.0..92.0).contains(&l.third), "third-level {l:?}");
    assert!((5.0..22.0).contains(&l.fourth), "fourth-level {l:?}");
}

#[test]
fn report_renders_every_section() {
    let s = shared();
    let text = s.report.render();
    for needle in [
        "collection funnel",
        "Fig 2/3",
        "Fig 4",
        "Fig 6",
        "Fig 7",
        "Fig 8",
        "Fig 9",
        "Table I",
        "Table II",
        "Table III",
        "Fig 10",
        "Fig 11",
        "Fig 12",
        "Fig 13",
        "Fig 14",
        "inconsistency-only hijack",
    ] {
        assert!(text.contains(needle), "report missing section {needle}");
    }
    // Usable by the matchers too.
    assert!(!s.matchers.is_empty());
}

#[test]
fn chinese_provider_concentration_reproduced() {
    // §IV-A text: over half of gov.cn's responsive subdomains use
    // HiChina (38%), XinCache (19%), or DNS-DIY (10.8%); gov.br's top
    // provider holds only ~6%.
    let s = shared();
    let cn = s
        .report
        .concentration
        .seed(&"gov.cn".parse().unwrap())
        .expect("gov.cn has responsive domains");
    let share = |label: &str| {
        cn.providers
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, n)| 100.0 * n as f64 / cn.responsive as f64)
            .unwrap_or(0.0)
    };
    let hichina = share("hichina.com");
    let xincache = share("xincache.com");
    let dnsdiy = share("dns-diy.com");
    assert!((25.0..50.0).contains(&hichina), "hichina {hichina}");
    assert!(xincache > 8.0, "xincache {xincache}");
    assert!(dnsdiy > 4.0, "dns-diy {dnsdiy}");
    assert!(
        hichina + xincache + dnsdiy > 50.0,
        "three Chinese providers should cover half of gov.cn"
    );
    // Brazil's ecosystem stays fragmented.
    let br = s.report.concentration.seed(&"gov.br".parse().unwrap()).unwrap();
    assert!(
        br.top_share_pct() < 20.0,
        "gov.br top provider {} at {:.1}%",
        br.providers.first().map(|(l, _)| l.as_str()).unwrap_or("-"),
        br.top_share_pct()
    );
    assert!(cn.hhi > br.hhi, "cn HHI {} should exceed br HHI {}", cn.hhi, br.hhi);
}

#[test]
fn remediation_workload_is_consistent_with_defects() {
    let s = shared();
    let r = &s.report.remedies;
    let d = &s.report.delegation;
    assert_eq!(r.domains, d.domains);
    // Every fully defective delegation needs a removal.
    assert!(r.removals >= d.fully_defective);
    // Hijack exposures can exceed the §IV-C count (remedies also scan
    // responsive parked hosts) but must cover it.
    assert!(r.hijack_exposures + 5 >= d.affected_domains.min(r.domains));
    assert!(r.needing_action >= d.any_defective);
    assert!(r.needing_action <= r.domains);
}

#[test]
fn white_label_provider_identified_through_soa() {
    // The catalog's "brandhost.example" provider uses anonymous
    // dns-cluster<k>.net hostnames; only the SOA RNAME it stamps on
    // customer zones identifies it — the paper's MNAME/RNAME method.
    let s = shared();
    let y2020 = s.report.providers.year(2020).expect("2020 stats exist");
    let branded = y2020.usage("brandhost.example");
    assert!(
        branded.domains > 0,
        "brandhost customers should be classified via SOA, got {:?}",
        y2020.per_label.keys().collect::<Vec<_>>()
    );
    // Without the SOA path these would scatter over dns-cluster domains;
    // the branded label must dominate the scattered residue.
    let scattered: usize = y2020
        .per_label
        .iter()
        .filter(|(k, _)| k.starts_with("dns-cluster"))
        .map(|(_, v)| v.domains)
        .sum();
    assert!(branded.domains > scattered, "branded {} vs scattered {scattered}", branded.domains);
}

#[test]
fn dataset_summary_csv_is_complete() {
    let s = shared();
    let csv = s.report.dataset.to_summary_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), s.report.dataset.probes.len() + 1);
    assert!(lines[0].starts_with("domain,country,seed"));
    // Every line parses to the same column count.
    let cols = lines[0].split(',').count();
    // (No generated field contains commas, so plain splitting is sound.)
    assert!(lines.iter().all(|l| l.split(',').count() == cols));
}

#[test]
fn seed_quirk_counts_match_the_paper() {
    let s = shared();
    let seeds = &s.report.dataset.seeds;
    let unresolved = seeds.iter().filter(|x| !x.portal_resolved).count();
    assert_eq!(unresolved, 11, "§III-A: eleven unresolvable portal links");
    let msq = seeds
        .iter()
        .filter(|x| x.provenance == govdns_core::seed::SeedProvenance::MsqFallback)
        .count();
    assert_eq!(msq, 3, "two MSQ mismatches + one squatted portal");
    let registered =
        seeds.iter().filter(|x| x.kind == govdns_core::seed::SeedKind::RegisteredDomain).count();
    assert_eq!(registered, 4, "laogov, timor-leste, jis, regjeringen");
    // Registered-domain seeds carry Web Archive evidence.
    assert!(seeds
        .iter()
        .filter(|x| x.kind == govdns_core::seed::SeedKind::RegisteredDomain)
        .all(|x| x.earliest_government_use.is_some()));
}
