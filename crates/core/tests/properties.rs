//! Property tests for the pipeline's pure stages: discovery soundness and
//! the disposable-name heuristic.

use proptest::prelude::*;

use govdns_core::discovery::{discover, looks_disposable, DiscoveryConfig};
use govdns_core::seed::{SeedDomain, SeedKind, SeedProvenance};
use govdns_core::Campaign;
use govdns_model::{DateRange, DomainName, RecordData, SimDate};
use govdns_pdns::PdnsDb;
use govdns_world::CountryCode;

struct Fixture {
    unkb: govdns_world::UnKnowledgeBase,
    docs: govdns_world::RegistryDocs,
    webarchive: govdns_world::WebArchive,
    network: govdns_simnet::SimNetwork,
    roots: Vec<std::net::Ipv4Addr>,
    asn_db: govdns_simnet::AsnDb,
    registrar: govdns_world::Registrar,
    countries: Vec<govdns_world::Country>,
}

impl Default for Fixture {
    fn default() -> Self {
        Fixture {
            unkb: govdns_world::UnKnowledgeBase::new(),
            docs: govdns_world::RegistryDocs::new(),
            webarchive: govdns_world::WebArchive::new(),
            network: govdns_simnet::SimNetwork::new(0),
            roots: vec![std::net::Ipv4Addr::new(10, 0, 0, 1)],
            asn_db: govdns_simnet::AsnDb::new(),
            registrar: govdns_world::Registrar::new(),
            countries: govdns_world::countries(),
        }
    }
}

fn campaign<'a>(f: &'a Fixture, pdns: &'a PdnsDb) -> Campaign<'a> {
    Campaign {
        unkb: &f.unkb,
        registry_docs: &f.docs,
        webarchive: &f.webarchive,
        pdns,
        network: &f.network,
        roots: &f.roots,
        asn_db: &f.asn_db,
        registrar: &f.registrar,
        matchers: &[],
        countries: &f.countries,
        collection_date: SimDate::from_ymd(2021, 4, 15),
    }
}

fn seed(name: &str, cc: &str) -> SeedDomain {
    SeedDomain {
        country: CountryCode::new(cc),
        name: name.parse().unwrap(),
        kind: SeedKind::ReservedSuffix,
        earliest_government_use: None,
        provenance: SeedProvenance::PortalLink,
        portal_resolved: true,
    }
}

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z]{1,8}", 1..3)
        .prop_map(|labels| format!("{}.gov.zz", labels.join(".")).parse().unwrap())
}

fn span_strategy() -> impl Strategy<Value = DateRange> {
    // 2009-2021-ish day numbers.
    (14_300i64..18_700, 0i64..1_000).prop_map(|(start, len)| {
        DateRange::new(SimDate::from_days(start), SimDate::from_days(start + len))
    })
}

proptest! {
    /// Discovery output is sound and complete w.r.t. its spec: exactly
    /// the PDNS names under the seed whose (stable) records touch the
    /// window and that don't look disposable.
    #[test]
    fn discovery_is_sound_and_complete(
        rows in prop::collection::vec((name_strategy(), span_strategy()), 0..30),
    ) {
        let mut pdns = PdnsDb::new();
        for (name, span) in &rows {
            pdns.observe_span(
                name.clone(),
                RecordData::Ns("ns1.prov.example".parse().unwrap()),
                *span,
                1,
            );
        }
        let f = Fixture::default();
        let c = campaign(&f, &pdns);
        let cfg = DiscoveryConfig::paper(c.collection_date);
        let got: std::collections::BTreeSet<String> =
            discover(&c, &[seed("gov.zz", "zz")], cfg)
                .into_iter()
                .map(|d| d.name.to_string())
                .collect();

        // Recompute the expectation from the spec.
        let mut expected: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        for e in pdns.search_subtree(&"gov.zz".parse().unwrap()) {
            let stable = e.span_days() >= 7;
            let in_window = e.active_in(&cfg.window);
            if stable && in_window && !looks_disposable(&e.name) {
                expected.insert(e.name.to_string());
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// The disposable heuristic never fires on word-plus-counter labels
    /// (the shape real agencies use) and always fires on long hex blobs.
    #[test]
    fn disposable_heuristic_boundaries(
        word in "[g-z][g-z]{2,9}",
        counter in 0u32..10_000,
        blob in "[0-9a-f]{8,16}",
    ) {
        let agency: DomainName =
            format!("{word}{counter}.gov.zz").parse().unwrap();
        prop_assert!(!looks_disposable(&agency), "{agency}");
        // A blob needs ≥2 digits to trip the filter; make sure of it.
        let digits = blob.chars().filter(|c| c.is_ascii_digit()).count();
        let hexname: DomainName = format!("{blob}.gov.zz").parse().unwrap();
        prop_assert_eq!(looks_disposable(&hexname), digits >= 2, "{}", hexname);
    }
}
