//! Property tests for the pipeline's pure stages: discovery soundness,
//! the disposable-name heuristic, and the destination circuit-breaker
//! state machine.

use proptest::prelude::*;

use govdns_core::discovery::{discover, looks_disposable, DiscoveryConfig};
use govdns_core::seed::{SeedDomain, SeedKind, SeedProvenance};
use govdns_core::{BreakerAdmission, BreakerBank, BreakerPolicy, Campaign};
use govdns_model::{DateRange, DomainName, RecordData, SimDate};
use govdns_pdns::PdnsDb;
use govdns_world::CountryCode;

struct Fixture {
    unkb: govdns_world::UnKnowledgeBase,
    docs: govdns_world::RegistryDocs,
    webarchive: govdns_world::WebArchive,
    network: govdns_simnet::SimNetwork,
    roots: Vec<std::net::Ipv4Addr>,
    asn_db: govdns_simnet::AsnDb,
    registrar: govdns_world::Registrar,
    countries: Vec<govdns_world::Country>,
}

impl Default for Fixture {
    fn default() -> Self {
        Fixture {
            unkb: govdns_world::UnKnowledgeBase::new(),
            docs: govdns_world::RegistryDocs::new(),
            webarchive: govdns_world::WebArchive::new(),
            network: govdns_simnet::SimNetwork::new(0),
            roots: vec![std::net::Ipv4Addr::new(10, 0, 0, 1)],
            asn_db: govdns_simnet::AsnDb::new(),
            registrar: govdns_world::Registrar::new(),
            countries: govdns_world::countries(),
        }
    }
}

fn campaign<'a>(f: &'a Fixture, pdns: &'a PdnsDb) -> Campaign<'a> {
    Campaign {
        unkb: &f.unkb,
        registry_docs: &f.docs,
        webarchive: &f.webarchive,
        pdns,
        network: &f.network,
        roots: &f.roots,
        asn_db: &f.asn_db,
        registrar: &f.registrar,
        matchers: &[],
        countries: &f.countries,
        collection_date: SimDate::from_ymd(2021, 4, 15),
    }
}

fn seed(name: &str, cc: &str) -> SeedDomain {
    SeedDomain {
        country: CountryCode::new(cc),
        name: name.parse().unwrap(),
        kind: SeedKind::ReservedSuffix,
        earliest_government_use: None,
        provenance: SeedProvenance::PortalLink,
        portal_resolved: true,
    }
}

fn name_strategy() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z]{1,8}", 1..3)
        .prop_map(|labels| format!("{}.gov.zz", labels.join(".")).parse().unwrap())
}

fn span_strategy() -> impl Strategy<Value = DateRange> {
    // 2009-2021-ish day numbers.
    (14_300i64..18_700, 0i64..1_000).prop_map(|(start, len)| {
        DateRange::new(SimDate::from_days(start), SimDate::from_days(start + len))
    })
}

proptest! {
    /// Discovery output is sound and complete w.r.t. its spec: exactly
    /// the PDNS names under the seed whose (stable) records touch the
    /// window and that don't look disposable.
    #[test]
    fn discovery_is_sound_and_complete(
        rows in prop::collection::vec((name_strategy(), span_strategy()), 0..30),
    ) {
        let mut pdns = PdnsDb::new();
        for (name, span) in &rows {
            pdns.observe_span(
                name.clone(),
                RecordData::Ns("ns1.prov.example".parse().unwrap()),
                *span,
                1,
            );
        }
        let f = Fixture::default();
        let c = campaign(&f, &pdns);
        let cfg = DiscoveryConfig::paper(c.collection_date);
        let got: std::collections::BTreeSet<String> =
            discover(&c, &[seed("gov.zz", "zz")], cfg)
                .into_iter()
                .map(|d| d.name.to_string())
                .collect();

        // Recompute the expectation from the spec.
        let mut expected: std::collections::BTreeSet<String> =
            std::collections::BTreeSet::new();
        for e in pdns.search_subtree(&"gov.zz".parse().unwrap()) {
            let stable = e.span_days() >= 7;
            let in_window = e.active_in(&cfg.window);
            if stable && in_window && !looks_disposable(&e.name) {
                expected.insert(e.name.to_string());
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// The disposable heuristic never fires on word-plus-counter labels
    /// (the shape real agencies use) and always fires on long hex blobs.
    #[test]
    fn disposable_heuristic_boundaries(
        word in "[g-z][g-z]{2,9}",
        counter in 0u32..10_000,
        blob in "[0-9a-f]{8,16}",
    ) {
        let agency: DomainName =
            format!("{word}{counter}.gov.zz").parse().unwrap();
        prop_assert!(!looks_disposable(&agency), "{agency}");
        // A blob needs ≥2 digits to trip the filter; make sure of it.
        let digits = blob.chars().filter(|c| c.is_ascii_digit()).count();
        let hexname: DomainName = format!("{blob}.gov.zz").parse().unwrap();
        prop_assert_eq!(looks_disposable(&hexname), digits >= 2, "{}", hexname);
    }

    /// An Open breaker admits *nothing* before its cooldown round: every
    /// admission below `opened_rank + cooldown_rounds` is denied, and
    /// the first admission at or past it is a half-open trial.
    #[test]
    fn open_breaker_denies_until_its_cooldown_round(
        threshold in 1u32..5,
        cooldown in 1u32..5,
        trip_rank in 1u32..4,
        probe_ranks in prop::collection::vec(1u32..12, 1..20),
    ) {
        let bank = BreakerBank::new(BreakerPolicy {
            failure_threshold: threshold,
            cooldown_rounds: cooldown,
        });
        let dst = std::net::Ipv4Addr::new(192, 0, 2, 1);
        for _ in 0..threshold {
            prop_assert_eq!(bank.admit(dst, trip_rank), BreakerAdmission::Allowed);
            bank.on_result(dst, trip_rank, true);
        }
        for &rank in &probe_ranks {
            match bank.admit(dst, rank) {
                BreakerAdmission::Denied => {
                    prop_assert!(rank < trip_rank + cooldown, "denied at rank {rank} past cooldown");
                }
                BreakerAdmission::Trial => {
                    prop_assert!(rank >= trip_rank + cooldown, "trial at rank {rank} before cooldown");
                    // The slot is HalfOpen now; further admissions are
                    // trials regardless of rank, so stop here.
                    break;
                }
                BreakerAdmission::Allowed => {
                    prop_assert!(false, "open breaker allowed an exchange at rank {rank}");
                }
            }
        }
    }

    /// A successful half-open trial *fully* closes the breaker: the
    /// failure streak restarts from zero, so it takes a full
    /// `failure_threshold` of fresh failures to trip again.
    #[test]
    fn half_open_success_fully_closes_the_breaker(
        threshold in 1u32..5,
        cooldown in 1u32..5,
        post_failures in 0u32..5,
    ) {
        let bank = BreakerBank::new(BreakerPolicy {
            failure_threshold: threshold,
            cooldown_rounds: cooldown,
        });
        let dst = std::net::Ipv4Addr::new(192, 0, 2, 1);
        for _ in 0..threshold {
            bank.admit(dst, 1);
            bank.on_result(dst, 1, true);
        }
        let trial_rank = 1 + cooldown;
        prop_assert_eq!(bank.admit(dst, trial_rank), BreakerAdmission::Trial);
        bank.on_result(dst, trial_rank, false); // trial succeeds → reclose
        let fresh = post_failures.min(threshold);
        for i in 0..fresh {
            prop_assert_eq!(
                bank.admit(dst, trial_rank),
                BreakerAdmission::Allowed,
                "failure {i} of {fresh} after reclose was not admitted"
            );
            bank.on_result(dst, trial_rank, true);
        }
        if fresh < threshold {
            prop_assert_eq!(bank.admit(dst, trial_rank), BreakerAdmission::Allowed);
        } else {
            // Exactly `threshold` fresh failures re-tripped it.
            prop_assert_eq!(bank.admit(dst, trial_rank), BreakerAdmission::Denied);
        }
    }

    /// `snapshot` → `restore` into a fresh bank reproduces the exact
    /// admission behaviour of the original.
    #[test]
    fn breaker_snapshot_restore_preserves_admissions(
        events in prop::collection::vec((0u8..4, 1u32..4, any::<bool>()), 0..40),
    ) {
        let policy = BreakerPolicy { failure_threshold: 2, cooldown_rounds: 1 };
        let bank = BreakerBank::new(policy);
        for &(d, rank, failed) in &events {
            let dst = std::net::Ipv4Addr::new(192, 0, 2, d);
            if bank.admit(dst, rank) != BreakerAdmission::Denied {
                bank.on_result(dst, rank, failed);
            }
        }
        let twin = BreakerBank::new(policy);
        twin.restore(&bank.snapshot());
        prop_assert_eq!(bank.snapshot(), twin.snapshot());
        // Both banks must make identical decisions from here on (admit
        // mutates Open→HalfOpen, but identically on both).
        for d in 0..4u8 {
            let dst = std::net::Ipv4Addr::new(192, 0, 2, d);
            for rank in 1u32..6 {
                prop_assert_eq!(bank.admit(dst, rank), twin.admit(dst, rank));
            }
        }
        prop_assert_eq!(bank.snapshot(), twin.snapshot());
    }
}
